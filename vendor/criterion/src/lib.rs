//! A minimal, offline stand-in for the `criterion` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access; the benches only use a small slice of criterion's API
//! (groups, `bench_function`, `bench_with_input`, `iter`,
//! `iter_custom`, throughput annotation), which is vendored here with
//! honest wall-clock measurement and a plain-text report: each bench
//! runs `sample_size` samples and prints min / mean / max.
//!
//! Statistical machinery (outlier analysis, HTML plots, regression
//! baselines) is intentionally absent — the simulated benches in this
//! repository are deterministic, so their variance is ~0 anyway.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// No-op (plots are never generated); kept for API compatibility.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Samples per bench (minimum 2).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Configure from the standard criterion CLI args. Only
    /// `--sample-size <n>` is honoured; everything else is ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args();
        while let Some(a) = args.next() {
            if a == "--sample-size" {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    self.sample_size = n;
                }
            }
        }
        self
    }

    /// Start a named group of benches.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
            throughput: None,
        }
    }

    /// A stand-alone bench outside any group.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) {
        run_bench(&name.to_string(), self.sample_size, None, f);
    }
}

/// Identifies a bench as `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units processed per iteration, reported as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A group of related benches.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&format!("  {name}"), samples, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Passed to the bench closure; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the requested iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// The routine measures itself and returns the total elapsed time
    /// for `iters` iterations (used to feed virtual time into reports).
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        self.elapsed = routine(self.iters);
    }
}

/// Identity function that defeats constant-propagation of its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // One warm-up sample, then `samples` measured ones.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed);
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    let mean = times.iter().sum::<Duration>() / samples.max(1) as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{label}: [{min:?} {mean:?} {max:?}]{rate}");
}

/// Build the `benches()` harness entry from bench functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// The bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("t");
        let mut count = 0u64;
        g.throughput(Throughput::Elements(10));
        g.bench_function("iter", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::new("custom", 4), &4u64, |b, &x| {
            b.iter_custom(|iters| Duration::from_nanos(iters * x))
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
    }
}
