//! Collection strategies (only `vec` is needed by this workspace).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A `Vec` whose length is drawn from `len` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_len_and_elements() {
        let mut rng = TestRng::new(9);
        let s = vec(0u64..3, 1..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }
}
