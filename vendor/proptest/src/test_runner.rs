//! Deterministic RNG and configuration for the vendored proptest.

use std::fmt;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; tests in this workspace drive
        // whole simulator runs per case, so the default is kept lower
        // (tests that want more ask via `with_cases`).
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (carried out of the body by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// SplitMix64: tiny, fast, and plenty for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed derived from the test's name (FNV-1a), so every test gets a
    /// distinct but run-to-run stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire-style multiply-shift; bias is negligible for tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
