//! A minimal, deterministic, offline stand-in for the `proptest` crate.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so the subset of the proptest API its tests actually use
//! is vendored here:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! * the [`Strategy`] trait with `prop_map` and `boxed`,
//! * integer-range, tuple, [`Just`], [`any`], [`prop_oneof!`] and
//!   [`collection::vec`] strategies,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from real proptest: cases are generated from a fixed
//! seed (fully deterministic run-to-run, which this repository's
//! determinism tests rely on), and there is **no shrinking** — a
//! failing case panics with the offending inputs rendered via `Debug`.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Generate one value of `T` from the full value space.
pub use strategy::any;

/// The main harness macro: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a plain test that runs the body over `cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Per-test seed: stable across runs, distinct across tests.
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let inputs = format!("{:?}", ($(&$arg,)+));
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1, config.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Assert inside a `proptest!` body (returns a `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($arm))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10i64..20, y in 0u8..4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1i64), (10i64..20).prop_map(|v| v * 2)]) {
            prop_assert!(x == 1 || (20..40).contains(&x));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::collection::vec(crate::any::<u64>(), 0..10);
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
