//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// Something that can generate values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase (used by `prop_oneof!` to mix strategy types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

// `&S` is a strategy too (lets `proptest!` take strategies by value or
// reference without caring).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adaptor.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Weighted union of strategies (the `prop_oneof!` carrier).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in new()")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Occasionally emit the boundaries (cheap edge-case
                // coverage in lieu of shrinking).
                match rng.below(16) {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => {
                        let off = if span > u64::MAX as u128 {
                            rng.next_u64() as u128
                        } else {
                            rng.below(span as u64) as u128
                        };
                        (self.start as i128 + off as i128) as $t
                    }
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-value-space generation, via [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full value space of `T` as a strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types [`any`] can generate.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix in extremes now and then.
                match rng.below(16) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_boundaries_show_up() {
        let mut rng = TestRng::new(3);
        let s = 5u64..9;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&5) && seen.contains(&8));
        assert!(seen.iter().all(|v| (5..9).contains(v)));
    }

    #[test]
    fn negative_ranges_work() {
        let mut rng = TestRng::new(4);
        let s = -50i64..50;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((-50..50).contains(&v));
        }
    }

    #[test]
    fn tuples_and_map() {
        let mut rng = TestRng::new(5);
        let s = (0u64..10, -5i64..5).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((-5..15).contains(&v));
        }
    }
}
