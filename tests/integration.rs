//! Cross-crate integration tests: whole workloads through both
//! runtimes, trace invariants, determinism, the paper's headline
//! effects at test scale, and sim-vs-native differential checks.

use rph::prelude::*;
use rph::workloads::{Apsp, MatMul, NQueens, NativeWorkload, SumEuler};
use rph_native::{BackendKind, Granularity, NativeConfig};

const SE_N: i64 = 400;

#[test]
fn sum_euler_all_five_versions_agree_with_oracle() {
    let w = SumEuler::new(SE_N).with_chunk_size(25);
    let expect = w.expected();
    for (name, cfg) in GphConfig::fig1_ladder(8) {
        let m = w.run_gph(cfg.without_trace()).unwrap();
        assert_eq!(m.value, expect, "{name}");
    }
    let m = w.run_eden(EdenConfig::new(8).without_trace()).unwrap();
    assert_eq!(m.value, expect, "eden");
}

#[test]
fn sum_euler_parallel_beats_sequential_on_both_models() {
    let w = SumEuler::new(SE_N).with_chunk_size(25);
    let seq = w.run_seq();
    assert_eq!(seq.value, w.expected());
    let gph = w
        .run_gph(
            GphConfig::ghc69_plain(8)
                .with_big_alloc_area()
                .with_improved_gc_sync()
                .with_work_stealing()
                .without_trace(),
        )
        .unwrap();
    let eden = w.run_eden(EdenConfig::new(8).without_trace()).unwrap();
    assert!(
        gph.elapsed < seq.elapsed / 3,
        "gph {} vs seq {}",
        gph.elapsed,
        seq.elapsed
    );
    assert!(
        eden.elapsed < seq.elapsed / 3,
        "eden {} vs seq {}",
        eden.elapsed,
        seq.elapsed
    );
}

#[test]
fn matmul_both_models_match_oracle_including_oversubscription() {
    let w = MatMul::new(48, 4);
    let expect = w.expected();
    let gph = w
        .run_gph(
            GphConfig::ghc69_plain(4)
                .with_work_stealing()
                .without_trace(),
        )
        .unwrap();
    assert_eq!(gph.value, expect);
    // 17 virtual PEs on 4 cores: oversubscribed Cannon.
    let eden = w
        .run_eden(EdenConfig::oversubscribed(17, 4).without_trace())
        .unwrap();
    assert_eq!(eden.value, expect);
}

#[test]
fn apsp_both_models_match_oracle() {
    let w = Apsp::new(40);
    let expect = w.expected();
    let gph = w
        .run_gph(
            GphConfig::ghc69_plain(4)
                .with_work_stealing()
                .with_eager_blackholing()
                .without_trace(),
        )
        .unwrap();
    assert_eq!(gph.value, expect);
    let eden = w.run_eden(EdenConfig::new(4).without_trace()).unwrap();
    assert_eq!(eden.value, expect);
}

#[test]
fn traces_are_well_formed_for_all_workloads() {
    let m = SumEuler::new(200)
        .run_gph(GphConfig::ghc69_plain(4))
        .unwrap();
    let tl = Timeline::from_tracer(&m.tracer);
    tl.check_well_formed().unwrap();
    assert!(tl.mean_fraction(rph::trace::State::Running) > 0.0);

    let m = MatMul::new(24, 2).run_eden(EdenConfig::new(4)).unwrap();
    let tl = Timeline::from_tracer(&m.tracer);
    tl.check_well_formed().unwrap();
    let counters = rph::trace::Counters::from_tracer(&m.tracer);
    assert!(counters.messages_sent > 0);
    assert_eq!(counters.processes_instantiated, 4);
}

#[test]
fn whole_workload_runs_are_deterministic() {
    let w = SumEuler::new(300).with_chunk_size(20);
    let cfg = GphConfig::ghc69_plain(6).with_work_stealing();
    let a = w.run_gph(cfg.clone()).unwrap();
    let b = w.run_gph(cfg).unwrap();
    assert_eq!(a.value, b.value);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.tracer.merged(), b.tracer.merged());

    let a = w.run_eden(EdenConfig::new(6)).unwrap();
    let b = w.run_eden(EdenConfig::new(6)).unwrap();
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.tracer.merged(), b.tracer.merged());
}

#[test]
fn big_allocation_area_reduces_gcs_at_workload_level() {
    let w = SumEuler::new(SE_N).with_chunk_size(25);
    let small = w
        .run_gph(GphConfig::ghc69_plain(4).without_trace())
        .unwrap();
    let big = w
        .run_gph(
            GphConfig::ghc69_plain(4)
                .with_big_alloc_area()
                .without_trace(),
        )
        .unwrap();
    assert!(
        big.gph_stats.as_ref().unwrap().gcs * 4 < small.gph_stats.as_ref().unwrap().gcs,
        "expected far fewer GCs with the big area"
    );
}

#[test]
fn per_cap_nurseries_close_the_gc_gap_at_workload_level() {
    // ROADMAP item 1: with real per-capability nurseries most
    // collections are independent minors, so the GpH GC profile moves
    // toward Eden's (few global stops, local collections doing the
    // work).
    let w = SumEuler::new(SE_N).with_chunk_size(25);
    let expect = w.expected();
    let stw = w
        .run_gph(GphConfig::ghc69_plain(8).without_trace())
        .unwrap();
    let nursery = w
        .run_gph(
            GphConfig::ghc69_plain(8)
                .with_per_cap_nurseries()
                .without_trace(),
        )
        .unwrap();
    assert_eq!(stw.value, expect);
    assert_eq!(nursery.value, expect);
    let s1 = stw.gph_stats.as_ref().unwrap();
    let s2 = nursery.gph_stats.as_ref().unwrap();
    assert!(s1.gcs > 0);
    assert!(s2.gcs < s1.gcs, "global GCs: {} !< {}", s2.gcs, s1.gcs);
    assert!(s2.local_gcs > 0, "minor collections must do the work");
    assert!(s2.promoted_words > 0, "survivors must really be evacuated");
    assert!(
        s2.gc_stopped_time() < s1.gc_stopped_time(),
        "stopped time: {} !< {}",
        s2.gc_stopped_time(),
        s1.gc_stopped_time()
    );
}

#[test]
fn per_cap_nurseries_runs_are_deterministic() {
    let w = SumEuler::new(300).with_chunk_size(20);
    let cfg = GphConfig::ghc69_plain(6)
        .with_work_stealing()
        .with_per_cap_nurseries();
    let a = w.run_gph(cfg.clone()).unwrap();
    let b = w.run_gph(cfg).unwrap();
    assert_eq!(a.value, b.value);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.tracer.merged(), b.tracer.merged());
}

#[test]
fn eden_gc_is_local_no_global_barrier() {
    // One PE allocating heavily must not stop the others: total GC time
    // summed across PEs stays far below elapsed × PEs.
    let w = SumEuler::new(SE_N);
    let m = w.run_eden(EdenConfig::new(4).without_trace()).unwrap();
    let s = m.eden_stats.as_ref().unwrap();
    assert!(s.local_gcs > 0);
    assert!(
        s.gc_time < m.elapsed * 4 / 2,
        "local GC should not look like a global barrier"
    );
}

#[test]
fn check_phase_validates_parallel_result() {
    let w = SumEuler::new(150).with_check();
    let m = w
        .run_gph(
            GphConfig::ghc69_plain(4)
                .with_work_stealing()
                .without_trace(),
        )
        .unwrap();
    // If the parallel and sequential results disagreed the program
    // would return -1.
    assert_eq!(m.value, w.expected());
}

/// Every native configuration the differential tests sweep: 1, 2, 3,
/// 4, 5 and 8 workers (even and odd), both distribution policies,
/// both granularities (fixed per-task dealing and lazy-split ranges).
fn native_configs() -> Vec<NativeConfig> {
    [1usize, 2, 3, 4, 5, 8]
        .into_iter()
        .flat_map(|w| {
            [Granularity::LazySplit, Granularity::Fixed]
                .into_iter()
                .flat_map(move |g| {
                    [
                        NativeConfig::steal(w).with_granularity(g),
                        NativeConfig::push(w).with_granularity(g),
                    ]
                })
        })
        .collect()
}

#[test]
fn native_sum_euler_matches_sim_bit_for_bit() {
    let w = SumEuler::new(300).with_chunk_size(20);
    let sim = w
        .run_gph(
            GphConfig::ghc69_plain(4)
                .with_work_stealing()
                .without_trace(),
        )
        .unwrap();
    assert_eq!(sim.value, w.expected());
    for cfg in native_configs() {
        let native = w.run_on(&cfg).expect("native run failed");
        assert_eq!(native.value, sim.value, "{cfg:?}");
    }
}

#[test]
fn native_matmul_matches_sim_bit_for_bit() {
    let w = MatMul::new(40, 4);
    let sim = w
        .run_gph(
            GphConfig::ghc69_plain(4)
                .with_work_stealing()
                .without_trace(),
        )
        .unwrap();
    assert_eq!(sim.value, w.expected());
    for cfg in native_configs() {
        let native = w.run_on(&cfg).expect("native run failed");
        assert_eq!(native.value, sim.value, "{cfg:?}");
    }
}

#[test]
fn native_apsp_matches_sim_bit_for_bit() {
    let w = Apsp::new(24);
    let sim = w
        .run_gph(
            GphConfig::ghc69_plain(4)
                .with_work_stealing()
                .with_eager_blackholing()
                .without_trace(),
        )
        .unwrap();
    assert_eq!(sim.value, w.expected());
    for cfg in native_configs() {
        let native = w.run_on(&cfg).expect("native run failed");
        assert_eq!(native.value, sim.value, "{cfg:?}");
    }
}

#[test]
fn native_nqueens_matches_sim_bit_for_bit() {
    let w = NQueens::new(8).with_spawn_depth(2);
    let sim = w
        .run_gph(
            GphConfig::ghc69_plain(4)
                .with_work_stealing()
                .without_trace(),
        )
        .unwrap();
    assert_eq!(sim.value, 92);
    for cfg in native_configs() {
        let native = w.run_on(&cfg).expect("native run failed");
        assert_eq!(native.value, sim.value, "{cfg:?}");
    }
}

#[test]
fn native_runs_every_task_exactly_once() {
    let w = SumEuler::new(200).with_chunk_size(10);
    let tasks = 20; // ceil(200 / 10)
    for cfg in native_configs() {
        let m = w.run_on(&cfg).expect("native run failed");
        assert_eq!(m.stats.tasks_run, tasks, "{cfg:?}");
        assert_eq!(m.stats.per_worker.iter().sum::<u64>(), tasks, "{cfg:?}");
        // tasks_local and tasks_stolen are counted directly per worker;
        // together they must partition the run.
        assert_eq!(m.stats.tasks_local + m.stats.tasks_stolen, tasks, "{cfg:?}");
        // Batch accounting is consistent: batches can only move extras
        // if steals succeeded at all.
        if m.stats.steal_ops == 0 {
            assert_eq!(m.stats.batch_moved, 0, "{cfg:?}");
            assert_eq!(m.stats.tasks_stolen, 0, "{cfg:?}");
        }
    }
}

#[test]
fn native_degenerate_jobs_match_oracle() {
    // Fewer tasks than workers, and a single-chunk job, at odd worker
    // counts — the decomposition edge cases of the range encoding.
    let single = SumEuler::new(50).with_chunk_size(50); // 1 task
    let sparse = SumEuler::new(60).with_chunk_size(20); // 3 tasks
    for w in [&single, &sparse] {
        let expect = w.expected();
        for cfg in native_configs() {
            let m = w.run_on(&cfg).expect("native run failed");
            assert_eq!(m.value, expect, "{cfg:?}");
            assert_eq!(
                m.stats.tasks_local + m.stats.tasks_stolen,
                m.stats.tasks_run,
                "{cfg:?}"
            );
        }
    }
}

#[test]
fn native_traced_workloads_render_and_reconcile() {
    // Workload-level tracing: the same Timeline/Counters machinery the
    // simulators feed must accept native wall-clock traces, and event
    // totals must agree with the executor's own counters.
    let w = SumEuler::new(300).with_chunk_size(10);
    let cfg = NativeConfig::steal(4).with_trace();
    let m = w.run_on(&cfg).expect("native run failed");
    assert_eq!(m.value, w.expected());
    assert_eq!(m.trace_dropped, 0);
    let trace = m.trace.as_ref().expect("traced run returns a tracer");
    let tl = Timeline::from_tracer(trace);
    tl.check_well_formed().unwrap();
    assert!(tl.mean_fraction(rph::trace::State::Running) > 0.0);
    let c = rph::trace::Counters::from_tracer(trace);
    assert_eq!(c.native_tasks, m.stats.tasks_run);
    assert_eq!(c.native_steals, m.stats.steal_ops);
    assert_eq!(c.native_splits, m.stats.splits);
    assert_eq!(c.native_parks, m.stats.parks);

    // Untraced runs carry no tracer and lose nothing else.
    let plain = w
        .run_on(&NativeConfig::steal(4))
        .expect("native run failed");
    assert!(plain.trace.is_none());
    assert_eq!(plain.value, m.value);
}

#[test]
fn native_apsp_stitches_wave_traces_onto_one_axis() {
    // APSP issues one pool run per pivot wave; the workload glues the
    // per-wave tracers onto a single monotone time axis.
    let w = Apsp::new(16);
    let m = w
        .run_on(&NativeConfig::steal(2).with_trace())
        .expect("native run failed");
    assert_eq!(m.value, w.expected());
    let trace = m.trace.as_ref().expect("traced run returns a tracer");
    let merged = trace.merged();
    assert!(!merged.is_empty());
    assert!(
        merged.windows(2).all(|p| p[0].time <= p[1].time),
        "stitched wave traces must stay time-ordered"
    );
    let c = rph::trace::Counters::from_tracer(trace);
    assert_eq!(c.native_tasks, m.stats.tasks_run);
    // 16 waves × 2 workers, one RunStart per worker per wave.
    assert_eq!(c.native_runs, 32);
    Timeline::from_tracer(trace).check_well_formed().unwrap();
}

#[test]
fn three_way_differential_sim_eden_vs_native_eden_vs_native_steal() {
    // The PR 5 acceptance check: for every workload, the simulated
    // Eden runtime, the native message-passing backend and the native
    // work-stealing backend must produce bit-identical checksums at 1,
    // 2, 3, 4 and 8 PEs. All inputs are small integers, so every f64
    // intermediate is exact and schedule order cannot leak into the
    // value.
    let se = SumEuler::new(300).with_chunk_size(20);
    let mm = MatMul::new(40, 4);
    let ap = Apsp::new(24);
    let nq = NQueens::new(8).with_spawn_depth(2);
    for pes in [1usize, 2, 3, 4, 8] {
        let steal_cfg = NativeConfig::new(pes);
        let eden_cfg = NativeConfig::new(pes).with_backend(BackendKind::Eden);
        let sims = [
            se.run_eden(EdenConfig::new(pes).without_trace())
                .unwrap()
                .value,
            mm.run_eden(EdenConfig::new(pes).without_trace())
                .unwrap()
                .value,
            ap.run_eden(EdenConfig::new(pes).without_trace())
                .unwrap()
                .value,
            nq.run_eden_master_worker(EdenConfig::new(pes).without_trace(), 2)
                .unwrap()
                .value,
        ];
        let table: [&dyn NativeWorkload; 4] = [&se, &mm, &ap, &nq];
        for (w, sim_value) in table.iter().zip(sims) {
            assert_eq!(sim_value, w.expected_value(), "{} sim pes={pes}", w.name());
            let native_eden = w.run_on(&eden_cfg).expect("native eden run failed");
            let native_steal = w.run_on(&steal_cfg).expect("native steal run failed");
            assert_eq!(native_eden.value, sim_value, "{} eden pes={pes}", w.name());
            assert_eq!(
                native_steal.value,
                sim_value,
                "{} steal pes={pes}",
                w.name()
            );
        }
    }
}

#[test]
fn spark_counters_are_consistent() {
    let w = SumEuler::new(SE_N).with_chunk_size(10);
    let m = w
        .run_gph(
            GphConfig::ghc69_plain(8)
                .with_work_stealing()
                .without_trace(),
        )
        .unwrap();
    let s = m.gph_stats.as_ref().unwrap();
    // Everything converted, fizzled, pushed or stolen never exceeds
    // what was created.
    assert!(
        s.sparks_run_local + s.sparks_stolen + s.sparks_fizzled
            <= s.sparks_created + s.sparks_pushed,
        "spark bookkeeping out of balance: {s:?}"
    );
    assert!(s.sparks_created >= 40);
}
