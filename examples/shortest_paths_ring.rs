//! All-pairs shortest paths: the workload where the runtime model
//! really matters (the paper's Fig. 5).
//!
//! The Eden version pipelines Floyd–Warshall around a process ring and
//! scales; the GpH version sparks one evaluation per row over a grid of
//! heavily *shared* relaxation thunks — with GHC's default lazy
//! black-holing those shared thunks get evaluated again and again by
//! racing capabilities, and the program stops scaling entirely. Eager
//! black-holing restores it.
//!
//! ```text
//! cargo run --release --example shortest_paths_ring -- [nodes] [cores]
//! # defaults: nodes = 400 (the paper's size), cores = 8
//! ```

use rph::prelude::*;
use rph::workloads::Apsp;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let cores: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let w = Apsp::new(n);
    let expect = w.expected();
    let seq = w.run_seq();
    assert_eq!(seq.value, expect);
    println!(
        "all-pairs shortest paths, {n} nodes; sequential baseline {:.1} ms\n",
        seq.elapsed as f64 / 1e6
    );

    let mut table = TextTable::new(&["version", "runtime", "speedup", "duplicate evals"]);

    let gph = |bh: BlackHoling, policy: SparkPolicy| {
        let mut cfg = GphConfig::ghc69_plain(cores)
            .with_big_alloc_area()
            .with_improved_gc_sync()
            .without_trace();
        cfg.black_holing = bh;
        cfg.spark_policy = policy;
        if policy == SparkPolicy::Steal {
            cfg.spark_exec = SparkExec::SparkThread;
        }
        cfg
    };

    for (name, bh, policy) in [
        (
            "GpH, lazy black-holing, push",
            BlackHoling::Lazy,
            SparkPolicy::Push,
        ),
        (
            "GpH, lazy black-holing, work stealing",
            BlackHoling::Lazy,
            SparkPolicy::Steal,
        ),
        (
            "GpH, eager black-holing, push",
            BlackHoling::Eager,
            SparkPolicy::Push,
        ),
        (
            "GpH, eager black-holing, work stealing",
            BlackHoling::Eager,
            SparkPolicy::Steal,
        ),
    ] {
        let m = w.run_gph(gph(bh, policy)).expect("gph");
        assert_eq!(m.value, expect, "{name}");
        let s = m.gph_stats.as_ref().unwrap();
        table.row(&[
            name.to_string(),
            format!("{:.1} ms", m.elapsed as f64 / 1e6),
            format!("{:.2}", seq.elapsed as f64 / m.elapsed as f64),
            s.duplicate_evals.to_string(),
        ]);
    }

    let m = w
        .run_eden(EdenConfig::new(cores).without_trace())
        .expect("eden");
    assert_eq!(m.value, expect);
    table.row(&[
        format!("Eden ring, {cores} PEs"),
        format!("{:.1} ms", m.elapsed as f64 / 1e6),
        format!("{:.2}", seq.elapsed as f64 / m.elapsed as f64),
        "-".to_string(),
    ]);

    println!("{}", table.render());
    println!("The paper's Fig. 5 in miniature: Eden scales; lazy-black-holing");
    println!("GpH flattens (all that duplicate evaluation); eager black-holing");
    println!("is what lets the shared-heap version profit from more cores.");
}
