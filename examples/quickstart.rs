//! Quickstart: write a small lazy functional program, run it on both
//! runtime models, and look at a trace.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rph::machine::ir::*;
use rph::machine::prelude as hs;
use rph::machine::ProgramBuilder;
use rph::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. A program in the lazy core language:
    //      main n = let xs = map heavy [1..n]
    //               in  sparkList xs `seq` sum xs
    //    where `heavy` is a native kernel (standing in for a
    //    GHC-compiled inner loop) costing 0.5 ms of virtual time each.
    // ------------------------------------------------------------------
    let mut b = ProgramBuilder::new();
    let pre = hs::install(&mut b);
    let support = rph::eden::install_support(&mut b); // tuple selectors for Eden
    let heavy = b.kernel("heavy", 1, |heap, args| {
        let x = heap.expect_value(args[0]).expect_int();
        rph::machine::KernelOut {
            result: heap.alloc_value(Value::Int(x * x)),
            cost: 500_000,          // 0.5 ms of work
            transient_words: 5_000, // plus some allocation churn
        }
    });
    let main = b.def(
        "main",
        1,
        let_(
            vec![
                pap(heavy, vec![]),                          // [1]
                thunk(pre.enum_from_to, vec![int(1), v(0)]), // [2] [1..n]
                thunk(pre.map, vec![v(1), v(2)]),            // [3]
                thunk(pre.spark_list, vec![v(3)]),           // [4]
            ],
            seq(atom(v(4)), app(pre.sum, vec![v(3)])),
        ),
    );
    let program = b.build();
    let n = 64i64;
    let expect: i64 = (1..=n).map(|x| x * x).sum();

    // ------------------------------------------------------------------
    // 2. Shared heap (GpH): 8 capabilities, the paper's optimised
    //    configuration (big nursery + improved barrier + work stealing).
    // ------------------------------------------------------------------
    let mut gph = GphRuntime::new(
        program.clone(),
        GphConfig::ghc69_plain(8)
            .with_big_alloc_area()
            .with_improved_gc_sync()
            .with_work_stealing(),
    );
    let out = gph
        .run(|heap| {
            let nn = heap.int(n);
            heap.alloc_thunk(main, vec![nn])
        })
        .expect("gph run");
    let v = gph.heap().expect_value(out.result).expect_int();
    assert_eq!(v, expect);
    println!(
        "GpH (8 capabilities): result {v}, {:.3} ms virtual",
        out.elapsed as f64 / 1e6
    );
    println!(
        "  sparks: {} created, {} stolen, {} fizzled; {} GCs",
        out.stats.sparks_created, out.stats.sparks_stolen, out.stats.sparks_fizzled, out.stats.gcs
    );

    // ------------------------------------------------------------------
    // 3. Distributed heap (Eden): parMap over 8 PEs.
    // ------------------------------------------------------------------
    let mut eden = EdenRuntime::new(program.clone(), support, EdenConfig::new(8));
    let inputs: Vec<NodeRef> = (1..=n).map(|x| eden.heap_mut(0).int(x)).collect();
    let outs = rph::eden::skeletons::par_map(&mut eden, heavy, &inputs);
    let list = rph::eden::skeletons::list_of(eden.heap_mut(0), &outs);
    let entry = eden.heap_mut(0).alloc_thunk(pre.sum, vec![list]);
    let out = eden.run(entry).expect("eden run");
    let v = eden.heap(0).expect_value(out.result).expect_int();
    assert_eq!(v, expect);
    println!(
        "Eden (8 PEs):         result {v}, {:.3} ms virtual",
        out.elapsed as f64 / 1e6
    );
    println!(
        "  {} processes, {} messages ({} words)",
        out.stats.processes, out.stats.messages, out.stats.message_words
    );

    // ------------------------------------------------------------------
    // 4. The trace diagram (the reproduction's EdenTV).
    // ------------------------------------------------------------------
    let tl = Timeline::from_tracer(&out.tracer);
    println!("\nEden activity timeline:");
    print!(
        "{}",
        render_timeline(
            &tl,
            &RenderOptions {
                width: 90,
                color: false,
                legend: true
            }
        )
    );
}
