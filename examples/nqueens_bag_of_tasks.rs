//! N-queens with a *dynamic* bag of tasks — the paper's full
//! `masterWorker :: (a -> ([a], b)) -> [a] -> [b]` skeleton, where a
//! worker's answer can contain new tasks ("it can implement a parallel
//! map, backtracking, and branch-and-bound").
//!
//! The master starts with one task (the empty board); workers expand
//! placements level by level until the spawn depth, then count the
//! remaining subtree sequentially. Compare against the GpH version
//! that sparks a fixed set of subtrees.
//!
//! ```text
//! cargo run --release --example nqueens_bag_of_tasks -- [n] [cores]
//! # defaults: n = 12, cores = 8
//! ```

use rph::prelude::*;
use rph::workloads::NQueens;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let cores: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let w = NQueens::new(n).with_spawn_depth(3);
    let expect = w.expected();
    let seq = w.run_seq();
    println!(
        "{n}-queens: {expect} solutions; sequential baseline {:.2} ms\n",
        seq.elapsed as f64 / 1e6
    );

    let mut table = TextTable::new(&["version", "runtime", "speedup", "notes"]);
    for prefetch in [1usize, 2, 4] {
        let m = w
            .run_eden_master_worker(EdenConfig::new(cores).without_trace(), prefetch)
            .expect("eden masterWorker");
        assert_eq!(m.value, expect);
        let s = m.eden_stats.as_ref().unwrap();
        table.row(&[
            format!("Eden masterWorker (prefetch {prefetch})"),
            format!("{:.2} ms", m.elapsed as f64 / 1e6),
            format!("{:.2}", seq.elapsed as f64 / m.elapsed as f64),
            format!("{} messages, dynamic bag", s.messages),
        ]);
    }
    let m = w
        .run_gph(
            GphConfig::ghc69_plain(cores)
                .with_big_alloc_area()
                .with_work_stealing()
                .without_trace(),
        )
        .expect("gph");
    assert_eq!(m.value, expect);
    let s = m.gph_stats.as_ref().unwrap();
    table.row(&[
        "GpH sparked subtrees".to_string(),
        format!("{:.2} ms", m.elapsed as f64 / 1e6),
        format!("{:.2}", seq.elapsed as f64 / m.elapsed as f64),
        format!("{} sparks, {} stolen", s.sparks_created, s.sparks_stolen),
    ]);
    println!("{}", table.render());
}
