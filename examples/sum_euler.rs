//! The paper's sumEuler experiment, interactively sized.
//!
//! Runs the Fig. 1 optimisation ladder (four GpH configurations plus
//! Eden) and prints each configuration's runtime, GC count and an
//! activity trace — Figs. 1 and 2 in one program.
//!
//! ```text
//! cargo run --release --example sum_euler -- [n] [caps]
//! # defaults: n = 15000 (the paper's size), caps = 8
//! ```

use rph::prelude::*;
use rph::workloads::SumEuler;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: i64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(15_000);
    let caps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let workload = SumEuler::new(n).with_check();
    let expect = workload.expected();
    println!("sumEuler [1..{n}] on {caps} cores (with the sequential check phase)\n");

    let mut table = TextTable::new(&["Program version and runtime system", "Runtime", "GCs"]);
    let mut traces: Vec<(String, Tracer)> = Vec::new();

    for (name, cfg) in GphConfig::fig1_ladder(caps) {
        let m = workload.run_gph(cfg).expect("gph run");
        assert_eq!(m.value, expect, "{name}: wrong answer");
        let stats = m.gph_stats.as_ref().unwrap();
        table.row(&[
            name.to_string(),
            format!("{:.2} sec.", m.elapsed as f64 / 1e9),
            stats.gcs.to_string(),
        ]);
        traces.push((name.to_string(), m.tracer));
    }
    let m = workload.run_eden(EdenConfig::new(caps)).expect("eden run");
    assert_eq!(m.value, expect, "eden: wrong answer");
    table.row(&[
        format!("Eden, {caps} PEs running under PVM"),
        format!("{:.2} sec.", m.elapsed as f64 / 1e9),
        m.eden_stats.as_ref().unwrap().local_gcs.to_string(),
    ]);
    traces.push(("Eden".to_string(), m.tracer));

    println!("{}", table.render());

    println!("Runtime traces (cf. the paper's Fig. 2; note the sequential");
    println!("check at the end of each trace):\n");
    for (name, tracer) in traces {
        let tl = Timeline::from_tracer(&tracer);
        println!("--- {name}");
        print!(
            "{}",
            render_timeline(
                &tl,
                &RenderOptions {
                    width: 100,
                    color: false,
                    legend: false
                }
            )
        );
        let st = TraceStats::from_parts(&tracer, &tl);
        println!(
            "    running {:.0}%  gc {:.1}%  idle {:.1}%\n",
            st.utilisation() * 100.0,
            st.fraction(rph::trace::State::Gc) * 100.0,
            st.fraction(rph::trace::State::Idle) * 100.0
        );
    }
}
