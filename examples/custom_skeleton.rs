//! Building your own skeleton from the raw process/channel API — the
//! paper's point that "Eden skeleton implementations are still amenable
//! to customisation" (§II.A.1), unlike sealed imperative libraries.
//!
//! We build a *pipeline* skeleton (not in the paper's list): a chain of
//! processes, each transforming a stream and feeding the next stage
//! directly (child-to-child channels), with only the last stage
//! reporting to the parent.
//!
//! ```text
//! cargo run --release --example custom_skeleton
//! ```

use rph::eden::channel::{ChanId, CommMode, Endpoint};
use rph::eden::runtime::ProcSpec;
use rph::eden::skeletons::list_of;
use rph::machine::ir::*;
use rph::machine::prelude as hs;
use rph::machine::reference::read_int_list;
use rph::machine::ProgramBuilder;
use rph::prelude::*;

/// `pipeline rt stages input`: spawn one process per stage function;
/// stage k's output stream feeds stage k+1's input stream; the last
/// stage streams to the parent. Returns the result-stream node on PE 0.
fn pipeline(rt: &mut EdenRuntime, stages: &[ScId], input: NodeRef) -> NodeRef {
    assert!(!stages.is_empty());
    let pes = rt.num_pes();
    // Input channel of every stage, allocated up front so stage k can
    // point its output at stage k+1 before anything is spawned.
    let in_chans: Vec<ChanId> = stages.iter().map(|_| rt.fresh_chan()).collect();
    let placement: Vec<usize> = (0..stages.len()).map(|k| (k + 1) % pes).collect();
    let (final_chan, final_node) = rt.new_channel(0, CommMode::Stream);
    for (k, &f) in stages.iter().enumerate() {
        let dest = if k + 1 < stages.len() {
            Endpoint {
                pe: placement[k + 1] as u32,
                chan: in_chans[k + 1],
            }
        } else {
            Endpoint {
                pe: 0,
                chan: final_chan,
            }
        };
        rt.spawn(
            placement[k],
            ProcSpec {
                f,
                inputs: vec![(in_chans[k], CommMode::Stream)],
                outputs: vec![(CommMode::Stream, dest)],
            },
        );
    }
    // Feed the first stage from the parent.
    rt.send_value_from(
        0,
        Endpoint {
            pe: placement[0] as u32,
            chan: in_chans[0],
        },
        input,
        CommMode::Stream,
    );
    final_node
}

fn main() {
    let mut b = ProgramBuilder::new();
    let pre = hs::install(&mut b);
    let support = rph::eden::install_support(&mut b);
    // Three stages: map (+1), map (*2) via add-to-self, map square.
    let double = b.def(
        "double",
        1,
        prim(rph::machine::PrimOp::Add, vec![v(0), v(0)]),
    );
    let square = b.def(
        "square",
        1,
        prim(rph::machine::PrimOp::Mul, vec![v(0), v(0)]),
    );
    let stage = |b: &mut ProgramBuilder, name: &str, f: ScId, pre: &hs::Prelude| {
        // \xs -> map f xs
        b.def(
            name,
            1,
            let_(vec![pap(f, vec![])], app(pre.map, vec![v(1), v(0)])),
        )
    };
    let s1 = stage(&mut b, "stageInc", pre.inc, &pre);
    let s2 = stage(&mut b, "stageDouble", double, &pre);
    let s3 = stage(&mut b, "stageSquare", square, &pre);
    let program = b.build();

    let mut rt = EdenRuntime::new(program, support, EdenConfig::new(4));
    let input: Vec<NodeRef> = (1..=10).map(|x| rt.heap_mut(0).int(x)).collect();
    let input_list = list_of(rt.heap_mut(0), &input);
    let result_stream = pipeline(&mut rt, &[s1, s2, s3], input_list);
    // Force the whole stream: deepseq it.
    let entry = {
        let heap = rt.heap_mut(0);
        heap.alloc_thunk(pre.deep_seq, vec![result_stream])
    };
    let out = rt.run(entry).expect("pipeline run");
    let got = read_int_list(rt.heap(0), out.result);
    let expect: Vec<i64> = (1..=10).map(|x| ((x + 1) * 2i64).pow(2)).collect();
    assert_eq!(got, expect);
    println!("pipeline(inc → double → square) over [1..10] = {got:?}");
    println!(
        "{} processes, {} messages, {:.3} ms virtual",
        out.stats.processes,
        out.stats.messages,
        out.elapsed as f64 / 1e6
    );
    println!("\nStage activity:");
    let tl = Timeline::from_tracer(&out.tracer);
    print!(
        "{}",
        render_timeline(
            &tl,
            &RenderOptions {
                width: 80,
                color: false,
                legend: true
            }
        )
    );
}
