//! Dense matrix multiplication: sparked blocks (GpH) vs Cannon's
//! algorithm on a torus (Eden), including the paper's surprising
//! oversubscription result (Fig. 4 d/e: more virtual PEs than cores is
//! *faster*, thanks to smaller independently-collected heaps).
//!
//! ```text
//! cargo run --release --example matmul_cannon -- [n] [cores]
//! # defaults: n = 600, cores = 8
//! ```

use rph::prelude::*;
use rph::workloads::MatMul;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(600);
    let cores: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    assert!(
        n.is_multiple_of(60),
        "n must be divisible by 60 so every grid divides it"
    );

    println!("{n}×{n} dense matrix multiplication on {cores} cores\n");
    let mut table = TextTable::new(&["configuration", "runtime", "GCs", "messages"]);

    // GpH: the optimisation ladder, sparking a 10×10 block grid.
    let w = MatMul::new(n, 10);
    let expect = w.expected();
    for (name, cfg) in GphConfig::fig1_ladder(cores) {
        let m = w.run_gph(cfg.without_trace()).expect("gph");
        assert_eq!(m.value, expect);
        table.row(&[
            name.to_string(),
            format!("{:.1} ms", m.elapsed as f64 / 1e6),
            m.gph_stats.as_ref().unwrap().gcs.to_string(),
            "-".to_string(),
        ]);
    }

    // Eden: Cannon's algorithm on g×g tori, with g²+1 virtual PEs
    // OS-scheduled onto the physical cores (the +1 is the parent PE).
    for g in [2usize, 3, 4, 5] {
        let w = MatMul::new(n, g);
        let pes = g * g + 1;
        let m = w
            .run_eden(EdenConfig::oversubscribed(pes, cores).without_trace())
            .expect("eden");
        assert_eq!(m.value, expect);
        let s = m.eden_stats.as_ref().unwrap();
        table.row(&[
            format!("Eden Cannon {g}×{g}, {pes} virtual PEs"),
            format!("{:.1} ms", m.elapsed as f64 / 1e6),
            s.local_gcs.to_string(),
            s.messages.to_string(),
        ]);
    }

    println!("{}", table.render());
    println!("Note how the 4×4 torus (17 virtual PEs on {cores} cores) beats the");
    println!("3×3 one — the paper's Fig. 4 d/e observation: more, smaller, \nindependently-collected heaps.");
}
