//! Minimal aligned-text tables for the `repro` binaries (the paper's
//! tables and figure data are emitted as terminal text + CSV).

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for `&str` cells.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Render with padded columns (first column left-aligned, the rest
    /// right-aligned — the shape of the paper's Fig. 1 table).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = width[0]);
                } else {
                    let _ = write!(out, "  {:>w$}", c, w = width[i]);
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["version", "time"]);
        t.row_str(&["plain", "2.75"]).row_str(&["steal", "2.3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("version"));
        assert!(lines[2].contains("plain"));
        assert!(lines[2].ends_with("2.75"));
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row_str(&["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn bad_width_panics() {
        let mut t = TextTable::new(&["a"]);
        t.row_str(&["1", "2"]);
    }
}
