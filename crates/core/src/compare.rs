//! Speedup-curve utilities: the scaffolding behind the Fig. 3 / Fig. 5
//! reproductions.

use rph_trace::Time;

/// One speedup curve: a label plus `(cores, elapsed)` points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpeedupSeries {
    pub label: String,
    pub points: Vec<(usize, Time)>,
}

impl SpeedupSeries {
    /// Measure a series by running `run(cores)` for every entry of
    /// `cores`.
    pub fn measure(
        label: impl Into<String>,
        cores: &[usize],
        mut run: impl FnMut(usize) -> Time,
    ) -> Self {
        SpeedupSeries {
            label: label.into(),
            points: cores.iter().map(|&c| (c, run(c))).collect(),
        }
    }

    /// Relative speedup at each point w.r.t. `base` (typically the
    /// series' own 1-core time — the paper reports *relative* speedups
    /// "for fairness").
    pub fn speedups(&self, base: Time) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .map(|&(c, t)| (c, relative_speedup(base, t)))
            .collect()
    }

    /// This series' one-core elapsed time, if measured.
    pub fn one_core(&self) -> Option<Time> {
        self.points.iter().find(|(c, _)| *c == 1).map(|&(_, t)| t)
    }

    /// The elapsed time at a given core count.
    pub fn at(&self, cores: usize) -> Option<Time> {
        self.points
            .iter()
            .find(|(c, _)| *c == cores)
            .map(|&(_, t)| t)
    }
}

/// `base / t` — the paper's relative speedup.
pub fn relative_speedup(base: Time, t: Time) -> f64 {
    if t == 0 {
        return f64::INFINITY;
    }
    base as f64 / t as f64
}

/// Did a curve "flatten out" (its last point improves on the midpoint
/// by less than `epsilon` relative)? Used by shape assertions.
pub fn flattens(series: &[(usize, f64)], epsilon: f64) -> bool {
    if series.len() < 3 {
        return false;
    }
    let mid = series[series.len() / 2].1;
    let last = series[series.len() - 1].1;
    last <= mid * (1.0 + epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_computes_speedups() {
        let s = SpeedupSeries::measure("halves", &[1, 2, 4], |c| (1000 / c) as Time);
        assert_eq!(s.one_core(), Some(1000));
        assert_eq!(s.at(4), Some(250));
        let sp = s.speedups(1000);
        assert_eq!(sp, vec![(1, 1.0), (2, 2.0), (4, 4.0)]);
    }

    #[test]
    fn flattening_detection() {
        let linear = vec![(1, 1.0), (2, 2.0), (4, 4.0), (8, 8.0)];
        assert!(!flattens(&linear, 0.1));
        let flat = vec![(1, 1.0), (2, 1.4), (4, 1.5), (8, 1.5)];
        assert!(flattens(&flat, 0.1));
        assert!(!flattens(&[(1, 1.0)], 0.1), "too short to judge");
    }

    #[test]
    fn zero_time_is_infinite_speedup() {
        assert!(relative_speedup(10, 0).is_infinite());
    }
}

/// Render speedup curves as an ASCII chart (cores on x, relative
/// speedup on y) — the terminal rendition of the paper's Fig. 3/5
/// plots. Each series gets a symbol; the ideal-speedup diagonal is
/// drawn with `·`.
pub fn render_chart(series: &[(String, Vec<(usize, f64)>)], height: usize) -> String {
    use std::fmt::Write as _;
    let symbols = ['E', 'S', 'P', 'L', 'B', 'W', 'X', 'Y'];
    let Some(max_cores) = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|(c, _)| *c))
        .max()
    else {
        return "(no data)\n".to_string();
    };
    let max_y = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|(_, s)| *s))
        .fold(max_cores as f64, f64::max)
        .max(1.0);
    let height = height.max(4);
    let width = 64usize;
    let mut grid = vec![vec![' '; width + 1]; height + 1];

    let xcol = |c: usize| (c as f64 / max_cores as f64 * width as f64).round() as usize;
    let yrow = |s: f64| height - ((s / max_y * height as f64).round() as usize).min(height);

    // Ideal diagonal (speedup == cores).
    for c in 1..=max_cores {
        let y = c as f64;
        if y <= max_y {
            grid[yrow(y)][xcol(c)] = '·';
        }
    }
    for (i, (_, pts)) in series.iter().enumerate() {
        let sym = symbols[i % symbols.len()];
        for &(c, s) in pts {
            grid[yrow(s)][xcol(c)] = sym;
        }
    }

    let mut out = String::new();
    for (row, line) in grid.iter().enumerate() {
        let yval = max_y * (height - row) as f64 / height as f64;
        let _ = write!(out, "{yval:5.1} |");
        out.extend(line.iter());
        out.push('\n');
    }
    let _ = writeln!(out, "      +{}", "-".repeat(width + 1));
    let _ = writeln!(out, "       cores 1 .. {max_cores}   (· = ideal speedup)");
    for (i, (label, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "       {} = {}", symbols[i % symbols.len()], label);
    }
    out
}

#[cfg(test)]
mod chart_tests {
    use super::render_chart;

    #[test]
    fn chart_contains_symbols_and_legend() {
        let series = vec![
            ("Eden".to_string(), vec![(1, 1.0), (8, 7.5), (16, 15.0)]),
            ("GpH".to_string(), vec![(1, 1.0), (8, 4.0), (16, 5.0)]),
        ];
        let s = render_chart(&series, 10);
        assert!(s.contains('E'));
        assert!(s.contains('S'));
        assert!(s.contains("E = Eden"));
        assert!(s.contains("ideal speedup"));
    }

    #[test]
    fn empty_series_is_safe() {
        assert_eq!(render_chart(&[], 10), "(no data)\n");
    }
}
