//! # rph-core — parallel Haskell runtimes in Rust, unified
//!
//! The facade crate of the reproduction of Berthold, Marlow, Hammond &
//! Al Zain, *Comparing and Optimising Parallel Haskell Implementations
//! for Multicore Machines* (ICPP 2009). It re-exports the layered
//! system under stable names and adds the comparison utilities the
//! benchmark harness is built on.
//!
//! ## The stack
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | tracing | [`trace`] | events, activity timelines, ASCII "EdenTV" rendering |
//! | data structures | [`deque`] | Chase–Lev lock-free deque + deterministic variant |
//! | heap | [`heap`] | arena graph heap, black holes, mark–sweep GC, allocation areas |
//! | evaluator | [`machine`] | lazy core language + explicit-state abstract machine |
//! | simulation | [`sim`] | virtual clocks, cost model, OS/core model, deterministic RNG |
//! | shared heap | [`gph`] | GpH runtime: capabilities, sparks, stop-the-world GC barrier |
//! | distributed heap | [`eden`] | Eden runtime: PEs, channels, streams, skeletons |
//! | real threads | [`native`] | wall-clock executors: Chase–Lev work stealing *and* Eden-style message passing |
//!
//! ## Simulated vs native Eden
//!
//! Both model the paper's distributed heap — PEs with private memory,
//! communicating fully-evaluated data over channels — one in virtual
//! time, one on OS threads. The APIs correspond piecewise:
//!
//! | concept | simulator ([`eden`]) | native ([`native`]) |
//! |---|---|---|
//! | configuration | `EdenConfig::new(pes)` | `NativeConfig::new(workers).with_backend(BackendKind::Eden)` |
//! | run entry | `EdenRuntime::run*` / `rph_workloads::*::run_eden` | `rph_workloads::NativeWorkload::run_on` |
//! | static farm | `parMap` process instantiation | [`native::par_map`] |
//! | demand-driven farm | `run_eden_master_worker` | [`native::master_worker`] (`Skeleton::MasterWorker`) |
//! | wavefront ring | `ring` skeleton (APSP) | [`native::ring`] + [`native::RingJob`] |
//! | message framing | `Packet` (virtual words) | [`native::Packet`] + [`native::Wordsize`] |
//! | channel capacity | stream/buffer model | `NativeConfig::with_chan_cap` |
//! | counters | `EdenStats` (messages, words) | `NativeStats` (`msgs_sent`, `words_sent`, block counts) |
//! | timeline | virtual-time `Tracer` | wall-clock `Tracer` (+ master row `CapId(workers)`) |
//!
//! ## Quick start
//!
//! ```
//! use rph_core::machine::prelude;
//! use rph_core::machine::{ir::*, ProgramBuilder};
//! use rph_core::gph::{GphConfig, GphRuntime};
//!
//! // sum (map inc [1..100]), sparking every element.
//! let mut b = ProgramBuilder::new();
//! let pre = prelude::install(&mut b);
//! let main = b.def(
//!     "main",
//!     1,
//!     let_(
//!         vec![
//!             pap(pre.inc, vec![]),
//!             thunk(pre.enum_from_to, vec![int(1), v(0)]),
//!             thunk(pre.map, vec![v(1), v(2)]),
//!             thunk(pre.spark_list, vec![v(3)]),
//!         ],
//!         seq(atom(v(4)), app(pre.sum, vec![v(3)])),
//!     ),
//! );
//! let program = b.build();
//!
//! let mut rt = GphRuntime::new(program, GphConfig::ghc69_plain(4).with_work_stealing());
//! let out = rt
//!     .run(|heap| {
//!         let n = heap.int(100);
//!         heap.alloc_thunk(main, vec![n])
//!     })
//!     .unwrap();
//! assert_eq!(rt.heap().expect_value(out.result).expect_int(), 5150);
//! ```

pub use rph_deque as deque;
pub use rph_eden as eden;
pub use rph_gph as gph;
pub use rph_heap as heap;
pub use rph_machine as machine;
pub use rph_native as native;
pub use rph_sim as sim;
pub use rph_trace as trace;

pub mod compare;
pub mod table;

/// Convenient single import for applications.
pub mod prelude {
    pub use crate::compare::{relative_speedup, SpeedupSeries};
    pub use crate::table::TextTable;
    pub use rph_eden::{EdenConfig, EdenRuntime};
    pub use rph_gph::{BlackHoling, GphConfig, GphRuntime, SparkExec, SparkPolicy};
    pub use rph_heap::{Heap, NodeRef, ScId, Value};
    pub use rph_machine::{ir, prelude as hs_prelude, Program, ProgramBuilder};
    pub use rph_native::{
        execute, master_worker, par_map, ring, BackendKind, Distribution, Granularity,
        NativeConfig, Packet, Pool, RingJob, Skeleton, StealPolicy, Wordsize,
    };
    pub use rph_trace::{render_timeline, RenderOptions, Timeline, TraceStats, Tracer};
}
