//! Job descriptions, handles and outcomes for the server front end.
//!
//! A job is a *class* (what to compute) owned by a *tenant*. Every
//! class decomposes into a fixed number of independent **units** — the
//! currency of admission control, fair scheduling and batching: the
//! dispatcher packs units from many small jobs into one native pool
//! run, and a unit is also the grain at which cancellation is observed
//! and a panic is contained.

use rph_native::CancelToken;
use rph_workloads::kernels;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a job computes. Every class is a deterministic pure function
/// of its description, so the server can cross-check results against
/// [`JobClass::expected`] — the "zero lost or duplicated results"
/// bench assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// Sum of Euler-totient values over `[1, n]`, chunked `chunk`
    /// numbers per unit — the paper's sumEuler kernel as a service
    /// request.
    SumEuler { n: u32, chunk: u32 },
    /// Synthetic CPU burn: `units` units of `iters` xorshift rounds
    /// each. Exists so benches can dial service time independently of
    /// the paper kernels.
    Spin { units: u32, iters: u32 },
    /// Like [`JobClass::Spin`], except unit `bad` panics — the fault
    /// injection used to prove a panicking job is contained to itself.
    Poison { units: u32, iters: u32, bad: u32 },
}

fn spin_unit(unit: u32, iters: u32) -> i64 {
    let mut x = 0x9e37_79b9_7f4a_7c15u64 ^ (u64::from(unit) << 32) ^ u64::from(iters);
    for _ in 0..iters {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    (x & 0xffff) as i64
}

impl JobClass {
    /// Number of independent units this job decomposes into.
    pub fn units(&self) -> u32 {
        match *self {
            JobClass::SumEuler { n, chunk } => n.div_ceil(chunk.max(1)),
            JobClass::Spin { units, .. } | JobClass::Poison { units, .. } => units,
        }
    }

    /// Execute one unit to its value. Pure; panics only for the
    /// designated unit of a [`JobClass::Poison`] job.
    pub fn run_unit(&self, unit: u32) -> i64 {
        match *self {
            JobClass::SumEuler { n, chunk } => {
                let chunk = chunk.max(1);
                let lo = u64::from(unit) * u64::from(chunk) + 1;
                let hi = (lo + u64::from(chunk) - 1).min(u64::from(n));
                // Segmented sieve — bit-identical to summing
                // `phi_counted` over the range (the test below pits
                // the two against each other).
                kernels::sum_phi_range_sieve(lo as i64, hi as i64)
            }
            JobClass::Spin { iters, .. } => spin_unit(unit, iters),
            JobClass::Poison { iters, bad, .. } => {
                if unit == bad {
                    panic!("poison job unit {unit} injected a panic");
                }
                spin_unit(unit, iters)
            }
        }
    }

    /// The value a completed job must produce; `None` for classes that
    /// cannot complete (poison).
    pub fn expected(&self) -> Option<i64> {
        match self {
            JobClass::Poison { .. } => None,
            _ => Some((0..self.units()).map(|u| self.run_unit(u)).sum()),
        }
    }
}

/// Server-assigned job identifier, unique per server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Terminal state of an accepted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Every unit ran; `value` is the combined result.
    Done,
    /// The job's (or the server's) cancel token was observed before
    /// all units ran.
    Cancelled,
    /// A unit panicked; the panic was contained to this job.
    Panicked,
}

/// What an accepted job resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobOutcome {
    pub status: JobStatus,
    /// Combined unit values. Meaningful only when `status` is
    /// [`JobStatus::Done`].
    pub value: i64,
    /// Time spent in the admission queue before its batch dispatched.
    pub queue_wait: Duration,
    /// Wall time of the pool run that served this job's batch.
    pub service: Duration,
    /// Submission-to-completion time (`queue_wait` + `service` +
    /// dispatch overhead).
    pub latency: Duration,
}

/// One-shot completion slot: the dispatcher fills it exactly once,
/// any number of waiters read it.
#[derive(Default)]
pub(crate) struct Oneshot {
    cell: Mutex<Option<JobOutcome>>,
    cv: Condvar,
}

impl Oneshot {
    pub fn set(&self, outcome: JobOutcome) {
        let mut cell = self.cell.lock().unwrap();
        assert!(cell.is_none(), "job completed twice");
        *cell = Some(outcome);
        self.cv.notify_all();
    }

    pub fn wait(&self) -> JobOutcome {
        let mut cell = self.cell.lock().unwrap();
        loop {
            if let Some(out) = *cell {
                return out;
            }
            cell = self.cv.wait(cell).unwrap();
        }
    }
}

/// The server's record of one accepted job, shared between the queue,
/// the in-flight batch and the caller's [`JobHandle`].
pub(crate) struct JobState {
    pub id: JobId,
    pub tenant: usize,
    pub class: JobClass,
    pub cancel: CancelToken,
    pub submitted_at: Instant,
    /// Units actually executed (not skipped by cancellation).
    pub units_run: AtomicU64,
    /// Set by the first unit of this job that panics.
    pub panicked: AtomicBool,
    pub slot: Oneshot,
}

impl JobState {
    pub fn new(id: JobId, tenant: usize, class: JobClass) -> Arc<Self> {
        Arc::new(JobState {
            id,
            tenant,
            class,
            cancel: CancelToken::new(),
            submitted_at: Instant::now(),
            units_run: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            slot: Oneshot::default(),
        })
    }
}

/// The caller's side of an accepted job: await it, cancel it, watch
/// its progress. Dropping the handle neither cancels nor leaks the
/// job — the server completes it regardless.
pub struct JobHandle {
    pub(crate) state: Arc<JobState>,
}

impl JobHandle {
    /// The server-assigned id.
    pub fn id(&self) -> JobId {
        self.state.id
    }

    /// The tenant this job was submitted under.
    pub fn tenant(&self) -> usize {
        self.state.tenant
    }

    /// Request cooperative cancellation. Units already executed stay
    /// executed; the token is observed before each remaining unit, so
    /// a running job stops within one unit's work.
    pub fn cancel(&self) {
        self.state.cancel.cancel();
    }

    /// Units executed so far — visible while the job runs.
    pub fn progress(&self) -> u64 {
        self.state.units_run.load(Ordering::SeqCst)
    }

    /// Block until the job reaches a terminal state.
    pub fn wait(&self) -> JobOutcome {
        self.state.slot.wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_euler_units_cover_exactly() {
        let class = JobClass::SumEuler { n: 100, chunk: 7 };
        assert_eq!(class.units(), 15);
        // The chunked decomposition must sum to the plain kernel sum.
        let plain: i64 = (1..=100).map(|k| kernels::phi_counted(k).0).sum();
        assert_eq!(class.expected(), Some(plain));
    }

    #[test]
    fn spin_is_deterministic() {
        let class = JobClass::Spin {
            units: 8,
            iters: 10,
        };
        assert_eq!(class.expected(), class.expected());
        assert_eq!(class.run_unit(3), class.run_unit(3));
        assert_ne!(class.run_unit(3), class.run_unit(4));
    }

    #[test]
    fn poison_has_no_oracle_and_panics_only_on_bad() {
        let class = JobClass::Poison {
            units: 4,
            iters: 1,
            bad: 2,
        };
        assert_eq!(class.expected(), None);
        class.run_unit(0);
        class.run_unit(3);
        let err = std::panic::catch_unwind(|| class.run_unit(2));
        assert!(err.is_err());
    }

    #[test]
    fn oneshot_resolves_once() {
        let slot = Oneshot::default();
        let out = JobOutcome {
            status: JobStatus::Done,
            value: 7,
            queue_wait: Duration::ZERO,
            service: Duration::ZERO,
            latency: Duration::ZERO,
        };
        slot.set(out);
        assert_eq!(slot.wait().value, 7);
        assert_eq!(slot.wait().value, 7);
    }
}
