//! A fixed-size log-bucketed latency histogram (HDR-style): 16 linear
//! sub-buckets per power of two, so every recorded duration lands
//! within ~6% of its bucket's representative value while the whole
//! structure stays a flat `u64` array — recording is two shifts and an
//! increment, safe to call on the submission path.

use std::time::Duration;

const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS; // 16 sub-buckets per octave
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB; // covers all u64 ns

/// Latency histogram over nanosecond durations.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(ns: u64) -> usize {
    if ns < SUB as u64 {
        return ns as usize;
    }
    let exp = 63 - ns.leading_zeros(); // >= SUB_BITS
    let sub = ((ns >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    (exp - SUB_BITS + 1) as usize * SUB + sub
}

/// Upper bound (inclusive representative) of a bucket, so reported
/// quantiles never understate the recorded value.
fn bucket_high(b: usize) -> u64 {
    if b < SUB {
        return b as u64;
    }
    let exp = (b / SUB) as u32 + SUB_BITS - 1;
    let sub = (b % SUB) as u64;
    ((sub + 1) << (exp - SUB_BITS)) - 1 + (1u64 << exp)
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            max_ns: 0,
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded duration, exact.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// The value at quantile `q` ∈ [0, 1]: an upper bound within one
    /// bucket (~6%) of the true sample. Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the observed maximum.
                return Duration::from_nanos(bucket_high(b).min(self.max_ns));
            }
        }
        self.max()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_and_cover() {
        let mut last = 0;
        for ns in [0u64, 1, 15, 16, 17, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            let b = bucket_of(ns);
            assert!(b >= last, "bucket order broke at {ns}");
            assert!(b < BUCKETS);
            assert!(bucket_high(b) >= ns, "upper bound below sample at {ns}");
            last = b;
        }
    }

    #[test]
    fn bucket_error_is_bounded() {
        for ns in [100u64, 1_000, 10_000, 123_456, 9_999_999] {
            let hi = bucket_high(bucket_of(ns));
            assert!(hi >= ns);
            assert!(
                (hi - ns) as f64 <= ns as f64 * 0.07,
                "bucket too wide at {ns}: {hi}"
            );
        }
    }

    #[test]
    fn quantiles_order_and_bound() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        let p999 = h.quantile(0.999);
        assert!(p50 <= p99 && p99 <= p999);
        assert!(p50 >= Duration::from_micros(480) && p50 <= Duration::from_micros(540));
        assert!(p999 <= h.max());
        assert_eq!(h.max(), Duration::from_millis(1));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(20));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_micros(20));
    }
}
