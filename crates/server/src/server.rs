//! The job server: bounded admission queue → weighted fair scheduler
//! → batched dispatch onto the persistent native pool.
//!
//! One **dispatcher** thread owns the backend (a persistent
//! [`Pool`] for the steal backend; per-batch skeleton instantiation
//! for the Eden backend) and loops: assemble a batch from the tenant
//! queues under deficit-round-robin, run it as a single native job,
//! resolve every member job's [`JobHandle`]. Admission control is a
//! high-water mark in *units*: a submission that would push the queued
//! backlog past [`ServerConfig::queue_cap_units`] is rejected
//! immediately with [`SubmitError::Backpressure`] — callers shed load
//! instead of growing an unbounded queue.
//!
//! Fault containment: every unit executes under `catch_unwind`, so a
//! panicking job resolves as [`JobStatus::Panicked`] while its
//! batch-mates complete normally and the pool keeps serving. (The
//! pool's own panic path — [`Pool::try_execute`] returning
//! `Err(JobPanicked)` — remains as the second line of defence.)

use crate::histogram::LatencyHistogram;
use crate::job::{JobClass, JobHandle, JobId, JobOutcome, JobState, JobStatus};
use rph_native::{BackendKind, CancelToken, Job, NativeConfig, Pool, RunError, Skeleton};
use rph_trace::{CapId, EventKind, Tracer};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration: the native backend plus the service-level
/// knobs (tenants, admission high-water mark, batch size).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Backend configuration (worker count, steal vs Eden, tracing).
    pub native: NativeConfig,
    /// Scheduling weight per tenant (index = tenant id). A tenant
    /// with weight 2 is granted twice the units per scheduling round
    /// of a weight-1 tenant while both are backlogged. Weights are
    /// clamped to ≥ 1.
    pub tenant_weights: Vec<u32>,
    /// Admission high-water mark, in units: a submission that would
    /// push the queued backlog past this is rejected. Must be at
    /// least as large as the largest job the server should accept.
    pub queue_cap_units: usize,
    /// Upper bound on units packed into one dispatched batch. A
    /// single job larger than this still runs, as a batch of its own.
    pub batch_max_units: usize,
    /// Per-worker prefetch depth for the Eden master–worker skeleton
    /// (ignored by the steal backend).
    pub prefetch: usize,
}

impl ServerConfig {
    /// Single-tenant defaults over the given backend config.
    pub fn new(native: NativeConfig) -> Self {
        ServerConfig {
            native,
            tenant_weights: vec![1],
            queue_cap_units: 4096,
            batch_max_units: 256,
            prefetch: 2,
        }
    }

    /// Replace the tenant weight table (one entry per tenant).
    pub fn with_tenants(mut self, weights: &[u32]) -> Self {
        self.tenant_weights = weights.iter().map(|&w| w.max(1)).collect();
        self
    }

    /// Set the admission high-water mark, in units.
    pub fn with_queue_cap(mut self, units: usize) -> Self {
        self.queue_cap_units = units;
        self
    }

    /// Set the per-batch unit cap.
    pub fn with_batch_max(mut self, units: usize) -> Self {
        self.batch_max_units = units.max(1);
        self
    }

    /// Shard the backend pool into `shards` × `per_shard` workers
    /// (passthrough to [`NativeConfig::with_topology`]): thieves probe
    /// their own shard first and batch cross-shard steals, surfaced in
    /// the run stats as `steal_local`/`steal_remote`/`remote_words`.
    pub fn with_topology(mut self, shards: usize, per_shard: usize) -> Self {
        self.native = self.native.with_topology(shards, per_shard);
        self
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queued backlog is above the high-water mark; retry later.
    /// Carries the backlog observed at rejection time.
    Backpressure { queued_units: usize },
    /// The server is shutting down.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Backpressure { queued_units } => {
                write!(f, "server backlogged ({queued_units} units queued)")
            }
            SubmitError::Closed => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Monotonic service counters, readable at any time via
/// [`Server::stats`] and returned by shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Submissions accepted into the queue.
    pub accepted: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Jobs resolved `Done`.
    pub done: u64,
    /// Jobs resolved `Cancelled` (by their token or at shutdown).
    pub cancelled: u64,
    /// Jobs resolved `Panicked`.
    pub panicked: u64,
    /// Batches dispatched to the backend.
    pub batches: u64,
    /// Units currently queued (0 after shutdown: no leaked slots).
    pub queued_units: usize,
    /// Jobs currently queued.
    pub queued_jobs: usize,
}

#[derive(Default)]
struct StatsInner {
    accepted: AtomicU64,
    rejected: AtomicU64,
    done: AtomicU64,
    cancelled: AtomicU64,
    panicked: AtomicU64,
    batches: AtomicU64,
}

/// Everything the dispatcher drained out of a server at shutdown.
pub struct ServerReport {
    /// Final counter values.
    pub stats: StatsSnapshot,
    /// The stitched service timeline (when `native.trace` was set):
    /// per-worker rows from every batch, plus one `ServerJob` event
    /// per completed job on the dispatcher's row.
    pub trace: Option<Tracer>,
}

/// Per-tenant FIFO queues plus the deficit-round-robin state.
pub(crate) struct QueueState {
    pub queues: Vec<VecDeque<Arc<JobState>>>,
    pub deficits: Vec<u64>,
    pub queued_units: usize,
    pub open: bool,
}

impl QueueState {
    pub fn new(tenants: usize) -> Self {
        QueueState {
            queues: (0..tenants).map(|_| VecDeque::new()).collect(),
            deficits: vec![0; tenants],
            queued_units: 0,
            open: true,
        }
    }

    fn queued_jobs(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

/// Deficit round robin over the tenant queues: each scheduling round
/// credits every backlogged tenant `weight` units of deficit and pops
/// head jobs it can afford, until the batch reaches `batch_max` units
/// or nothing more fits. Deficits persist across batches (that is
/// what makes the long-run unit share converge to the weights) and
/// reset when a tenant's queue drains (an idle tenant does not hoard
/// credit). A single job larger than `batch_max` is granted a batch
/// of its own.
pub(crate) fn assemble_batch(
    q: &mut QueueState,
    weights: &[u32],
    batch_max: usize,
) -> Vec<Arc<JobState>> {
    let n = weights.len();
    let mut picked: Vec<Arc<JobState>> = Vec::new();
    let mut total = 0usize;
    // Tenants whose head job no longer fits this batch: final for the
    // batch, since remaining capacity only shrinks.
    let mut full = vec![false; n];
    loop {
        let mut progressed = false;
        let mut active = false;
        for t in 0..n {
            if q.queues[t].is_empty() {
                q.deficits[t] = 0;
                continue;
            }
            active = true;
            if full[t] {
                continue;
            }
            q.deficits[t] += u64::from(weights[t].max(1));
            while let Some(job) = q.queues[t].front() {
                let units = job.class.units() as usize;
                if units > batch_max && total == 0 {
                    // Oversize job: its own batch, deficit forgiven.
                    let job = q.queues[t].pop_front().unwrap();
                    q.queued_units -= units;
                    q.deficits[t] = 0;
                    return vec![job];
                }
                if total + units > batch_max {
                    full[t] = true;
                    break;
                }
                if u64::try_from(units).unwrap() > q.deficits[t] {
                    break;
                }
                q.deficits[t] -= units as u64;
                let job = q.queues[t].pop_front().unwrap();
                q.queued_units -= units;
                total += units;
                picked.push(job);
                progressed = true;
            }
            if q.queues[t].is_empty() {
                q.deficits[t] = 0;
            }
            if total >= batch_max {
                return picked;
            }
        }
        if !active {
            return picked;
        }
        if !progressed && (0..n).all(|t| q.queues[t].is_empty() || full[t]) {
            return picked;
        }
    }
}

/// One job's contiguous slice of a batch's unit index space.
struct Seg {
    job: Arc<JobState>,
    start: usize,
    units: usize,
}

/// A packed batch of jobs, presented to the native backend as one
/// flat [`Job`] of `total` units — so the pool's range machinery
/// (packed `(lo, hi)` deque elements, lazy splitting, batch steals)
/// load-balances *across* the member jobs for free.
struct Batch {
    segs: Vec<Seg>,
    total: usize,
    server_cancel: CancelToken,
}

impl Job for Batch {
    type Out = i64;

    fn len(&self) -> usize {
        self.total
    }

    fn run(&self, idx: usize) -> i64 {
        let s = &self.segs[self.segs.partition_point(|s| s.start + s.units <= idx)];
        let unit = (idx - s.start) as u32;
        // Cooperative cancellation at unit grain: a cancelled job's
        // remaining units become no-ops, so the token is observed
        // within one unit's work even inside a large packed range.
        if self.server_cancel.is_cancelled()
            || s.job.cancel.is_cancelled()
            || s.job.panicked.load(Ordering::SeqCst)
        {
            return 0;
        }
        match catch_unwind(AssertUnwindSafe(|| s.job.class.run_unit(unit))) {
            Ok(v) => {
                s.job.units_run.fetch_add(1, Ordering::SeqCst);
                v
            }
            Err(_) => {
                // Contain the panic to this job: batch-mates and the
                // worker thread proceed untouched.
                s.job.panicked.store(true, Ordering::SeqCst);
                0
            }
        }
    }
}

struct Shared {
    q: Mutex<QueueState>,
    not_empty: Condvar,
    stats: StatsInner,
    server_cancel: CancelToken,
    weights: Vec<u32>,
    queue_cap_units: usize,
}

impl Shared {
    fn resolve(
        &self,
        job: &JobState,
        status: JobStatus,
        value: i64,
        queue_wait: Duration,
        service: Duration,
    ) {
        let counter = match status {
            JobStatus::Done => &self.stats.done,
            JobStatus::Cancelled => &self.stats.cancelled,
            JobStatus::Panicked => &self.stats.panicked,
        };
        counter.fetch_add(1, Ordering::SeqCst);
        job.slot.set(JobOutcome {
            status,
            value,
            queue_wait,
            service,
            latency: job.submitted_at.elapsed(),
        });
    }
}

enum Work {
    Run(Vec<Arc<JobState>>),
    Shutdown(Vec<Arc<JobState>>),
}

/// The long-running job server. Construct with [`Server::start`],
/// feed with [`Server::submit`], stop with [`Server::shutdown`] (let
/// the in-flight batch finish, cancel the queue) or
/// [`Server::shutdown_now`] (also abort the in-flight batch through
/// the pool's cancellation hook).
pub struct Server {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<Option<Tracer>>>,
    next_id: AtomicU64,
}

impl Server {
    /// Spawn the dispatcher (which owns the backend) and open the
    /// queue for submissions.
    pub fn start(cfg: ServerConfig) -> Server {
        let weights: Vec<u32> = if cfg.tenant_weights.is_empty() {
            vec![1]
        } else {
            cfg.tenant_weights.iter().map(|&w| w.max(1)).collect()
        };
        let shared = Arc::new(Shared {
            q: Mutex::new(QueueState::new(weights.len())),
            not_empty: Condvar::new(),
            stats: StatsInner::default(),
            server_cancel: CancelToken::new(),
            weights,
            queue_cap_units: cfg.queue_cap_units,
        });
        let d_shared = shared.clone();
        let dispatcher = std::thread::Builder::new()
            .name("rph-server-dispatch".into())
            .spawn(move || dispatcher(d_shared, &cfg))
            .expect("spawn dispatcher");
        Server {
            shared,
            dispatcher: Some(dispatcher),
            next_id: AtomicU64::new(0),
        }
    }

    /// Submit a job for `tenant`. Accepted jobs are eventually
    /// resolved exactly once; rejected submissions leave no state
    /// behind.
    pub fn submit(&self, tenant: usize, class: JobClass) -> Result<JobHandle, SubmitError> {
        assert!(
            tenant < self.shared.weights.len(),
            "tenant {tenant} out of range ({} configured)",
            self.shared.weights.len()
        );
        let units = class.units() as usize;
        let mut q = self.shared.q.lock().unwrap();
        if !q.open {
            return Err(SubmitError::Closed);
        }
        if q.queued_units + units > self.shared.queue_cap_units {
            let queued_units = q.queued_units;
            drop(q);
            self.shared.stats.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(SubmitError::Backpressure { queued_units });
        }
        let id = JobId(self.next_id.fetch_add(1, Ordering::SeqCst));
        let state = JobState::new(id, tenant, class);
        q.queues[tenant].push_back(state.clone());
        q.queued_units += units;
        drop(q);
        self.shared.stats.accepted.fetch_add(1, Ordering::SeqCst);
        self.shared.not_empty.notify_one();
        Ok(JobHandle { state })
    }

    /// Current counters (queue depths read under the queue lock).
    pub fn stats(&self) -> StatsSnapshot {
        let (queued_units, queued_jobs) = {
            let q = self.shared.q.lock().unwrap();
            (q.queued_units, q.queued_jobs())
        };
        let s = &self.shared.stats;
        StatsSnapshot {
            accepted: s.accepted.load(Ordering::SeqCst),
            rejected: s.rejected.load(Ordering::SeqCst),
            done: s.done.load(Ordering::SeqCst),
            cancelled: s.cancelled.load(Ordering::SeqCst),
            panicked: s.panicked.load(Ordering::SeqCst),
            batches: s.batches.load(Ordering::SeqCst),
            queued_units,
            queued_jobs,
        }
    }

    /// Graceful stop: the in-flight batch finishes, queued jobs are
    /// resolved `Cancelled`, the dispatcher (and its pool) exits.
    pub fn shutdown(mut self) -> ServerReport {
        let trace = self.stop();
        ServerReport {
            stats: self.stats(),
            trace,
        }
    }

    /// Hard stop: additionally trips the server-wide cancel token, so
    /// the in-flight batch aborts at its next range boundary (steal
    /// backend) / unit boundary (both backends) instead of running to
    /// completion.
    pub fn shutdown_now(self) -> ServerReport {
        self.shared.server_cancel.cancel();
        self.shutdown()
    }

    fn stop(&mut self) -> Option<Tracer> {
        let handle = self.dispatcher.take()?;
        {
            let mut q = self.shared.q.lock().unwrap();
            q.open = false;
        }
        self.shared.not_empty.notify_all();
        handle.join().expect("dispatcher panicked")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

fn dispatcher(shared: Arc<Shared>, cfg: &ServerConfig) -> Option<Tracer> {
    let native = &cfg.native;
    let mut pool = matches!(native.backend, BackendKind::Steal).then(|| Pool::new(native));
    let rows = native.workers.max(1) + 1;
    let master = CapId((rows - 1) as u32);
    let mut tracer = native.trace.then(|| Tracer::new(rows));
    let epoch = Instant::now();
    let ns_since = |t0: Instant, epoch: Instant| -> u64 {
        u64::try_from(t0.duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
    };
    loop {
        let work = {
            let mut q = shared.q.lock().unwrap();
            loop {
                let batch = assemble_batch(&mut q, &shared.weights, cfg.batch_max_units);
                if !batch.is_empty() {
                    break Work::Run(batch);
                }
                if !q.open {
                    let leftovers: Vec<Arc<JobState>> =
                        q.queues.iter_mut().flat_map(std::mem::take).collect();
                    q.queued_units = 0;
                    break Work::Shutdown(leftovers);
                }
                q = shared.not_empty.wait(q).unwrap();
            }
        };
        let jobs = match work {
            Work::Shutdown(leftovers) => {
                // Never-dispatched jobs resolve as cancelled-in-queue.
                for job in leftovers {
                    let waited = job.submitted_at.elapsed();
                    shared.resolve(&job, JobStatus::Cancelled, 0, waited, Duration::ZERO);
                }
                return tracer;
            }
            Work::Run(jobs) => jobs,
        };

        let dispatch_t0 = Instant::now();
        let mut segs = Vec::with_capacity(jobs.len());
        let mut total = 0usize;
        for job in jobs {
            // A job cancelled while queued is resolved without
            // spending any backend time on it.
            if job.cancel.is_cancelled() || shared.server_cancel.is_cancelled() {
                let waited = dispatch_t0.duration_since(job.submitted_at);
                shared.resolve(&job, JobStatus::Cancelled, 0, waited, Duration::ZERO);
                continue;
            }
            let units = job.class.units() as usize;
            segs.push(Seg {
                job,
                start: total,
                units,
            });
            total += units;
        }
        if segs.is_empty() {
            continue;
        }
        let batch = Batch {
            segs,
            total,
            server_cancel: shared.server_cancel.clone(),
        };
        let result = match native.backend {
            BackendKind::Steal => {
                let pool = pool.as_mut().expect("steal backend has a pool");
                pool.try_execute_cancellable(&batch, &shared.server_cancel)
            }
            BackendKind::Eden => Skeleton::MasterWorker {
                prefetch: cfg.prefetch,
            }
            .try_run(&batch, native)
            .map_err(RunError::from),
        };
        shared.stats.batches.fetch_add(1, Ordering::SeqCst);
        match result {
            Ok(out) => {
                if let (Some(tr), Some(bt)) = (tracer.as_mut(), out.trace.as_ref()) {
                    tr.extend_shifted(bt, ns_since(dispatch_t0, epoch));
                }
                for seg in &batch.segs {
                    let job = &seg.job;
                    let status = if job.cancel.is_cancelled() || shared.server_cancel.is_cancelled()
                    {
                        JobStatus::Cancelled
                    } else if job.panicked.load(Ordering::SeqCst) {
                        JobStatus::Panicked
                    } else {
                        JobStatus::Done
                    };
                    let value: i64 = out.values[seg.start..seg.start + seg.units].iter().sum();
                    let waited = dispatch_t0.duration_since(job.submitted_at);
                    if let Some(tr) = tracer.as_mut() {
                        tr.record(
                            master,
                            ns_since(Instant::now(), epoch),
                            EventKind::ServerJob {
                                job: job.id.0,
                                queued_ns: u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX),
                                service_ns: u64::try_from(out.wall.as_nanos()).unwrap_or(u64::MAX),
                            },
                        );
                    }
                    shared.resolve(job, status, value, waited, out.wall);
                }
            }
            Err(err) => {
                // The whole batch failed at the backend. With units
                // wrapped in catch_unwind this is a cancellation (or a
                // defect worth surfacing per-job as Panicked).
                let status = match err {
                    RunError::Cancelled => JobStatus::Cancelled,
                    RunError::Panicked(_) | RunError::Incomplete(_) => JobStatus::Panicked,
                };
                let service = dispatch_t0.elapsed();
                for seg in &batch.segs {
                    let waited = dispatch_t0.duration_since(seg.job.submitted_at);
                    shared.resolve(&seg.job, status, 0, waited, service);
                }
            }
        }
    }
}

/// Convenience for benches and tests: wait for every handle and fold
/// the outcomes into per-status counts plus latency histograms.
pub struct WaitSummary {
    pub done: u64,
    pub cancelled: u64,
    pub panicked: u64,
    pub latency: LatencyHistogram,
    pub queue_wait: LatencyHistogram,
    pub service: LatencyHistogram,
}

/// Block on every handle; histogram latencies over the `Done` jobs.
pub fn wait_all(handles: &[JobHandle]) -> WaitSummary {
    let mut s = WaitSummary {
        done: 0,
        cancelled: 0,
        panicked: 0,
        latency: LatencyHistogram::new(),
        queue_wait: LatencyHistogram::new(),
        service: LatencyHistogram::new(),
    };
    for h in handles {
        let out = h.wait();
        match out.status {
            JobStatus::Done => {
                s.done += 1;
                s.latency.record(out.latency);
                s.queue_wait.record(out.queue_wait);
                s.service.record(out.service);
            }
            JobStatus::Cancelled => s.cancelled += 1,
            JobStatus::Panicked => s.panicked += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn steal2() -> NativeConfig {
        NativeConfig::steal(2)
    }

    /// Spin-wait until a handle shows forward progress — the sync
    /// point that makes the timing-sensitive tests deterministic: once
    /// progress is visible the dispatcher is provably inside that
    /// job's batch.
    fn await_progress(h: &JobHandle) {
        while h.progress() == 0 {
            std::thread::yield_now();
        }
    }

    fn fill_queue(q: &mut QueueState, tenant: usize, n: usize, class: JobClass) {
        for i in 0..n {
            let job = JobState::new(JobId(i as u64), tenant, class);
            q.queued_units += class.units() as usize;
            q.queues[tenant].push_back(job);
        }
    }

    // ---------------------------------------------------- DRR scheduler unit

    #[test]
    fn drr_alternates_equal_weights() {
        let mut q = QueueState::new(2);
        let one = JobClass::Spin { units: 1, iters: 1 };
        fill_queue(&mut q, 0, 10, one);
        fill_queue(&mut q, 1, 10, one);
        let batch = assemble_batch(&mut q, &[1, 1], 6);
        let tenants: Vec<usize> = batch.iter().map(|j| j.tenant).collect();
        assert_eq!(tenants, vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(q.queued_units, 14);
    }

    #[test]
    fn drr_respects_weights() {
        let mut q = QueueState::new(2);
        let one = JobClass::Spin { units: 1, iters: 1 };
        fill_queue(&mut q, 0, 12, one);
        fill_queue(&mut q, 1, 12, one);
        // Weight 2:1 → tenant 0 gets two units per round to tenant
        // 1's one.
        let batch = assemble_batch(&mut q, &[2, 1], 9);
        let t0 = batch.iter().filter(|j| j.tenant == 0).count();
        let t1 = batch.iter().filter(|j| j.tenant == 1).count();
        assert_eq!((t0, t1), (6, 3));
    }

    #[test]
    fn drr_oversize_job_gets_its_own_batch() {
        let mut q = QueueState::new(1);
        let big = JobClass::Spin {
            units: 100,
            iters: 1,
        };
        let small = JobClass::Spin { units: 1, iters: 1 };
        fill_queue(&mut q, 0, 1, big);
        fill_queue(&mut q, 0, 3, small);
        let batch = assemble_batch(&mut q, &[1], 8);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].class.units(), 100);
        let batch = assemble_batch(&mut q, &[1], 8);
        assert_eq!(batch.len(), 3);
        assert_eq!(q.queued_units, 0);
    }

    #[test]
    fn drr_drains_all_units_exactly() {
        let mut q = QueueState::new(3);
        for t in 0..3 {
            fill_queue(
                &mut q,
                t,
                7,
                JobClass::Spin {
                    units: (t + 1) as u32,
                    iters: 1,
                },
            );
        }
        let expect_units = 7 * (1 + 2 + 3);
        let mut drained = 0usize;
        let mut rounds = 0;
        while q.queued_units > 0 {
            let batch = assemble_batch(&mut q, &[1, 2, 3], 5);
            assert!(!batch.is_empty(), "scheduler stalled with work queued");
            drained += batch
                .iter()
                .map(|j| j.class.units() as usize)
                .sum::<usize>();
            rounds += 1;
            assert!(rounds < 100);
        }
        assert_eq!(drained, expect_units);
        assert_eq!(q.queued_units, 0);
    }

    // ------------------------------------------------------ end-to-end basic

    #[test]
    fn jobs_resolve_with_correct_values_on_both_backends() {
        for backend in [BackendKind::Steal, BackendKind::Eden] {
            let native = NativeConfig::new(2).with_backend(backend);
            let server = Server::start(ServerConfig::new(native));
            let classes = [
                JobClass::SumEuler { n: 120, chunk: 8 },
                JobClass::Spin {
                    units: 5,
                    iters: 64,
                },
                JobClass::SumEuler { n: 40, chunk: 40 },
            ];
            let handles: Vec<JobHandle> = classes
                .iter()
                .map(|&c| server.submit(0, c).expect("accepted"))
                .collect();
            for (h, c) in handles.iter().zip(&classes) {
                let out = h.wait();
                assert_eq!(out.status, JobStatus::Done, "{backend:?}");
                assert_eq!(Some(out.value), c.expected(), "{backend:?}");
            }
            let report = server.shutdown();
            assert_eq!(report.stats.done, 3, "{backend:?}");
            assert_eq!(report.stats.queued_units, 0);
        }
    }

    /// The sharded pool behind the server is a scheduling change only:
    /// job values and resolution are unaffected by the topology.
    #[test]
    fn sharded_pool_serves_jobs_identically() {
        let server = Server::start(ServerConfig::new(NativeConfig::steal(4)).with_topology(2, 2));
        let classes = [
            JobClass::SumEuler { n: 120, chunk: 8 },
            JobClass::SumEuler { n: 60, chunk: 4 },
        ];
        let handles: Vec<JobHandle> = classes
            .iter()
            .map(|&c| server.submit(0, c).expect("accepted"))
            .collect();
        for (h, c) in handles.iter().zip(&classes) {
            let out = h.wait();
            assert_eq!(out.status, JobStatus::Done);
            assert_eq!(Some(out.value), c.expected());
        }
        let report = server.shutdown();
        assert_eq!(report.stats.done, 2);
    }

    // -------------------------------------------- admission control (reject)

    #[test]
    fn overload_is_rejected_at_the_high_water_mark() {
        // One worker, and a blocker job long enough that the flood
        // below happens entirely while the dispatcher is busy running
        // it — so no queue slot frees up mid-flood and the arithmetic
        // is exact.
        let cfg = ServerConfig::new(NativeConfig::steal(1))
            .with_queue_cap(64)
            .with_batch_max(64);
        let server = Server::start(cfg);
        let blocker = server
            .submit(
                0,
                JobClass::Spin {
                    units: 50,
                    iters: 2_000_000,
                },
            )
            .expect("blocker accepted");
        await_progress(&blocker);
        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        for _ in 0..100 {
            match server.submit(0, JobClass::Spin { units: 1, iters: 1 }) {
                Ok(h) => accepted.push(h),
                Err(SubmitError::Backpressure { queued_units }) => {
                    assert!(queued_units + 1 > 64);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected submit error {e}"),
            }
        }
        assert_eq!(accepted.len(), 64, "cap admits exactly the high-water mark");
        assert_eq!(rejected, 36);
        assert_eq!(server.stats().rejected, 36);
        // Back-pressure is transient: once the backlog drains, the
        // same submission is accepted again.
        wait_all(&accepted);
        server
            .submit(0, JobClass::Spin { units: 1, iters: 1 })
            .expect("accepted after drain")
            .wait();
        let report = server.shutdown();
        assert_eq!(report.stats.queued_units, 0);
    }

    // ------------------------------------------------- cancellation mid-run

    #[test]
    fn cancel_mid_run_stops_within_a_unit() {
        let server = Server::start(ServerConfig::new(steal2()));
        let h = server
            .submit(
                0,
                JobClass::Spin {
                    units: 4096,
                    iters: 20_000,
                },
            )
            .expect("accepted");
        await_progress(&h);
        h.cancel();
        let out = h.wait();
        assert_eq!(out.status, JobStatus::Cancelled);
        let ran = h.progress();
        assert!(ran >= 1, "progress was observed before cancelling");
        assert!(
            ran < 4096,
            "cancellation was observed mid-run, not after completion"
        );
        // The server (and its pool) keeps serving.
        let next = server
            .submit(0, JobClass::Spin { units: 4, iters: 8 })
            .expect("accepted");
        assert_eq!(next.wait().status, JobStatus::Done);
        let report = server.shutdown();
        assert_eq!(report.stats.cancelled, 1);
        assert_eq!(report.stats.done, 1);
    }

    #[test]
    fn shutdown_now_aborts_the_inflight_batch() {
        let server = Server::start(ServerConfig::new(steal2()));
        let h = server
            .submit(
                0,
                JobClass::Spin {
                    units: 4096,
                    iters: 20_000,
                },
            )
            .expect("accepted");
        await_progress(&h);
        let report = server.shutdown_now();
        let out = h.wait();
        assert_eq!(out.status, JobStatus::Cancelled);
        assert!(h.progress() < 4096);
        assert_eq!(report.stats.queued_units, 0);
    }

    // ------------------------------------------------------ panic isolation

    #[test]
    fn poison_job_is_contained_to_itself() {
        // Park the dispatcher behind a blocker so the poison job and
        // its victims-to-be land in the same batch.
        let cfg = ServerConfig::new(steal2()).with_batch_max(256);
        let server = Server::start(cfg);
        let blocker = server
            .submit(
                0,
                JobClass::Spin {
                    units: 8,
                    iters: 500_000,
                },
            )
            .expect("accepted");
        await_progress(&blocker);
        let poison = server
            .submit(
                0,
                JobClass::Poison {
                    units: 4,
                    iters: 4,
                    bad: 2,
                },
            )
            .expect("accepted");
        let mates: Vec<JobHandle> = (0..6)
            .map(|_| {
                server
                    .submit(0, JobClass::SumEuler { n: 60, chunk: 6 })
                    .expect("accepted")
            })
            .collect();
        assert_eq!(poison.wait().status, JobStatus::Panicked);
        for h in &mates {
            let out = h.wait();
            assert_eq!(out.status, JobStatus::Done, "batch-mate survived the panic");
            assert_eq!(
                Some(out.value),
                JobClass::SumEuler { n: 60, chunk: 6 }.expected()
            );
        }
        // The pool is still alive for new work after the panic.
        let after = server
            .submit(0, JobClass::Spin { units: 4, iters: 8 })
            .expect("accepted");
        assert_eq!(after.wait().status, JobStatus::Done);
        let report = server.shutdown();
        assert_eq!(report.stats.panicked, 1);
        assert_eq!(report.stats.done, 8);
    }

    // ------------------------------------------------------ tenant fairness

    #[test]
    fn backlogged_tenants_share_by_weight() {
        // Two equal-weight tenants, 10:1 submission skew, all queued
        // behind a blocker so both backlogs exist before the first
        // scheduling decision. DRR must serve them alternately: the
        // minority tenant's jobs all complete while the majority
        // tenant still has most of its backlog waiting.
        let cfg = ServerConfig::new(steal2())
            .with_tenants(&[1, 1])
            .with_queue_cap(1024)
            .with_batch_max(4);
        let server = Server::start(cfg);
        let blocker = server
            .submit(
                0,
                JobClass::Spin {
                    units: 8,
                    iters: 500_000,
                },
            )
            .expect("accepted");
        await_progress(&blocker);
        let tiny = JobClass::Spin {
            units: 1,
            iters: 1_000,
        };
        let majority: Vec<JobHandle> = (0..40)
            .map(|_| server.submit(0, tiny).expect("accepted"))
            .collect();
        let minority: Vec<JobHandle> = (0..4)
            .map(|_| server.submit(1, tiny).expect("accepted"))
            .collect();
        let slow_minority = minority.iter().map(|h| h.wait().latency).max().unwrap();
        let mut majority_latencies: Vec<Duration> =
            majority.iter().map(|h| h.wait().latency).collect();
        majority_latencies.sort();
        // With strict alternation the minority finishes by the second
        // mixed batch; at least half the majority backlog must still
        // be queued at that point. Compare against the 20th majority
        // completion to leave a wide scheduling margin.
        assert!(
            slow_minority < majority_latencies[19],
            "minority tenant starved: its slowest job ({slow_minority:?}) finished after \
             the majority's 20th ({:?})",
            majority_latencies[19]
        );
        server.shutdown();
    }

    // ------------------------------------------------------------ soak test

    #[test]
    fn soak_ten_thousand_jobs_leak_nothing() {
        let cfg = ServerConfig::new(steal2())
            .with_queue_cap(200_000)
            .with_batch_max(512);
        let server = Server::start(cfg);
        let classes = [
            JobClass::Spin { units: 1, iters: 8 },
            JobClass::Spin { units: 3, iters: 4 },
            JobClass::SumEuler { n: 24, chunk: 8 },
        ];
        let expected: Vec<i64> = classes.iter().map(|c| c.expected().unwrap()).collect();
        let handles: Vec<(usize, JobHandle)> = (0..10_000)
            .map(|i| {
                let k = i % classes.len();
                (k, server.submit(0, classes[k]).expect("accepted"))
            })
            .collect();
        for (k, h) in &handles {
            let out = h.wait();
            assert_eq!(out.status, JobStatus::Done);
            assert_eq!(out.value, expected[*k], "lost or duplicated unit results");
        }
        let report = server.shutdown();
        assert_eq!(report.stats.accepted, 10_000);
        assert_eq!(report.stats.done, 10_000);
        assert_eq!(report.stats.cancelled, 0);
        assert_eq!(report.stats.panicked, 0);
        assert_eq!(report.stats.queued_units, 0, "leaked queue slots");
        assert_eq!(report.stats.queued_jobs, 0);
        assert!(report.stats.batches <= 10_000, "batching happened at all");
    }

    // ------------------------------------------------------------- tracing

    #[test]
    fn trace_records_one_server_job_event_per_completion() {
        let native = NativeConfig::steal(2).with_trace();
        let server = Server::start(ServerConfig::new(native));
        let handles: Vec<JobHandle> = (0..5)
            .map(|_| {
                server
                    .submit(
                        0,
                        JobClass::Spin {
                            units: 4,
                            iters: 16,
                        },
                    )
                    .expect("accepted")
            })
            .collect();
        wait_all(&handles);
        let report = server.shutdown();
        let trace = report.trace.expect("tracing was on");
        let counters = rph_trace::Counters::from_tracer(&trace);
        assert_eq!(counters.server_jobs, 5);
        assert!(counters.server_service_ns > 0);
        // Batch worker rows were stitched in under the dispatcher row.
        assert!(counters.native_runs > 0);
    }
}
