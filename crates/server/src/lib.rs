//! # rph-server — a job-server front end over the persistent pool
//!
//! The native executors answer *how fast one run goes*; this crate
//! answers *what it takes to keep them serving*: a long-running,
//! multi-tenant job server in front of the persistent work-stealing
//! [`rph_native::Pool`] (or the Eden master–worker skeleton — both
//! backends serve traffic through the same dispatcher).
//!
//! The service pipeline, front to back:
//!
//! 1. **Admission control** — a bounded ingress queue measured in
//!    *units* (a job's independent tasks). Submissions above the
//!    high-water mark are rejected immediately with
//!    [`SubmitError::Backpressure`]; callers shed load instead of the
//!    queue growing without bound.
//! 2. **Weighted fair scheduling** — deficit round robin across
//!    per-tenant FIFO queues: while several tenants are backlogged,
//!    each receives units in proportion to its configured weight, so
//!    one chatty tenant cannot starve the rest.
//! 3. **Batching** — many small jobs are packed into one flat native
//!    job, so the pool's packed `(lo, hi)` range machinery
//!    load-balances *across* jobs and the per-run handoff cost is
//!    paid once per batch, not once per job.
//! 4. **Cooperative cancellation** — every accepted job carries a
//!    [`rph_native::CancelToken`]; it is observed before each unit
//!    (and, on the steal backend, at the pool's range boundaries for
//!    whole-server shutdown), so cancelling a running job stops it
//!    within one unit's work.
//! 5. **Fault containment** — each unit executes under
//!    `catch_unwind`: a panicking job resolves as
//!    [`JobStatus::Panicked`] while its batch-mates and the pool keep
//!    going. This is the service-level counterpart of
//!    [`rph_native::Pool::try_execute`]'s typed
//!    [`rph_native::JobPanicked`] error.
//!
//! Latency accounting is first-class: every resolved job reports its
//! queue wait, its batch's service time and its end-to-end latency,
//! and [`LatencyHistogram`] folds those into p50/p99/p999 for the
//! `bench_server_json` binary. On a single-core host the speedup
//! numbers elsewhere in this repository are vacuous, but these
//! latency distributions remain meaningful — queueing delay, batching
//! and admission behaviour do not need spare cores to show up.

mod histogram;
mod job;
mod server;

pub use histogram::LatencyHistogram;
pub use job::{JobClass, JobHandle, JobId, JobOutcome, JobStatus};
pub use server::{
    wait_all, Server, ServerConfig, ServerReport, StatsSnapshot, SubmitError, WaitSummary,
};
