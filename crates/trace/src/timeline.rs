//! Folding state-change events into per-capability activity intervals.

use crate::event::{CapId, EventKind, State, Time};
use crate::tracer::Tracer;

/// A maximal span of time during which a capability stayed in one state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub start: Time,
    pub end: Time,
    pub state: State,
}

impl Interval {
    /// Duration of the interval.
    pub fn len(&self) -> Time {
        self.end - self.start
    }

    /// True for zero-length intervals.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Per-capability activity intervals for a whole run — the data behind
/// the paper's Fig. 2 / Fig. 4 trace diagrams.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// `rows[c]` is the interval sequence of capability `c`, contiguous
    /// and non-overlapping, covering `[first event, end_time]`.
    pub rows: Vec<Vec<Interval>>,
    /// End of the observed run.
    pub end_time: Time,
}

impl Timeline {
    /// Build a timeline from a tracer's state-change events.
    ///
    /// Capabilities that emitted no state changes get a single
    /// [`State::Idle`] interval covering the whole run. Zero-length
    /// intervals (several state changes at the same instant) are elided,
    /// keeping only the last state at each instant.
    pub fn from_tracer(tracer: &Tracer) -> Self {
        let end_time = tracer.end_time();
        let rows = (0..tracer.caps())
            .map(|c| Self::row(tracer, CapId(c as u32), end_time))
            .collect();
        Timeline { rows, end_time }
    }

    fn row(tracer: &Tracer, cap: CapId, end_time: Time) -> Vec<Interval> {
        let mut out: Vec<Interval> = Vec::new();
        let mut cur: Option<(Time, State)> = None;
        for ev in tracer.events_for(cap) {
            if let EventKind::StateChange { state } = ev.kind {
                if let Some((start, prev)) = cur {
                    if ev.time > start {
                        out.push(Interval {
                            start,
                            end: ev.time,
                            state: prev,
                        });
                    }
                }
                cur = Some((ev.time, state));
            }
        }
        match cur {
            Some((start, state)) if end_time > start => {
                out.push(Interval {
                    start,
                    end: end_time,
                    state,
                });
            }
            Some(_) => {}
            None => {
                if end_time > 0 {
                    out.push(Interval {
                        start: 0,
                        end: end_time,
                        state: State::Idle,
                    });
                }
            }
        }
        out
    }

    /// Total time capability `cap` spent in `state`.
    pub fn time_in(&self, cap: CapId, state: State) -> Time {
        self.rows[cap.index()]
            .iter()
            .filter(|iv| iv.state == state)
            .map(Interval::len)
            .sum()
    }

    /// Fraction of the run capability `cap` spent in `state` (0..=1).
    pub fn fraction_in(&self, cap: CapId, state: State) -> f64 {
        if self.end_time == 0 {
            return 0.0;
        }
        self.time_in(cap, state) as f64 / self.end_time as f64
    }

    /// Mean over all capabilities of [`Self::fraction_in`].
    pub fn mean_fraction(&self, state: State) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        (0..self.rows.len())
            .map(|c| self.fraction_in(CapId(c as u32), state))
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// The state of `cap` at time `t` (the interval containing `t`),
    /// or `None` if `t` falls outside the observed run.
    pub fn state_at(&self, cap: CapId, t: Time) -> Option<State> {
        let row = &self.rows[cap.index()];
        let idx = row.partition_point(|iv| iv.end <= t);
        row.get(idx).filter(|iv| iv.start <= t).map(|iv| iv.state)
    }

    /// Check structural invariants: intervals are contiguous, ordered,
    /// and non-empty. Used by integration tests.
    pub fn check_well_formed(&self) -> Result<(), String> {
        for (c, row) in self.rows.iter().enumerate() {
            let mut prev_end: Option<Time> = None;
            for iv in row {
                if iv.is_empty() {
                    return Err(format!("cap{c}: empty interval at {}", iv.start));
                }
                if let Some(pe) = prev_end {
                    if iv.start != pe {
                        return Err(format!(
                            "cap{c}: gap/overlap at {} (prev ended {pe})",
                            iv.start
                        ));
                    }
                }
                prev_end = Some(iv.end);
            }
            if let Some(pe) = prev_end {
                if pe != self.end_time {
                    return Err(format!(
                        "cap{c}: last interval ends {pe}, run ends {}",
                        self.end_time
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tracer {
        let mut t = Tracer::new(2);
        t.state(CapId(0), 0, State::Running);
        t.state(CapId(0), 40, State::Gc);
        t.state(CapId(0), 50, State::Running);
        t.state(CapId(1), 0, State::Idle);
        t.state(CapId(1), 30, State::Running);
        t.state(CapId(0), 100, State::Idle); // sets end_time = 100
        t
    }

    #[test]
    fn builds_contiguous_rows() {
        let tl = Timeline::from_tracer(&sample());
        tl.check_well_formed().unwrap();
        assert_eq!(tl.end_time, 100);
        assert_eq!(tl.rows[0].len(), 3); // trailing Idle interval is zero-length, elided
        assert_eq!(tl.time_in(CapId(0), State::Running), 90);
        assert_eq!(tl.time_in(CapId(0), State::Gc), 10);
        assert_eq!(tl.time_in(CapId(1), State::Idle), 30);
        assert_eq!(tl.time_in(CapId(1), State::Running), 70);
    }

    #[test]
    fn fractions() {
        let tl = Timeline::from_tracer(&sample());
        assert!((tl.fraction_in(CapId(0), State::Running) - 0.9).abs() < 1e-12);
        assert!((tl.mean_fraction(State::Running) - (0.9 + 0.7) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn state_at_lookup() {
        let tl = Timeline::from_tracer(&sample());
        assert_eq!(tl.state_at(CapId(0), 0), Some(State::Running));
        assert_eq!(tl.state_at(CapId(0), 45), Some(State::Gc));
        assert_eq!(tl.state_at(CapId(0), 50), Some(State::Running));
        assert_eq!(tl.state_at(CapId(1), 99), Some(State::Running));
        assert_eq!(tl.state_at(CapId(1), 100), None);
    }

    #[test]
    fn capability_without_events_is_idle() {
        let mut t = Tracer::new(2);
        t.state(CapId(0), 0, State::Running);
        t.state(CapId(0), 10, State::Idle);
        let tl = Timeline::from_tracer(&t);
        tl.check_well_formed().unwrap();
        assert_eq!(
            tl.rows[1],
            vec![Interval {
                start: 0,
                end: 10,
                state: State::Idle
            }]
        );
    }

    #[test]
    fn same_instant_changes_keep_last() {
        let mut t = Tracer::new(1);
        t.state(CapId(0), 0, State::Running);
        t.state(CapId(0), 5, State::Gc);
        t.state(CapId(0), 5, State::Runnable);
        t.state(CapId(0), 9, State::Idle);
        t.state(CapId(0), 10, State::Idle);
        let tl = Timeline::from_tracer(&t);
        tl.check_well_formed().unwrap();
        assert_eq!(tl.state_at(CapId(0), 5), Some(State::Runnable));
        assert_eq!(tl.time_in(CapId(0), State::Gc), 0);
    }
}
