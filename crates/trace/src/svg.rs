//! SVG rendering of activity timelines — the closest analogue of the
//! paper's EdenTV screenshots (Figs. 2 and 4): one coloured bar per
//! capability, time left to right, using the paper's colour legend
//! (green running, yellow runnable, red blocked, blue idle; GC in
//! magenta, descheduled in grey).

use crate::event::State;
use crate::timeline::Timeline;
use std::fmt::Write as _;

fn fill(state: State) -> &'static str {
    match state {
        State::Running => "#2e8b57",
        State::Runnable => "#e6c229",
        State::Blocked => "#c0392b",
        State::Idle => "#2a6f97",
        State::Gc => "#8e44ad",
        State::Descheduled => "#9aa0a6",
    }
}

/// Render the timeline as a standalone SVG document.
///
/// `width` is the drawing width in pixels; each capability gets a
/// `row_height`-pixel bar with a small gap, plus a time axis at the
/// bottom.
pub fn render_svg(tl: &Timeline, width: u32, row_height: u32) -> String {
    let caps = tl.rows.len() as u32;
    let gap = 4u32;
    let label_w = 56u32;
    let axis_h = 22u32;
    let h = caps * (row_height + gap) + axis_h + gap;
    let w = label_w + width + 10;
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" font-family="monospace" font-size="11">"#
    );
    let _ = writeln!(out, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    if tl.end_time == 0 {
        let _ = writeln!(out, r#"<text x="4" y="14">(empty trace)</text></svg>"#);
        return out;
    }
    let xscale = width as f64 / tl.end_time as f64;
    for (cap, row) in tl.rows.iter().enumerate() {
        let y = cap as u32 * (row_height + gap) + gap;
        let _ = writeln!(
            out,
            r#"<text x="2" y="{}">cap{cap}</text>"#,
            y + row_height / 2 + 4
        );
        for iv in row {
            let x = label_w as f64 + iv.start as f64 * xscale;
            let iw = (iv.len() as f64 * xscale).max(0.2);
            let _ = writeln!(
                out,
                r#"<rect x="{x:.2}" y="{y}" width="{iw:.2}" height="{row_height}" fill="{}"><title>{}: {}..{}</title></rect>"#,
                fill(iv.state),
                iv.state.name(),
                iv.start,
                iv.end
            );
        }
    }
    // Time axis with 5 ticks.
    let axis_y = caps * (row_height + gap) + gap + 12;
    for t in 0..=4u32 {
        let frac = t as f64 / 4.0;
        let x = label_w as f64 + frac * width as f64;
        let time = (tl.end_time as f64 * frac) as u64;
        let _ = writeln!(
            out,
            r#"<text x="{x:.0}" y="{axis_y}" text-anchor="middle">{:.1}ms</text>"#,
            time as f64 / 1e6
        );
    }
    let _ = writeln!(out, "</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CapId;
    use crate::tracer::Tracer;

    fn sample() -> Timeline {
        let mut t = Tracer::new(2);
        t.state(CapId(0), 0, State::Running);
        t.state(CapId(0), 60, State::Gc);
        t.state(CapId(1), 0, State::Idle);
        t.state(CapId(0), 100, State::Idle);
        Timeline::from_tracer(&t)
    }

    #[test]
    fn svg_structure() {
        let svg = render_svg(&sample(), 400, 14);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("cap0"));
        assert!(svg.contains("cap1"));
        assert!(svg.contains(fill(State::Running)));
        assert!(svg.contains(fill(State::Gc)));
        // Two rows of rects plus labels and axis.
        assert!(svg.matches("<rect").count() >= 4);
    }

    #[test]
    fn empty_timeline_is_valid_svg() {
        let tl = Timeline::from_tracer(&Tracer::new(0));
        let svg = render_svg(&tl, 100, 10);
        assert!(svg.contains("empty trace"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn distinct_states_get_distinct_colours() {
        let mut seen = std::collections::HashSet::new();
        for s in State::ALL {
            assert!(seen.insert(fill(s)), "colour reused for {s:?}");
        }
    }
}
