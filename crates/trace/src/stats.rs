//! Summary statistics over a trace: counters and state fractions.

use crate::event::{EventKind, State, Time};
use crate::timeline::Timeline;
use crate::tracer::Tracer;
use std::fmt;

/// Aggregated event counters for a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    pub sparks_created: u64,
    pub sparks_run_local: u64,
    /// All successful spark steals, intra-node and cross-node alike.
    pub sparks_stolen: u64,
    /// The subset of `sparks_stolen` that crossed an inter-node link
    /// (`SparkStolenRemote` events; batched).
    pub sparks_stolen_remote: u64,
    /// Words put on inter-node links by remote spark steals
    /// (payload + envelope).
    pub remote_steal_words: u64,
    pub sparks_pushed: u64,
    pub sparks_fizzled: u64,
    pub sparks_overflowed: u64,
    pub threads_created: u64,
    pub blackhole_blocks: u64,
    pub duplicate_work_events: u64,
    /// Total virtual time wasted in duplicate evaluation.
    pub duplicate_work_wasted: Time,
    pub gcs: u64,
    pub gc_live_words_last: u64,
    pub gc_collected_words: u64,
    /// Total time capabilities spent waiting for the world to stop
    /// (sum of `GcStart::barrier_wait`).
    pub gc_barrier_wait: Time,
    /// Total time spent in collections proper (sum of `GcDone::pause`).
    pub gc_pause: Time,
    pub messages_sent: u64,
    pub message_words: u64,
    pub messages_received: u64,
    pub processes_instantiated: u64,
    // Native (wall-clock) executor events. These mirror the
    // `NativeStats` counters the executor maintains itself; the
    // reconciliation tests assert the two bookkeepings agree exactly.
    /// Successful native steal operations (`NativeSteal` and
    /// `NativeStealRemote` events).
    pub native_steals: u64,
    /// The subset of `native_steals` that crossed a shard boundary.
    pub native_remote_steals: u64,
    /// Extra deque elements batch-transferred by native steals.
    pub native_batch_moved: u64,
    /// Native steal attempts that lost a CAS race.
    pub native_steal_retries: u64,
    /// Native steal attempts that found the victim empty.
    pub native_steal_empties: u64,
    /// Lazy range splits performed by native workers.
    pub native_splits: u64,
    /// Tasks executed by native workers (sum of `NativeExec` counts).
    pub native_tasks: u64,
    /// The subset of `native_tasks` out of directly stolen ranges.
    pub native_tasks_stolen: u64,
    /// Idle-episode parks of native workers.
    pub native_parks: u64,
    /// Parked native workers that found work again.
    pub native_unparks: u64,
    /// Native `RunStart` events (per worker, per run).
    pub native_runs: u64,
    /// Native Eden PEs blocked on a full outbound channel.
    pub native_send_blocks: u64,
    /// Native Eden PEs blocked on empty inbound channel(s).
    pub native_recv_blocks: u64,
    /// Jobs completed by the `rph-server` front end.
    pub server_jobs: u64,
    /// Total admission-queue wait over those jobs, wall nanoseconds.
    pub server_queued_ns: u64,
    /// Total batch service time over those jobs, wall nanoseconds.
    pub server_service_ns: u64,
}

impl Counters {
    /// Derive counters from a recorded trace.
    pub fn from_tracer(tracer: &Tracer) -> Self {
        let mut c = Counters::default();
        for cap in 0..tracer.caps() {
            c.absorb(tracer, crate::event::CapId(cap as u32));
        }
        c
    }

    /// Counters over a single capability's events — the per-worker view
    /// the native reconciliation tests compare against
    /// `NativeStats::per_worker`.
    pub fn for_cap(tracer: &Tracer, cap: crate::event::CapId) -> Self {
        let mut c = Counters::default();
        c.absorb(tracer, cap);
        c
    }

    fn absorb(&mut self, tracer: &Tracer, cap: crate::event::CapId) {
        let c = self;
        for ev in tracer.events_for(cap) {
            match &ev.kind {
                EventKind::SparkCreated => c.sparks_created += 1,
                EventKind::SparkRunLocal => c.sparks_run_local += 1,
                EventKind::SparkStolen { .. } => c.sparks_stolen += 1,
                EventKind::SparkStolenRemote { words, .. } => {
                    c.sparks_stolen += 1;
                    c.sparks_stolen_remote += 1;
                    c.remote_steal_words += *words;
                }
                EventKind::SparkPushed { .. } => c.sparks_pushed += 1,
                EventKind::SparkFizzled => c.sparks_fizzled += 1,
                EventKind::SparkOverflow => c.sparks_overflowed += 1,
                EventKind::ThreadCreated { .. } => c.threads_created += 1,
                EventKind::BlockedOnBlackHole { .. } => c.blackhole_blocks += 1,
                EventKind::DuplicateWork { wasted } => {
                    c.duplicate_work_events += 1;
                    c.duplicate_work_wasted += *wasted;
                }
                EventKind::GcStart { barrier_wait } => c.gc_barrier_wait += *barrier_wait,
                EventKind::GcDone {
                    live_words,
                    collected_words,
                    pause,
                } => {
                    c.gcs += 1;
                    c.gc_live_words_last = *live_words;
                    c.gc_collected_words += *collected_words;
                    c.gc_pause += *pause;
                }
                EventKind::MsgSend { words, .. } => {
                    c.messages_sent += 1;
                    c.message_words += *words;
                }
                EventKind::MsgRecv { .. } => c.messages_received += 1,
                EventKind::NativeBlockSend { .. } => c.native_send_blocks += 1,
                EventKind::NativeBlockRecv { .. } => c.native_recv_blocks += 1,
                EventKind::ServerJob {
                    queued_ns,
                    service_ns,
                    ..
                } => {
                    c.server_jobs += 1;
                    c.server_queued_ns += *queued_ns;
                    c.server_service_ns += *service_ns;
                }
                EventKind::ProcessInstantiated { .. } => c.processes_instantiated += 1,
                EventKind::RunStart { .. } => c.native_runs += 1,
                EventKind::NativeSteal { moved, .. } => {
                    c.native_steals += 1;
                    c.native_batch_moved += *moved;
                }
                EventKind::NativeStealRemote { moved, .. } => {
                    c.native_steals += 1;
                    c.native_remote_steals += 1;
                    c.native_batch_moved += *moved;
                }
                EventKind::NativeStealRetry { .. } => c.native_steal_retries += 1,
                EventKind::NativeStealEmpty { .. } => c.native_steal_empties += 1,
                EventKind::NativeSplit { .. } => c.native_splits += 1,
                EventKind::NativeExec { count, stolen } => {
                    c.native_tasks += *count;
                    if *stolen {
                        c.native_tasks_stolen += *count;
                    }
                }
                EventKind::NativePark => c.native_parks += 1,
                EventKind::NativeUnpark => c.native_unparks += 1,
                _ => {}
            }
        }
    }
}

/// Full per-run statistics: counters plus mean state fractions.
#[derive(Debug, Clone)]
pub struct TraceStats {
    pub counters: Counters,
    /// Mean fraction of the run the capabilities spent in each state,
    /// in [`State::ALL`] order.
    pub state_fractions: [(State, f64); 6],
    pub end_time: Time,
    pub caps: usize,
}

impl TraceStats {
    pub fn from_tracer(tracer: &Tracer) -> Self {
        let tl = Timeline::from_tracer(tracer);
        Self::from_parts(tracer, &tl)
    }

    pub fn from_parts(tracer: &Tracer, tl: &Timeline) -> Self {
        TraceStats {
            counters: Counters::from_tracer(tracer),
            state_fractions: State::ALL.map(|s| (s, tl.mean_fraction(s))),
            end_time: tl.end_time,
            caps: tracer.caps(),
        }
    }

    /// Mean fraction spent in `state`.
    pub fn fraction(&self, state: State) -> f64 {
        self.state_fractions
            .iter()
            .find(|(s, _)| *s == state)
            .map(|(_, f)| *f)
            .unwrap_or(0.0)
    }

    /// Mutator utilisation: mean running fraction.
    pub fn utilisation(&self) -> f64 {
        self.fraction(State::Running)
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "run: {} caps, {} units", self.caps, self.end_time)?;
        write!(f, "activity:")?;
        for (s, frac) in self.state_fractions {
            if frac > 0.0 {
                write!(f, " {}={:.1}%", s.name(), frac * 100.0)?;
            }
        }
        writeln!(f)?;
        let c = &self.counters;
        writeln!(
            f,
            "sparks: created={} run-local={} stolen={} pushed={} fizzled={}",
            c.sparks_created,
            c.sparks_run_local,
            c.sparks_stolen,
            c.sparks_pushed,
            c.sparks_fizzled
        )?;
        writeln!(
            f,
            "gc: count={} collected={}w | threads={} bh-blocks={} dup-work={} ({} wasted)",
            c.gcs,
            c.gc_collected_words,
            c.threads_created,
            c.blackhole_blocks,
            c.duplicate_work_events,
            c.duplicate_work_wasted
        )?;
        if c.messages_sent > 0 {
            writeln!(
                f,
                "messages: sent={} recv={} words={} processes={}",
                c.messages_sent, c.messages_received, c.message_words, c.processes_instantiated
            )?;
        }
        if c.native_send_blocks + c.native_recv_blocks > 0 {
            writeln!(
                f,
                "channel blocks: send={} recv={}",
                c.native_send_blocks, c.native_recv_blocks
            )?;
        }
        if c.native_tasks > 0 {
            writeln!(
                f,
                "native: tasks={} (stolen={}) steals={} (+{} batched) retries={} empties={} splits={} parks={}",
                c.native_tasks,
                c.native_tasks_stolen,
                c.native_steals,
                c.native_batch_moved,
                c.native_steal_retries,
                c.native_steal_empties,
                c.native_splits,
                c.native_parks
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CapId;

    #[test]
    fn counters_aggregate() {
        let mut t = Tracer::new(2);
        t.record(CapId(0), 0, EventKind::SparkCreated);
        t.record(CapId(0), 1, EventKind::SparkCreated);
        t.record(CapId(1), 2, EventKind::SparkStolen { victim: CapId(0) });
        t.record(CapId(1), 3, EventKind::SparkPushed { to: CapId(0) });
        t.record(CapId(1), 4, EventKind::DuplicateWork { wasted: 100 });
        t.record(CapId(0), 5, EventKind::GcStart { barrier_wait: 7 });
        t.record(
            CapId(0),
            5,
            EventKind::GcDone {
                live_words: 10,
                collected_words: 90,
                pause: 40,
            },
        );
        t.record(
            CapId(0),
            6,
            EventKind::GcDone {
                live_words: 20,
                collected_words: 80,
                pause: 60,
            },
        );
        t.record(
            CapId(0),
            7,
            EventKind::MsgSend {
                to: CapId(1),
                words: 64,
                tag: "data",
            },
        );
        let c = Counters::from_tracer(&t);
        assert_eq!(c.sparks_created, 2);
        assert_eq!(c.sparks_stolen, 1);
        assert_eq!(c.sparks_pushed, 1);
        assert_eq!(c.duplicate_work_wasted, 100);
        assert_eq!(c.gcs, 2);
        assert_eq!(c.gc_live_words_last, 20);
        assert_eq!(c.gc_collected_words, 170);
        assert_eq!(c.gc_barrier_wait, 7);
        assert_eq!(c.gc_pause, 100);
        assert_eq!(c.message_words, 64);
    }

    #[test]
    fn native_counters_aggregate_and_split_per_cap() {
        let mut t = Tracer::new(2);
        t.record(CapId(0), 0, EventKind::RunStart { tasks: 10 });
        t.record(CapId(1), 0, EventKind::RunStart { tasks: 10 });
        t.record(
            CapId(1),
            2,
            EventKind::NativeSteal {
                victim: CapId(0),
                moved: 3,
            },
        );
        t.record(
            CapId(1),
            3,
            EventKind::NativeStealRetry { victim: CapId(0) },
        );
        t.record(
            CapId(1),
            4,
            EventKind::NativeStealEmpty { victim: CapId(0) },
        );
        t.record(CapId(0), 5, EventKind::NativeSplit { exposed: 4 });
        t.record(
            CapId(0),
            6,
            EventKind::NativeExec {
                count: 6,
                stolen: false,
            },
        );
        t.record(
            CapId(1),
            7,
            EventKind::NativeExec {
                count: 4,
                stolen: true,
            },
        );
        t.record(CapId(1), 8, EventKind::NativePark);
        t.record(CapId(1), 9, EventKind::NativeUnpark);
        t.record(CapId(0), 10, EventKind::RunEnd);
        t.record(CapId(1), 10, EventKind::RunEnd);
        let c = Counters::from_tracer(&t);
        assert_eq!(c.native_runs, 2);
        assert_eq!(c.native_steals, 1);
        assert_eq!(c.native_batch_moved, 3);
        assert_eq!(c.native_steal_retries, 1);
        assert_eq!(c.native_steal_empties, 1);
        assert_eq!(c.native_splits, 1);
        assert_eq!(c.native_tasks, 10);
        assert_eq!(c.native_tasks_stolen, 4);
        assert_eq!(c.native_parks, 1);
        assert_eq!(c.native_unparks, 1);
        let c0 = Counters::for_cap(&t, CapId(0));
        assert_eq!(c0.native_tasks, 6);
        assert_eq!(c0.native_steals, 0);
        let c1 = Counters::for_cap(&t, CapId(1));
        assert_eq!(c1.native_tasks, 4);
        assert_eq!(c1.native_tasks_stolen, 4);
        let text = TraceStats::from_tracer(&t).to_string();
        assert!(text.contains("native: tasks=10"), "got {text}");
    }

    #[test]
    fn stats_fractions_and_display() {
        let mut t = Tracer::new(1);
        t.state(CapId(0), 0, State::Running);
        t.state(CapId(0), 80, State::Gc);
        t.state(CapId(0), 100, State::Idle); // end marker
        let st = TraceStats::from_tracer(&t);
        assert!((st.utilisation() - 0.8).abs() < 1e-12);
        assert!((st.fraction(State::Gc) - 0.2).abs() < 1e-12);
        let text = st.to_string();
        assert!(text.contains("running=80.0%"), "got {text}");
    }
}
