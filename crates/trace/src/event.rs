//! Trace event types.
//!
//! Events mirror the instrumentation the paper's authors added to the
//! threaded GHC runtime: capability state changes, spark lifecycle, GC
//! phases, black-hole blocking/duplicate evaluation, and (for the Eden
//! runtime) message sends and receives.

/// Virtual time, in simulated work units (nominally ~1 ns each).
pub type Time = u64;

/// Identifier of a capability (GpH) or processing element (Eden).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CapId(pub u32);

impl CapId {
    /// Index into per-capability arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CapId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cap{}", self.0)
    }
}

/// Identifier of a lightweight (Haskell-level) thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u64);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Activity state of a capability, matching the colour coding of the
/// paper's EdenTV traces (Fig. 2 caption):
///
/// * green — a Haskell computation is being run,
/// * yellow — runnable but waiting for system work or synchronisation,
/// * red — all threads blocked,
/// * blue — idle,
/// * plus an explicit GC state (the paper folds GC into the
///   synchronisation colour; we keep it separate because the GC barrier
///   is the object of study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum State {
    /// Running mutator work (paper: green).
    Running,
    /// Runnable, but waiting for system work or synchronisation
    /// (paper: yellow).
    Runnable,
    /// All local threads blocked, e.g. on black holes or channel data
    /// (paper: red).
    Blocked,
    /// No work at all (paper: small blue).
    Idle,
    /// Stopped for, or performing, garbage collection.
    Gc,
    /// Descheduled by the OS model (a virtual PE not currently mapped to
    /// a core; only occurs in oversubscribed Eden runs).
    Descheduled,
}

impl State {
    /// One-character tag used by the ASCII timeline renderer.
    pub fn glyph(self) -> char {
        match self {
            State::Running => '#',
            State::Runnable => '~',
            State::Blocked => 'x',
            State::Idle => '.',
            State::Gc => 'G',
            State::Descheduled => '-',
        }
    }

    /// Stable lowercase name for CSV output.
    pub fn name(self) -> &'static str {
        match self {
            State::Running => "running",
            State::Runnable => "runnable",
            State::Blocked => "blocked",
            State::Idle => "idle",
            State::Gc => "gc",
            State::Descheduled => "descheduled",
        }
    }

    /// All states, in rendering-legend order.
    pub const ALL: [State; 6] = [
        State::Running,
        State::Runnable,
        State::Blocked,
        State::Idle,
        State::Gc,
        State::Descheduled,
    ];
}

/// What happened. See [`Event`] for the carrier with time and location.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The capability transitioned into `state`.
    StateChange { state: State },
    /// A spark was recorded via `par` into this capability's pool.
    SparkCreated,
    /// A spark from this capability's own pool was converted to work.
    SparkRunLocal,
    /// A spark was stolen from `victim`'s pool (work-pulling). Recorded
    /// on the *thief's* row. Under a cluster topology this is the
    /// intra-node (same shared-memory node) case; cross-node steals
    /// emit [`EventKind::SparkStolenRemote`] instead.
    SparkStolen { victim: CapId },
    /// A batched spark steal crossed an inter-node link: the thief took
    /// one spark to run plus `moved` extras into its own pool, putting
    /// `words` (payload + envelope) on the wire. Recorded on the
    /// *thief's* row.
    SparkStolenRemote {
        victim: CapId,
        moved: u64,
        words: u64,
    },
    /// A spark was pushed to the idle capability `to` (work-pushing).
    /// Recorded on the *donor's* row: the recipient may be behind in
    /// virtual time and only discovers the spark at its next poll.
    SparkPushed { to: CapId },
    /// A spark turned out to be already evaluated (fizzled) when it was
    /// about to run.
    SparkFizzled,
    /// A spark pool overflowed and a spark was discarded.
    SparkOverflow,
    /// A lightweight thread was created.
    ThreadCreated { thread: ThreadId },
    /// A lightweight thread finished.
    ThreadFinished { thread: ThreadId },
    /// A thread blocked on a black hole.
    BlockedOnBlackHole { thread: ThreadId },
    /// A thread was woken because a black hole it was blocked on was
    /// updated.
    WokenFromBlackHole { thread: ThreadId },
    /// Duplicate evaluation detected: this capability completed a thunk
    /// another thread had already updated (possible under lazy
    /// black-holing), wasting `wasted` work units.
    DuplicateWork { wasted: Time },
    /// A stop-the-world GC was requested by this capability.
    GcRequest,
    /// GC started (all capabilities reached the barrier).
    /// `barrier_wait` is how long the request took to stop the world —
    /// the quantity §IV.A.1's improved-sync optimisation targets.
    GcStart { barrier_wait: Time },
    /// GC finished; `live_words` survived, `collected_words` reclaimed,
    /// and the collection proper (excluding the barrier wait) paused
    /// this capability for `pause`. Independent per-capability
    /// collections (Eden PEs, GpH minor GCs) emit this with zero
    /// barrier cost in the preceding `GcStart`, or no `GcStart` at all.
    GcDone {
        live_words: u64,
        collected_words: u64,
        pause: Time,
    },
    /// A message was sent to `to` (Eden middleware). `words` is the
    /// serialised payload size.
    MsgSend {
        to: CapId,
        words: u64,
        tag: &'static str,
    },
    /// A message from `from` was delivered into the local heap.
    MsgRecv {
        from: CapId,
        words: u64,
        tag: &'static str,
    },
    /// A remote process was instantiated on `on`.
    ProcessInstantiated { on: CapId },
    /// Free-form annotation (used by examples and tests).
    Note(&'static str),

    // --- native (wall-clock) executor events -------------------------
    // Emitted by the `rph-native` pool workers; timestamps are
    // nanoseconds of real time since the run's epoch rather than
    // simulated work units, but the same `Time` axis and tooling apply.
    /// A native run of `tasks` tasks started on this worker.
    RunStart { tasks: u64 },
    /// The native run ended on this worker.
    RunEnd,
    /// A native steal from `victim` succeeded, batch-transferring
    /// `moved` extra deque elements beyond the one the thief runs.
    /// Under a sharded pool this is the intra-shard case; cross-shard
    /// steals emit [`EventKind::NativeStealRemote`].
    NativeSteal { victim: CapId, moved: u64 },
    /// A native steal crossed a shard boundary (hierarchical victim
    /// selection probed every local victim first): batch-transferred
    /// `moved` extras beyond the one the thief runs.
    NativeStealRemote { victim: CapId, moved: u64 },
    /// A native steal attempt lost a CAS race against `victim`.
    NativeStealRetry { victim: CapId },
    /// A native steal attempt found `victim`'s deque empty.
    NativeStealEmpty { victim: CapId },
    /// A lazy range split exposed `exposed` tasks as a new stealable
    /// range on this worker's own deque.
    NativeSplit { exposed: u64 },
    /// This worker executed `count` tasks as one contiguous range,
    /// acquired locally (`stolen == false`: seeded, popped back or
    /// batch-transferred in) or directly by a steal.
    NativeExec { count: u64, stolen: bool },
    /// An idle worker parked on the eventcount (one event per idle
    /// episode, matching `NativeStats::parks`).
    NativePark,
    /// A previously parked worker found work again, ending the idle
    /// episode.
    NativeUnpark,
    /// A native Eden PE blocked sending into `to`'s full bounded
    /// channel — back-pressure engaged (sender-side analogue of the
    /// sim's `waitForSpace`).
    NativeBlockSend { to: CapId },
    /// A native Eden PE blocked receiving: on the channel from `from`,
    /// or multiplexed across all of its inbound channels (`None`, the
    /// master–worker master's select).
    NativeBlockRecv { from: Option<CapId> },
    /// A job completed on the `rph-server` front end. Recorded on the
    /// dispatcher's (master) row at completion time; `queued_ns` is
    /// how long the job sat in the admission queue and `service_ns`
    /// how long its batch took to execute, both in wall nanoseconds.
    ServerJob {
        job: u64,
        queued_ns: u64,
        service_ns: u64,
    },
}

/// A single trace record: *when*, *where*, *what*.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub time: Time,
    pub cap: CapId,
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in State::ALL {
            assert!(seen.insert(s.glyph()), "duplicate glyph for {s:?}");
        }
    }

    #[test]
    fn names_are_unique_and_lowercase() {
        let mut seen = std::collections::HashSet::new();
        for s in State::ALL {
            let n = s.name();
            assert_eq!(n, n.to_lowercase());
            assert!(seen.insert(n));
        }
    }

    #[test]
    fn cap_display() {
        assert_eq!(CapId(3).to_string(), "cap3");
        assert_eq!(ThreadId(9).to_string(), "t9");
    }
}
