//! Rendering timelines as terminal "trace diagrams" and CSV.
//!
//! The ASCII renderer regenerates the information content of the paper's
//! Fig. 2 and Fig. 4 EdenTV screenshots: one row per capability, time on
//! the x-axis, activity encoded per column. With ANSI colour enabled the
//! colours match the paper's legend (green = running, yellow = runnable,
//! red = blocked, blue = idle; GC is shown magenta since the barrier is
//! what the paper investigates).

use crate::event::{State, Time};
use crate::timeline::Timeline;
use std::fmt::Write as _;

/// Options for [`render_timeline`].
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Number of character columns for the time axis.
    pub width: usize,
    /// Emit ANSI colour codes.
    pub color: bool,
    /// Include the legend and time axis.
    pub legend: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 100,
            color: false,
            legend: true,
        }
    }
}

fn ansi(state: State) -> &'static str {
    match state {
        State::Running => "\x1b[42m",      // green background
        State::Runnable => "\x1b[43m",     // yellow
        State::Blocked => "\x1b[41m",      // red
        State::Idle => "\x1b[44m",         // blue
        State::Gc => "\x1b[45m",           // magenta
        State::Descheduled => "\x1b[100m", // grey
    }
}

const ANSI_RESET: &str = "\x1b[0m";

/// Pick the state that dominates (occupies most of) a time window.
fn dominant_state(tl: &Timeline, cap: usize, lo: Time, hi: Time) -> State {
    let row = &tl.rows[cap];
    let mut acc: [(State, Time); 6] = State::ALL.map(|s| (s, 0));
    let start = row.partition_point(|iv| iv.end <= lo);
    for iv in &row[start..] {
        if iv.start >= hi {
            break;
        }
        let o_lo = iv.start.max(lo);
        let o_hi = iv.end.min(hi);
        if o_hi > o_lo {
            let slot = acc.iter_mut().find(|(s, _)| *s == iv.state).unwrap();
            slot.1 += o_hi - o_lo;
        }
    }
    acc.iter()
        .max_by_key(|(_, t)| *t)
        .map(|(s, _)| *s)
        .unwrap_or(State::Idle)
}

/// Render a per-capability activity timeline as lines of text.
pub fn render_timeline(tl: &Timeline, opts: &RenderOptions) -> String {
    let mut out = String::new();
    if tl.end_time == 0 || tl.rows.is_empty() {
        return "(empty trace)\n".to_string();
    }
    let w = opts.width.max(1);
    for (cap, _) in tl.rows.iter().enumerate() {
        let _ = write!(out, "cap{cap:>3} |");
        let mut last_color: Option<State> = None;
        for col in 0..w {
            let lo = tl.end_time * col as Time / w as Time;
            let hi = (tl.end_time * (col as Time + 1) / w as Time).max(lo + 1);
            let s = dominant_state(tl, cap, lo, hi.min(tl.end_time));
            if opts.color && last_color != Some(s) {
                out.push_str(ansi(s));
                last_color = Some(s);
            }
            out.push(s.glyph());
        }
        if opts.color {
            out.push_str(ANSI_RESET);
        }
        out.push_str("|\n");
    }
    if opts.legend {
        let _ = writeln!(
            out,
            "time 0 .. {} units ({} per column)",
            tl.end_time,
            tl.end_time / w as Time
        );
        let mut leg = String::from("legend: ");
        for s in State::ALL {
            let _ = write!(leg, "{}={} ", s.glyph(), s.name());
        }
        let _ = writeln!(out, "{}", leg.trim_end());
    }
    out
}

/// Render the timeline intervals as CSV (`cap,start,end,state`), the
/// machine-readable counterpart of the trace diagrams.
pub fn render_csv(tl: &Timeline) -> String {
    let mut out = String::from("cap,start,end,state\n");
    for (cap, row) in tl.rows.iter().enumerate() {
        for iv in row {
            let _ = writeln!(out, "{cap},{},{},{}", iv.start, iv.end, iv.state.name());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CapId;
    use crate::tracer::Tracer;

    fn sample() -> Timeline {
        let mut t = Tracer::new(2);
        t.state(CapId(0), 0, State::Running);
        t.state(CapId(1), 0, State::Idle);
        t.state(CapId(1), 50, State::Running);
        t.state(CapId(0), 100, State::Idle);
        Timeline::from_tracer(&t)
    }

    #[test]
    fn ascii_render_shape() {
        let s = render_timeline(
            &sample(),
            &RenderOptions {
                width: 10,
                color: false,
                legend: true,
            },
        );
        let lines: Vec<&str> = s.lines().collect();
        assert!(
            lines[0].starts_with("cap  0 |##########|"),
            "got: {}",
            lines[0]
        );
        assert!(lines[1].contains("|.....#####|"), "got: {}", lines[1]);
        assert!(lines[2].starts_with("time 0 .. 100"));
    }

    #[test]
    fn color_render_contains_ansi() {
        let s = render_timeline(
            &sample(),
            &RenderOptions {
                width: 4,
                color: true,
                legend: false,
            },
        );
        assert!(s.contains("\x1b[42m"));
        assert!(s.contains(ANSI_RESET));
    }

    #[test]
    fn csv_roundtrip_fields() {
        let csv = render_csv(&sample());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("cap,start,end,state"));
        assert_eq!(lines.next(), Some("0,0,100,running"));
        assert_eq!(lines.next(), Some("1,0,50,idle"));
        assert_eq!(lines.next(), Some("1,50,100,running"));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let tl = Timeline::from_tracer(&Tracer::new(0));
        assert_eq!(
            render_timeline(&tl, &RenderOptions::default()),
            "(empty trace)\n"
        );
    }

    #[test]
    fn dominant_state_picks_majority() {
        let mut t = Tracer::new(1);
        t.state(CapId(0), 0, State::Gc);
        t.state(CapId(0), 9, State::Running);
        t.state(CapId(0), 10, State::Running);
        let tl = Timeline::from_tracer(&t);
        // One column covering [0,10): GC dominates 9:1.
        let s = render_timeline(
            &tl,
            &RenderOptions {
                width: 1,
                color: false,
                legend: false,
            },
        );
        assert!(s.contains("|G|"), "got {s}");
    }
}
