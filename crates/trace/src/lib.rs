//! # rph-trace — runtime tracing and trace visualisation
//!
//! The ICPP 2009 paper stresses "the importance of adequate tools for
//! parallel profiling": the authors instrumented the threaded GHC runtime
//! and used the EdenTV visualiser to render per-capability activity
//! timelines (Figures 2 and 4 of the paper). This crate is the analogue
//! for the Rust reproduction:
//!
//! * [`Tracer`] collects time-stamped [`Event`]s per capability / PE,
//! * [`timeline::Timeline`] folds state-change events into activity
//!   intervals (Running / Runnable / Blocked / Idle / GC — the paper's
//!   green / yellow / red / blue colours),
//! * [`render`] renders an ASCII-art timeline (one row per capability)
//!   and machine-readable CSV, and
//! * [`stats`] computes summary statistics (state fractions, GC counts,
//!   spark and message counters) used in EXPERIMENTS.md.
//!
//! Time is virtual: a [`Time`] is a number of simulated *work units*
//! (nominally ~1 ns of mutator work each). The crate is independent of
//! the heap, the abstract machine and both runtimes; capabilities are
//! identified by plain [`CapId`] integers so the same tooling serves the
//! shared-heap GpH runtime and the distributed-heap Eden runtime.

pub mod event;
pub mod render;
pub mod stats;
pub mod svg;
pub mod timeline;
pub mod tracer;

pub use event::{CapId, Event, EventKind, State, ThreadId, Time};
pub use render::{render_csv, render_timeline, RenderOptions};
pub use stats::{Counters, TraceStats};
pub use svg::render_svg;
pub use timeline::{Interval, Timeline};
pub use tracer::Tracer;
