//! # rph-trace — runtime tracing and trace visualisation
//!
//! The ICPP 2009 paper stresses "the importance of adequate tools for
//! parallel profiling": the authors instrumented the threaded GHC runtime
//! and used the EdenTV visualiser to render per-capability activity
//! timelines (Figures 2 and 4 of the paper). This crate is the analogue
//! for the Rust reproduction:
//!
//! * [`Tracer`] collects time-stamped [`Event`]s per capability / PE,
//! * [`timeline::Timeline`] folds state-change events into activity
//!   intervals (Running / Runnable / Blocked / Idle / GC — the paper's
//!   green / yellow / red / blue colours),
//! * [`render`] renders an ASCII-art timeline (one row per capability)
//!   and machine-readable CSV, and
//! * [`stats`] computes summary statistics (state fractions, GC counts,
//!   spark and message counters) used in EXPERIMENTS.md.
//!
//! Time is a plain `u64` axis: the simulators stamp events in virtual
//! *work units* (nominally ~1 ns of mutator work each), while the
//! native backend stamps them in real nanoseconds via [`WallClock`].
//! The crate is independent of the heap, the abstract machine and both
//! runtimes; capabilities are identified by plain [`CapId`] integers so
//! the same tooling serves the shared-heap GpH runtime, the
//! distributed-heap Eden runtime, and the wall-clock native executor.

pub mod event;
pub mod render;
pub mod stats;
pub mod svg;
pub mod timeline;
pub mod tracer;
pub mod wall;

pub use event::{CapId, Event, EventKind, State, ThreadId, Time};
pub use render::{render_csv, render_timeline, RenderOptions};
pub use stats::{Counters, TraceStats};
pub use svg::render_svg;
pub use timeline::{Interval, Timeline};
pub use tracer::Tracer;
pub use wall::WallClock;
