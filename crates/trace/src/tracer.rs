//! Event collection.

use crate::event::{CapId, Event, EventKind, State, Time};

/// Collects events for a whole run.
///
/// The tracer is deliberately simple: one growable buffer per capability,
/// appended in (per-capability) time order. The simulated runtimes are
/// single-OS-threaded, so no synchronisation is needed; the real-thread
/// stress tests in `rph-deque` do their own bookkeeping.
#[derive(Debug, Default)]
pub struct Tracer {
    /// Per-capability event buffers, indexed by `CapId::index()`.
    buffers: Vec<Vec<Event>>,
    /// Whether event collection is enabled. When disabled, only the
    /// cheap counters in `stats` (maintained by the runtimes themselves)
    /// are available. Tracing is enabled by default.
    enabled: bool,
}

impl Tracer {
    /// A tracer for `caps` capabilities with event collection on.
    pub fn new(caps: usize) -> Self {
        Tracer {
            buffers: (0..caps).map(|_| Vec::new()).collect(),
            enabled: true,
        }
    }

    /// A tracer that drops all events (counters still work).
    pub fn disabled(caps: usize) -> Self {
        let mut t = Self::new(caps);
        t.enabled = false;
        t
    }

    /// Number of capabilities this tracer covers.
    pub fn caps(&self) -> usize {
        self.buffers.len()
    }

    /// Record `kind` happening on `cap` at `time`.
    ///
    /// # Panics
    /// Panics if `cap` is out of range, or (in debug builds) if time runs
    /// backwards within a capability — per-capability monotonicity is an
    /// invariant the simulator relies on.
    #[inline]
    pub fn record(&mut self, cap: CapId, time: Time, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let buf = &mut self.buffers[cap.index()];
        debug_assert!(
            buf.last().is_none_or(|e| e.time <= time),
            "time went backwards on {cap}: {} -> {time}",
            buf.last().unwrap().time
        );
        buf.push(Event { time, cap, kind });
    }

    /// Convenience: record a state change.
    #[inline]
    pub fn state(&mut self, cap: CapId, time: Time, state: State) {
        self.record(cap, time, EventKind::StateChange { state });
    }

    /// Events of one capability, in time order.
    pub fn events_for(&self, cap: CapId) -> &[Event] {
        &self.buffers[cap.index()]
    }

    /// All events of all capabilities, merged into global time order.
    ///
    /// Ordering is fully deterministic even on equal timestamps: ties
    /// are broken by capability id, then by the event's recording
    /// sequence within its capability. Wall-clock traces from the
    /// native backend routinely carry many events with identical
    /// timestamps (coarse clocks, bursts of steal probes), and the
    /// repo's determinism guarantee requires rendered timelines to be
    /// byte-identical across runs of the same schedule — so the
    /// tie-break is explicit rather than an artefact of sort
    /// stability.
    pub fn merged(&self) -> Vec<Event> {
        let mut all: Vec<(Time, u32, usize, &Event)> = self
            .buffers
            .iter()
            .enumerate()
            .flat_map(|(cap, buf)| {
                buf.iter()
                    .enumerate()
                    .map(move |(seq, e)| (e.time, cap as u32, seq, e))
            })
            .collect();
        all.sort_unstable_by_key(|&(time, cap, seq, _)| (time, cap, seq));
        all.into_iter().map(|(_, _, _, e)| e.clone()).collect()
    }

    /// Append every event of `other` (which must cover the same
    /// capabilities), shifted forward by `dt`.
    ///
    /// This is how multi-run traces are stitched together: the native
    /// APSP driver records one trace per pivot wave and appends each to
    /// the accumulated trace shifted by the accumulated
    /// [`Self::end_time`], keeping per-capability time monotonic.
    ///
    /// # Panics
    /// Panics if `other` covers more capabilities than `self`, or (in
    /// debug builds) if the shift is too small to keep per-capability
    /// time monotonic.
    pub fn extend_shifted(&mut self, other: &Tracer, dt: Time) {
        assert!(
            other.caps() <= self.caps(),
            "cannot extend a {}-cap tracer from a {}-cap tracer",
            self.caps(),
            other.caps()
        );
        for buf in &other.buffers {
            for ev in buf {
                self.record(ev.cap, ev.time + dt, ev.kind.clone());
            }
        }
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The largest timestamp recorded, or 0 for an empty trace.
    pub fn end_time(&self) -> Time {
        self.buffers
            .iter()
            .filter_map(|b| b.last().map(|e| e.time))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_merges() {
        let mut t = Tracer::new(2);
        t.state(CapId(0), 0, State::Running);
        t.state(CapId(1), 5, State::Idle);
        t.state(CapId(0), 10, State::Gc);
        let m = t.merged();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].cap, CapId(0));
        assert_eq!(m[1].cap, CapId(1));
        assert_eq!(m[2].time, 10);
        assert_eq!(t.end_time(), 10);
        assert_eq!(t.events_for(CapId(1)).len(), 1);
    }

    #[test]
    fn merged_ties_break_on_cap_then_sequence() {
        // Three events at the same instant: two on cap1 (in recording
        // order), one on cap0. Merged order must be cap0 first, then
        // cap1's events in their recorded sequence — every time.
        let mut t = Tracer::new(2);
        t.record(CapId(1), 5, EventKind::SparkCreated);
        t.record(CapId(1), 5, EventKind::SparkFizzled);
        t.record(CapId(0), 5, EventKind::Note("a"));
        let m = t.merged();
        assert_eq!(m[0].kind, EventKind::Note("a"));
        assert_eq!(m[1].kind, EventKind::SparkCreated);
        assert_eq!(m[2].kind, EventKind::SparkFizzled);
        // Byte-identical across repeated merges.
        assert_eq!(t.merged(), m);
    }

    #[test]
    fn extend_shifted_appends_monotonically() {
        let mut a = Tracer::new(2);
        a.state(CapId(0), 0, State::Running);
        a.state(CapId(0), 10, State::Idle);
        let mut b = Tracer::new(2);
        b.state(CapId(0), 0, State::Running);
        b.state(CapId(1), 3, State::Running);
        let dt = a.end_time();
        a.extend_shifted(&b, dt);
        assert_eq!(a.end_time(), 13);
        assert_eq!(a.events_for(CapId(0)).len(), 3);
        assert_eq!(a.events_for(CapId(0))[2].time, 10);
        assert_eq!(a.events_for(CapId(1))[0].time, 13);
    }

    #[test]
    #[should_panic(expected = "cannot extend")]
    fn extend_shifted_rejects_wider_tracer() {
        let mut a = Tracer::new(1);
        let b = Tracer::new(2);
        a.extend_shifted(&b, 0);
    }

    #[test]
    fn disabled_tracer_drops_events() {
        let mut t = Tracer::disabled(1);
        t.state(CapId(0), 1, State::Running);
        assert!(t.is_empty());
        assert_eq!(t.end_time(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_cap_panics() {
        let mut t = Tracer::new(1);
        t.state(CapId(7), 0, State::Running);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time went backwards")]
    fn backwards_time_panics_in_debug() {
        let mut t = Tracer::new(1);
        t.state(CapId(0), 10, State::Running);
        t.state(CapId(0), 5, State::Idle);
    }
}
