//! Event collection.

use crate::event::{CapId, Event, EventKind, State, Time};

/// Collects events for a whole run.
///
/// The tracer is deliberately simple: one growable buffer per capability,
/// appended in (per-capability) time order. The simulated runtimes are
/// single-OS-threaded, so no synchronisation is needed; the real-thread
/// stress tests in `rph-deque` do their own bookkeeping.
#[derive(Debug, Default)]
pub struct Tracer {
    /// Per-capability event buffers, indexed by `CapId::index()`.
    buffers: Vec<Vec<Event>>,
    /// Whether event collection is enabled. When disabled, only the
    /// cheap counters in `stats` (maintained by the runtimes themselves)
    /// are available. Tracing is enabled by default.
    enabled: bool,
}

impl Tracer {
    /// A tracer for `caps` capabilities with event collection on.
    pub fn new(caps: usize) -> Self {
        Tracer {
            buffers: (0..caps).map(|_| Vec::new()).collect(),
            enabled: true,
        }
    }

    /// A tracer that drops all events (counters still work).
    pub fn disabled(caps: usize) -> Self {
        let mut t = Self::new(caps);
        t.enabled = false;
        t
    }

    /// Number of capabilities this tracer covers.
    pub fn caps(&self) -> usize {
        self.buffers.len()
    }

    /// Record `kind` happening on `cap` at `time`.
    ///
    /// # Panics
    /// Panics if `cap` is out of range, or (in debug builds) if time runs
    /// backwards within a capability — per-capability monotonicity is an
    /// invariant the simulator relies on.
    #[inline]
    pub fn record(&mut self, cap: CapId, time: Time, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let buf = &mut self.buffers[cap.index()];
        debug_assert!(
            buf.last().is_none_or(|e| e.time <= time),
            "time went backwards on {cap}: {} -> {time}",
            buf.last().unwrap().time
        );
        buf.push(Event { time, cap, kind });
    }

    /// Convenience: record a state change.
    #[inline]
    pub fn state(&mut self, cap: CapId, time: Time, state: State) {
        self.record(cap, time, EventKind::StateChange { state });
    }

    /// Events of one capability, in time order.
    pub fn events_for(&self, cap: CapId) -> &[Event] {
        &self.buffers[cap.index()]
    }

    /// All events of all capabilities, merged into global time order
    /// (stable: ties broken by capability id).
    pub fn merged(&self) -> Vec<Event> {
        let mut all: Vec<Event> = self.buffers.iter().flatten().cloned().collect();
        all.sort_by_key(|e| (e.time, e.cap));
        all
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The largest timestamp recorded, or 0 for an empty trace.
    pub fn end_time(&self) -> Time {
        self.buffers
            .iter()
            .filter_map(|b| b.last().map(|e| e.time))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_merges() {
        let mut t = Tracer::new(2);
        t.state(CapId(0), 0, State::Running);
        t.state(CapId(1), 5, State::Idle);
        t.state(CapId(0), 10, State::Gc);
        let m = t.merged();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].cap, CapId(0));
        assert_eq!(m[1].cap, CapId(1));
        assert_eq!(m[2].time, 10);
        assert_eq!(t.end_time(), 10);
        assert_eq!(t.events_for(CapId(1)).len(), 1);
    }

    #[test]
    fn disabled_tracer_drops_events() {
        let mut t = Tracer::disabled(1);
        t.state(CapId(0), 1, State::Running);
        assert!(t.is_empty());
        assert_eq!(t.end_time(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_cap_panics() {
        let mut t = Tracer::new(1);
        t.state(CapId(7), 0, State::Running);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time went backwards")]
    fn backwards_time_panics_in_debug() {
        let mut t = Tracer::new(1);
        t.state(CapId(0), 10, State::Running);
        t.state(CapId(0), 5, State::Idle);
    }
}
