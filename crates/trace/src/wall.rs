//! A wall-clock source for [`Time`] values.
//!
//! The simulated runtimes stamp events in virtual work units; the
//! native backend stamps them in **nanoseconds of real time** since a
//! per-run epoch. Both land on the same `u64` [`Time`] axis, so every
//! downstream consumer — [`crate::Timeline`], the ASCII/CSV/SVG
//! renderers, [`crate::stats`] — works unchanged; only the unit label
//! differs (ns instead of work units).

use crate::event::Time;
use std::time::Instant;

/// A monotonic wall-clock epoch yielding [`Time`] nanoseconds.
///
/// Readings are monotonic per clock (backed by [`Instant`]), so events
/// a single thread stamps in program order always satisfy the tracer's
/// per-capability monotonicity invariant. `u64` nanoseconds overflow
/// after ~584 years of run time, which is not a practical concern.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose zero is "now".
    pub fn start() -> Self {
        Self::at(Instant::now())
    }

    /// A clock whose zero is `epoch` (so several threads, or a clock
    /// and a wall-duration measurement, can share one zero).
    pub fn at(epoch: Instant) -> Self {
        WallClock { epoch }
    }

    /// Nanoseconds elapsed since the epoch.
    #[inline]
    pub fn now(&self) -> Time {
        self.epoch.elapsed().as_nanos() as Time
    }

    /// The underlying epoch instant (for callers that also measure
    /// wall durations and want both on the same zero).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readings_are_monotonic() {
        let c = WallClock::start();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn epoch_matches_duration_math() {
        let c = WallClock::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let t = c.now();
        assert!(t >= 2_000_000, "slept 2ms but clock read {t}ns");
        assert!(c.epoch().elapsed().as_nanos() as u64 >= t);
    }
}
