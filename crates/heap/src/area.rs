//! Per-capability allocation-area accounting.
//!
//! GHC gives each capability its own *allocation area* (nursery);
//! "whenever an area becomes full, all capabilities must stop in order
//! to GC" (§IV.A.1). Threads only notice the stop-the-world request at
//! allocation *checkpoints* — GHC checks for a context switch "once
//! they have allocated a certain amount of memory (currently 4k)" — so
//! slowly-allocating threads delay the barrier. Both the area size (the
//! paper's "big allocation area" optimisation multiplies it) and the
//! checkpoint quantum are modelled here.

/// What an allocation charge tells the scheduler to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocOutcome {
    /// Keep running.
    Continue,
    /// A checkpoint was crossed: the thread must look at the
    /// context-switch / GC-request flags now.
    Checkpoint,
}

/// Allocation accounting for one capability.
#[derive(Debug, Clone)]
pub struct AllocArea {
    /// Area size in words: allocating past this requests a GC.
    area_words: u64,
    /// Checkpoint quantum in words (GHC: 4 kB / 8 = 512 words).
    checkpoint_words: u64,
    /// Words allocated since the last GC.
    used: u64,
    /// Words allocated since the last checkpoint.
    since_checkpoint: u64,
    /// Lifetime totals.
    total_allocated: u64,
}

impl AllocArea {
    /// GHC 6.x defaults: 0.5 MB allocation area, 4 kB checkpoint
    /// quantum, in 8-byte words.
    pub const DEFAULT_AREA_WORDS: u64 = 512 * 1024 / 8;
    pub const DEFAULT_CHECKPOINT_WORDS: u64 = 4096 / 8;

    pub fn new(area_words: u64, checkpoint_words: u64) -> Self {
        assert!(area_words > 0 && checkpoint_words > 0);
        AllocArea {
            area_words,
            checkpoint_words,
            used: 0,
            since_checkpoint: 0,
            total_allocated: 0,
        }
    }

    /// The GHC-default geometry.
    pub fn ghc_default() -> Self {
        Self::new(Self::DEFAULT_AREA_WORDS, Self::DEFAULT_CHECKPOINT_WORDS)
    }

    /// Charge `words` of allocation. Returns [`AllocOutcome::Checkpoint`]
    /// when the thread crosses a checkpoint boundary and must inspect
    /// the runtime's stop flags.
    ///
    /// A charge larger than the quantum carries its overshoot into the
    /// next quantum (`since_checkpoint` is reduced modulo the quantum,
    /// not zeroed): a 600-word charge at a 512-word quantum leaves 88
    /// words already accrued, so the next checkpoint arrives after 424
    /// more words, and a multi-quantum charge does not silently swallow
    /// whole quanta of accounting.
    #[inline]
    pub fn charge(&mut self, words: u64) -> AllocOutcome {
        self.used += words;
        self.since_checkpoint += words;
        self.total_allocated += words;
        if self.since_checkpoint >= self.checkpoint_words {
            self.since_checkpoint %= self.checkpoint_words;
            AllocOutcome::Checkpoint
        } else {
            AllocOutcome::Continue
        }
    }

    /// True when the area is exhausted and this capability should
    /// request a stop-the-world collection.
    #[inline]
    pub fn needs_gc(&self) -> bool {
        self.used >= self.area_words
    }

    /// Reset after a collection.
    pub fn reset_after_gc(&mut self) {
        self.used = 0;
        self.since_checkpoint = 0;
    }

    /// Words allocated since the last GC.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Area capacity in words.
    pub fn area_words(&self) -> u64 {
        self.area_words
    }

    /// Checkpoint quantum in words.
    pub fn checkpoint_words(&self) -> u64 {
        self.checkpoint_words
    }

    /// Lifetime allocation.
    pub fn total_allocated(&self) -> u64 {
        self.total_allocated
    }
}

impl Default for AllocArea {
    fn default() -> Self {
        Self::ghc_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_every_quantum() {
        let mut a = AllocArea::new(10_000, 100);
        let mut checkpoints = 0;
        for _ in 0..10 {
            if a.charge(50) == AllocOutcome::Checkpoint {
                checkpoints += 1;
            }
        }
        assert_eq!(checkpoints, 5); // 500 words => 5 checkpoints of 100
    }

    #[test]
    fn needs_gc_when_area_full() {
        let mut a = AllocArea::new(100, 10);
        assert!(!a.needs_gc());
        a.charge(99);
        assert!(!a.needs_gc());
        a.charge(1);
        assert!(a.needs_gc());
        a.reset_after_gc();
        assert!(!a.needs_gc());
        assert_eq!(a.total_allocated(), 100);
    }

    #[test]
    fn big_allocation_checkpoint_fires_immediately() {
        let mut a = AllocArea::new(1000, 100);
        assert_eq!(a.charge(5000), AllocOutcome::Checkpoint);
        assert!(a.needs_gc());
    }

    #[test]
    fn oversized_charge_carries_remainder() {
        // 600 words at a 512-word quantum: the crossing must leave
        // 600 - 512 = 88 words accrued toward the next checkpoint, so
        // the next boundary arrives after 424 more words — not 512.
        let mut a = AllocArea::new(1_000_000, 512);
        assert_eq!(a.charge(600), AllocOutcome::Checkpoint);
        assert_eq!(a.charge(423), AllocOutcome::Continue);
        assert_eq!(a.charge(1), AllocOutcome::Checkpoint);
        // A multi-quantum charge also keeps its remainder: 1100 words
        // from a fresh boundary crosses two quanta and leaves 76.
        assert_eq!(a.charge(1100), AllocOutcome::Checkpoint);
        assert_eq!(a.charge(435), AllocOutcome::Continue);
        assert_eq!(a.charge(1), AllocOutcome::Checkpoint);
    }

    #[test]
    fn slow_allocator_rarely_checkpoints() {
        // The phenomenon behind the paper's barrier delays: a thread
        // allocating 1 word per step only checkpoints every 512 steps.
        let mut a = AllocArea::ghc_default();
        let mut steps_to_checkpoint = 0u64;
        loop {
            steps_to_checkpoint += 1;
            if a.charge(1) == AllocOutcome::Checkpoint {
                break;
            }
        }
        assert_eq!(steps_to_checkpoint, AllocArea::DEFAULT_CHECKPOINT_WORDS);
    }

    #[test]
    #[should_panic]
    fn zero_area_rejected() {
        AllocArea::new(0, 1);
    }
}
