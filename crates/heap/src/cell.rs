//! Heap cells: the closure state machine.

use crate::noderef::{NodeRef, ScId};
use crate::value::Value;
use rph_trace::ThreadId;

/// One heap closure. The lifecycle is:
///
/// ```text
///   Thunk ──enter──▶ BlackHole ──update──▶ Value
///     │                  ▲                  (or Ind ▶ Value elsewhere)
///     └── lazy black-holing: entered thunks are only turned into
///         BlackHoles at the next context switch (paper §IV.A.3), so a
///         Thunk may be under evaluation by one or more threads.
/// ```
///
/// `Ind` cells are the indirections an update leaves behind when the
/// result already lives elsewhere; the heap short-circuits them on
/// access and the collector elides them, like GHC's `IND` closures.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A suspended saturated application of supercombinator `sc`.
    Thunk { sc: ScId, args: Box<[NodeRef]> },
    /// Under evaluation. `blocked` holds the threads suspended on this
    /// node, woken (in FIFO order) by the update.
    BlackHole { blocked: Vec<ThreadId> },
    /// Weak head normal form.
    Value(Value),
    /// Indirection to another cell.
    Ind(NodeRef),
    /// A freed slot (member of the free list). Never reachable.
    Free,
}

impl Cell {
    /// Heap size in words of this cell as allocated.
    pub fn words(&self) -> u64 {
        match self {
            Cell::Thunk { args, .. } => 2 + args.len() as u64,
            // A black hole overwrites the thunk in place.
            Cell::BlackHole { .. } => 2,
            Cell::Value(v) => v.words(),
            Cell::Ind(_) => 2,
            Cell::Free => 0,
        }
    }

    /// True for cells already in WHNF.
    pub fn is_whnf(&self) -> bool {
        matches!(self, Cell::Value(_))
    }

    /// Collect child references (for marking / copying).
    pub fn push_children(&self, out: &mut Vec<NodeRef>) {
        match self {
            Cell::Thunk { args, .. } => out.extend_from_slice(args),
            Cell::Value(v) => v.push_children(out),
            Cell::Ind(target) => out.push(*target),
            Cell::BlackHole { .. } | Cell::Free => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words() {
        let t = Cell::Thunk {
            sc: ScId(0),
            args: vec![NodeRef(1), NodeRef(2)].into(),
        };
        assert_eq!(t.words(), 4);
        assert_eq!(Cell::Ind(NodeRef(0)).words(), 2);
        assert_eq!(Cell::Free.words(), 0);
    }

    #[test]
    fn children() {
        let mut buf = Vec::new();
        Cell::Thunk {
            sc: ScId(0),
            args: vec![NodeRef(5)].into(),
        }
        .push_children(&mut buf);
        assert_eq!(buf, vec![NodeRef(5)]);
        buf.clear();
        Cell::Ind(NodeRef(9)).push_children(&mut buf);
        assert_eq!(buf, vec![NodeRef(9)]);
        buf.clear();
        Cell::BlackHole {
            blocked: vec![ThreadId(1)],
        }
        .push_children(&mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn whnf() {
        assert!(Cell::Value(Value::Int(1)).is_whnf());
        assert!(!Cell::Ind(NodeRef(0)).is_whnf());
    }
}
