//! Deep copy of normal-form subgraphs between heaps — the serialisation
//! step of Eden's message passing.
//!
//! Eden reduces all communicated data to *normal form* before sending
//! (§II.A: "All values are reduced to normal form prior to sending"),
//! then ships "computation subgraph structures, serialised into one or
//! more packets" (§III.B). This module implements exactly that: a
//! sharing-preserving deep copy of a fully evaluated subgraph from one
//! heap into another. Meeting a thunk or black hole is an error — the
//! sender must have normalised first (the middleware in `rph-eden`
//! drives that evaluation).

use crate::cell::Cell;
use crate::heap::{Heap, HeapError};
use crate::noderef::NodeRef;
use crate::value::Value;
use std::collections::HashMap;

/// Copy the normal-form subgraph rooted at `root` from `src` into
/// `dst`, preserving sharing (a DAG stays a DAG; the copy allocates one
/// node per *distinct* source node). Returns the root in `dst` and the
/// number of words copied (the serialised message size).
pub fn copy_subgraph(
    src: &Heap,
    root: NodeRef,
    dst: &mut Heap,
) -> Result<(NodeRef, u64), HeapError> {
    let mut memo: HashMap<NodeRef, NodeRef> = HashMap::new();
    let mut words = 0u64;
    let r = copy_rec(src, src.resolve(root), dst, &mut memo, &mut words)?;
    Ok((r, words))
}

fn copy_rec(
    src: &Heap,
    r: NodeRef,
    dst: &mut Heap,
    memo: &mut HashMap<NodeRef, NodeRef>,
    words: &mut u64,
) -> Result<NodeRef, HeapError> {
    let r = src.resolve(r);
    if let Some(&copied) = memo.get(&r) {
        return Ok(copied);
    }
    let value = match src.get(r) {
        Cell::Value(v) => v.clone(),
        Cell::Thunk { .. } | Cell::BlackHole { .. } => return Err(HeapError::NotNormalForm(r)),
        Cell::Free => return Err(HeapError::UseAfterFree(r)),
        Cell::Ind(_) => unreachable!("resolve() returned an Ind"),
    };
    // Normal-form data is acyclic, so structural recursion terminates;
    // sharing is preserved through the memo table. Recursion depth is
    // bounded by list length for cons spines, so long lists are copied
    // iteratively below.
    let copied = match value {
        Value::Cons(h, t) => {
            // Iterative spine copy to avoid O(list length) Rust stack.
            let mut spine = vec![(r, h)];
            let mut tail_ref = t;
            let tail_node = loop {
                let tr = src.resolve(tail_ref);
                if let Some(&copied) = memo.get(&tr) {
                    break copied;
                }
                match src.get(tr) {
                    Cell::Value(Value::Cons(h2, t2)) => {
                        spine.push((tr, *h2));
                        tail_ref = *t2;
                    }
                    Cell::Value(_) => {
                        break copy_rec(src, tr, dst, memo, words)?;
                    }
                    Cell::Thunk { .. } | Cell::BlackHole { .. } => {
                        return Err(HeapError::NotNormalForm(tr))
                    }
                    Cell::Free => return Err(HeapError::UseAfterFree(tr)),
                    Cell::Ind(_) => unreachable!(),
                }
            };
            let mut tail = tail_node;
            while let Some((src_node, head)) = spine.pop() {
                let head_copy = copy_rec(src, head, dst, memo, words)?;
                let v = Value::Cons(head_copy, tail);
                *words += v.words();
                tail = dst.alloc_value(v);
                memo.insert(src_node, tail);
            }
            tail
        }
        Value::Tuple(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for f in fields.iter() {
                out.push(copy_rec(src, *f, dst, memo, words)?);
            }
            let v = Value::Tuple(out.into());
            *words += v.words();
            let n = dst.alloc_value(v);
            memo.insert(r, n);
            n
        }
        Value::Pap { sc, args } => {
            let mut out = Vec::with_capacity(args.len());
            for a in args.iter() {
                out.push(copy_rec(src, *a, dst, memo, words)?);
            }
            let v = Value::Pap {
                sc,
                args: out.into(),
            };
            *words += v.words();
            let n = dst.alloc_value(v);
            memo.insert(r, n);
            n
        }
        atomic => {
            *words += atomic.words();
            let n = dst.alloc_value(atomic);
            memo.insert(r, n);
            n
        }
    };
    Ok(copied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noderef::ScId;

    fn list(h: &mut Heap, xs: &[i64]) -> NodeRef {
        let mut tail = h.alloc_value(Value::Nil);
        for &x in xs.iter().rev() {
            let head = h.int(x);
            tail = h.alloc_value(Value::Cons(head, tail));
        }
        tail
    }

    fn to_vec(h: &Heap, mut r: NodeRef) -> Vec<i64> {
        let mut out = Vec::new();
        loop {
            match h.expect_value(r) {
                Value::Nil => return out,
                Value::Cons(hd, tl) => {
                    out.push(h.expect_value(*hd).expect_int());
                    r = *tl;
                }
                other => panic!("not a list: {other:?}"),
            }
        }
    }

    #[test]
    fn copies_lists() {
        let mut src = Heap::new();
        let xs = list(&mut src, &[1, 2, 3]);
        let mut dst = Heap::new();
        let (copied, words) = copy_subgraph(&src, xs, &mut dst).unwrap();
        assert_eq!(to_vec(&dst, copied), vec![1, 2, 3]);
        // 3 cons (3w each) + 3 ints (2w) + nil (2w) = 17 words.
        assert_eq!(words, 17);
    }

    #[test]
    fn copies_long_lists_without_stack_overflow() {
        let mut src = Heap::new();
        let xs: Vec<i64> = (0..100_000).collect();
        let l = list(&mut src, &xs);
        let mut dst = Heap::new();
        let (copied, _) = copy_subgraph(&src, l, &mut dst).unwrap();
        assert_eq!(to_vec(&dst, copied).len(), 100_000);
    }

    #[test]
    fn preserves_sharing() {
        let mut src = Heap::new();
        let shared = src.alloc_value(Value::DArray(vec![1.0; 100].into()));
        let t = src.alloc_value(Value::Tuple(vec![shared, shared].into()));
        let mut dst = Heap::new();
        let (copied, words) = copy_subgraph(&src, t, &mut dst).unwrap();
        // The shared array is copied once: tuple (3w) + array (102w).
        assert_eq!(words, 105);
        match dst.expect_value(copied) {
            Value::Tuple(fs) => assert_eq!(dst.resolve(fs[0]), dst.resolve(fs[1])),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_thunks() {
        let mut src = Heap::new();
        let t = src.alloc_thunk(ScId(0), vec![]);
        let mut dst = Heap::new();
        assert!(matches!(
            copy_subgraph(&src, t, &mut dst),
            Err(HeapError::NotNormalForm(_))
        ));
    }

    #[test]
    fn resolves_indirections_while_copying() {
        let mut src = Heap::new();
        let v = src.int(9);
        let t = src.alloc_thunk(ScId(0), vec![]);
        src.claim_thunk(t, true);
        src.update(t, v);
        let mut dst = Heap::new();
        let (copied, _) = copy_subgraph(&src, t, &mut dst).unwrap();
        assert_eq!(dst.expect_value(copied).expect_int(), 9);
    }
}
