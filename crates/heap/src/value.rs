//! Weak-head-normal-form values.

use crate::noderef::{NodeRef, ScId};

/// A value in weak head normal form (WHNF). Constructor fields are
/// `NodeRef`s and may themselves still be thunks — that is lazy
/// evaluation: `Cons` of an unevaluated head is a perfectly good WHNF.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Machine integer.
    Int(i64),
    /// Double-precision float.
    Double(f64),
    /// Boolean.
    Bool(bool),
    /// Unit `()`.
    Unit,
    /// Empty list `[]`.
    Nil,
    /// List cell `x : xs`.
    Cons(NodeRef, NodeRef),
    /// Tuple of two or more components.
    Tuple(Box<[NodeRef]>),
    /// A dense array of unboxed doubles — matrix blocks and distance
    /// rows in the paper's workloads. (GHC would use `UArray Double`.)
    DArray(Box<[f64]>),
    /// A partial application: supercombinator `sc` applied to fewer
    /// arguments than its arity (a PAP in GHC terms).
    Pap { sc: ScId, args: Box<[NodeRef]> },
}

impl Value {
    /// Heap size of this value in words, following the usual
    /// header + payload closure layout (one header word; one word per
    /// field; arrays are one word per element plus a length word).
    pub fn words(&self) -> u64 {
        match self {
            Value::Int(_) | Value::Double(_) | Value::Bool(_) | Value::Unit | Value::Nil => 2,
            Value::Cons(_, _) => 3,
            Value::Tuple(fields) => 1 + fields.len() as u64,
            Value::DArray(xs) => 2 + xs.len() as u64,
            Value::Pap { args, .. } => 2 + args.len() as u64,
        }
    }

    /// Collect the `NodeRef` fields of this value into `out`, for GC
    /// marking and subgraph copying (allocation-free via the caller's
    /// reusable buffer).
    pub fn push_children(&self, out: &mut Vec<NodeRef>) {
        match self {
            Value::Cons(h, t) => {
                out.push(*h);
                out.push(*t);
            }
            Value::Tuple(fields) => out.extend_from_slice(fields),
            Value::Pap { args, .. } => out.extend_from_slice(args),
            _ => {}
        }
    }

    /// True if this value has no `NodeRef` children (fully evaluated by
    /// construction).
    pub fn is_atomic(&self) -> bool {
        matches!(
            self,
            Value::Int(_)
                | Value::Double(_)
                | Value::Bool(_)
                | Value::Unit
                | Value::Nil
                | Value::DArray(_)
        )
    }

    /// Extract an `Int`, panicking with a clear message otherwise.
    pub fn expect_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// Extract a `Double` (accepting `Int` via promotion).
    pub fn expect_double(&self) -> f64 {
        match self {
            Value::Double(d) => *d,
            Value::Int(i) => *i as f64,
            other => panic!("expected Double, got {other:?}"),
        }
    }

    /// Extract a `Bool`.
    pub fn expect_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected Bool, got {other:?}"),
        }
    }

    /// Extract a `DArray` slice.
    pub fn expect_darray(&self) -> &[f64] {
        match self {
            Value::DArray(xs) => xs,
            other => panic!("expected DArray, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_sizes() {
        assert_eq!(Value::Int(1).words(), 2);
        assert_eq!(Value::Cons(NodeRef(0), NodeRef(1)).words(), 3);
        assert_eq!(Value::Tuple(vec![NodeRef(0); 3].into()).words(), 4);
        assert_eq!(Value::DArray(vec![0.0; 10].into()).words(), 12);
    }

    #[test]
    fn children_collection() {
        let mut buf = Vec::new();
        Value::Cons(NodeRef(1), NodeRef(2)).push_children(&mut buf);
        assert_eq!(buf, vec![NodeRef(1), NodeRef(2)]);
        buf.clear();
        Value::Int(3).push_children(&mut buf);
        assert!(buf.is_empty());
        buf.clear();
        Value::Pap {
            sc: ScId(0),
            args: vec![NodeRef(9)].into(),
        }
        .push_children(&mut buf);
        assert_eq!(buf, vec![NodeRef(9)]);
    }

    #[test]
    fn atomic_classification() {
        assert!(Value::Int(0).is_atomic());
        assert!(Value::DArray(vec![].into()).is_atomic());
        assert!(!Value::Cons(NodeRef(0), NodeRef(0)).is_atomic());
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn expect_int_panics_on_bool() {
        Value::Bool(true).expect_int();
    }

    #[test]
    fn double_promotion() {
        assert_eq!(Value::Int(3).expect_double(), 3.0);
    }
}
