//! # rph-heap — the graph-reduction heap
//!
//! Both runtimes in the paper are graph reducers over a garbage-collected
//! heap of *closures*: GpH uses one heap physically shared by all
//! capabilities, Eden gives every processing element its own private
//! heap. This crate implements that heap for the Rust reproduction:
//!
//! * [`NodeRef`] — an index into an arena of [`Cell`]s. Using indices
//!   rather than `Rc` cycles around Rust's ownership rules exactly the
//!   way a real RTS does: the heap owns all nodes, references are plain
//!   words (which also makes them storable in the lock-free spark deque).
//! * [`Cell`] — the closure state machine: `Thunk` (suspended
//!   computation), `BlackHole` (under evaluation; holds the queue of
//!   blocked threads), `Value` (weak-head normal form), `Ind`
//!   (indirection left by an update, exactly GHC's `IND` closures).
//! * [`Heap`] — allocation, update, indirection-chasing, and a real
//!   mark–sweep collector ([`gc`]) with per-run statistics.
//! * [`AllocArea`] — per-capability allocation accounting: area size
//!   (the GC trigger), and the 4 kB allocation *checkpoint* quantum at
//!   which GHC threads notice context-switch and GC requests — the
//!   mechanism behind the paper's GC-barrier delays (§IV.A.1).
//! * [`copy`] — deep copy of normal-form subgraphs between heaps,
//!   preserving sharing: the serialisation step of Eden's message
//!   passing ("computation subgraph structures, serialised into one or
//!   more packets").
//!
//! Cost accounting: every allocation has a size in *words* (see
//! [`value::Value::words`]); kernels can additionally charge transient
//! allocation (the cons-cell churn a Haskell program would produce)
//! without materialising nodes — a copying collector's cost is
//! proportional to *live* data, so transient garbage only affects GC
//! *frequency*, which is exactly what the charge models.

pub mod area;
pub mod cell;
pub mod copy;
pub mod gc;
pub mod heap;
pub mod noderef;
pub mod value;

pub use area::AllocArea;
pub use cell::Cell;
pub use copy::copy_subgraph;
pub use gc::{GcResult, GcStats, MinorGcResult, ParMarkCosts, ParMarkReport};
pub use heap::{Heap, HeapError, HeapStats, RegionId, OLD_REGION};
pub use noderef::{NodeRef, ScId};
pub use value::Value;
