//! Heap node references and supercombinator identifiers.

use rph_deque::word_newtype;

/// A reference to a heap cell: an index into the owning [`crate::Heap`]'s
/// arena. `NodeRef`s are meaningful only relative to one heap — Eden PEs
/// have disjoint heaps and exchange data by deep copy, never by sharing
/// a `NodeRef` (that is the point of the distributed-heap model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeRef(pub u32);

word_newtype!(NodeRef, u32);

impl NodeRef {
    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a supercombinator (a compiled top-level function) in
/// the program's supercombinator table. The heap stores `ScId`s inside
/// thunks; the abstract machine (`rph-machine`) owns the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScId(pub u32);

impl ScId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ScId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sc{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rph_deque::Word;

    #[test]
    fn noderef_is_a_deque_word() {
        let r = NodeRef(123);
        assert_eq!(NodeRef::from_u64(r.to_u64()), r);
    }

    #[test]
    fn display() {
        assert_eq!(NodeRef(7).to_string(), "n7");
        assert_eq!(ScId(2).to_string(), "sc2");
    }
}
