//! Mark–sweep garbage collection.
//!
//! The paper's GC story (§IV.A.1) concerns *when* collections happen
//! (allocation-area exhaustion), *how* capabilities synchronise
//! (stop-the-world barrier at allocation checkpoints), and *what* a
//! collection costs (proportional to live data for a copying
//! collector). The barrier and the cost model live in the runtimes;
//! this module provides a real collector so that liveness is computed
//! from actual reachability, never assumed: workloads allocate real
//! cons spines, matrix blocks and thunk graphs, and an incorrect root
//! set would make results wrong, not just timings.

use crate::heap::Heap;
use crate::noderef::NodeRef;

/// Result of one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcResult {
    pub live_cells: u64,
    pub live_words: u64,
    pub collected_cells: u64,
    pub collected_words: u64,
}

/// Cumulative GC statistics for a heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    pub collections: u64,
    pub total_collected_words: u64,
    pub max_live_words: u64,
}

/// A reusable mark–sweep collector (buffers persist across collections
/// to avoid re-allocating the mark bitmap and worklist each time).
#[derive(Debug, Default)]
pub struct Collector {
    marks: Vec<bool>,
    worklist: Vec<NodeRef>,
    child_buf: Vec<NodeRef>,
    stats: GcStats,
}

impl Collector {
    pub fn new() -> Self {
        Collector::default()
    }

    pub fn stats(&self) -> GcStats {
        self.stats
    }

    /// Collect `heap`, keeping exactly the cells reachable from `roots`.
    pub fn collect(
        &mut self,
        heap: &mut Heap,
        roots: impl IntoIterator<Item = NodeRef>,
    ) -> GcResult {
        let n = heap.capacity();
        self.marks.clear();
        self.marks.resize(n, false);
        self.worklist.clear();

        // Mark phase.
        for r in roots {
            self.mark_push(r);
        }
        while let Some(r) = self.worklist.pop() {
            self.child_buf.clear();
            heap.get(r).push_children(&mut self.child_buf);
            // Drain into the worklist without holding a borrow of heap.
            for i in 0..self.child_buf.len() {
                let c = self.child_buf[i];
                if !self.marks[c.index()] {
                    self.marks[c.index()] = true;
                    self.worklist.push(c);
                }
            }
        }

        // Sweep phase.
        let mut res = GcResult {
            live_cells: 0,
            live_words: 0,
            collected_cells: 0,
            collected_words: 0,
        };
        for idx in 0..n {
            let cell = &heap.cells()[idx];
            if matches!(cell, crate::cell::Cell::Free) {
                continue;
            }
            let words = cell.words();
            if self.marks[idx] {
                res.live_cells += 1;
                res.live_words += words;
            } else {
                res.collected_cells += 1;
                res.collected_words += words;
                heap.free_cell(idx);
            }
        }

        self.stats.collections += 1;
        self.stats.total_collected_words += res.collected_words;
        self.stats.max_live_words = self.stats.max_live_words.max(res.live_words);
        debug_assert_eq!(res.live_words, heap.live_words());
        res
    }

    fn mark_push(&mut self, r: NodeRef) {
        if !self.marks[r.index()] {
            self.marks[r.index()] = true;
            self.worklist.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::noderef::ScId;
    use crate::value::Value;

    #[test]
    fn collects_unreachable_keeps_reachable() {
        let mut h = Heap::new();
        let a = h.int(1);
        let b = h.int(2);
        let cons = h.alloc_value(Value::Cons(a, b));
        let dead = h.int(99);
        let mut gc = Collector::new();
        let res = gc.collect(&mut h, [cons]);
        assert_eq!(res.live_cells, 3);
        assert_eq!(res.collected_cells, 1);
        assert!(h.is_free(dead));
        assert_eq!(h.expect_value(a).expect_int(), 1);
    }

    #[test]
    fn marks_through_thunks_and_inds() {
        let mut h = Heap::new();
        let x = h.int(5);
        let t = h.alloc_thunk(ScId(0), vec![x]);
        let i = h.alloc(Cell::Ind(t));
        let mut gc = Collector::new();
        let res = gc.collect(&mut h, [i]);
        assert_eq!(res.live_cells, 3);
        assert!(!h.is_free(x));
    }

    #[test]
    fn cyclic_graphs_terminate() {
        // let xs = 1 : xs  — build a knot via update.
        let mut h = Heap::new();
        let one = h.int(1);
        let t = h.alloc_thunk(ScId(0), vec![]);
        let cons = h.alloc_value(Value::Cons(one, t));
        h.claim_thunk(t, true);
        h.update(t, cons); // t -> Ind(cons): cycle cons -> t -> cons
        let mut gc = Collector::new();
        let res = gc.collect(&mut h, [cons]);
        assert_eq!(res.live_cells, 3);
        assert_eq!(res.collected_cells, 0);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut h = Heap::new();
        let _dead = h.int(1);
        let root = h.int(2);
        let mut gc = Collector::new();
        gc.collect(&mut h, [root]);
        let cap_before = h.capacity();
        let _new = h.int(3);
        assert_eq!(h.capacity(), cap_before, "freed slot should be reused");
    }

    #[test]
    fn empty_roots_collect_everything() {
        let mut h = Heap::new();
        for i in 0..10 {
            h.int(i);
        }
        let mut gc = Collector::new();
        let res = gc.collect(&mut h, []);
        assert_eq!(res.collected_cells, 10);
        assert_eq!(h.live_words(), 0);
        assert_eq!(h.live_cells(), 0);
    }

    #[test]
    fn repeated_collections_accumulate_stats() {
        let mut h = Heap::new();
        let root = h.int(0);
        let mut gc = Collector::new();
        for _ in 0..3 {
            h.int(7); // garbage each round
            gc.collect(&mut h, [root]);
        }
        assert_eq!(gc.stats().collections, 3);
        assert_eq!(gc.stats().total_collected_words, 6);
        assert_eq!(gc.stats().max_live_words, 2);
    }
}
