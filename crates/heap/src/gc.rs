//! Mark–sweep garbage collection.
//!
//! The paper's GC story (§IV.A.1) concerns *when* collections happen
//! (allocation-area exhaustion), *how* capabilities synchronise
//! (stop-the-world barrier at allocation checkpoints), and *what* a
//! collection costs (proportional to live data for a copying
//! collector). The barrier and the cost model live in the runtimes;
//! this module provides a real collector so that liveness is computed
//! from actual reachability, never assumed: workloads allocate real
//! cons spines, matrix blocks and thunk graphs, and an incorrect root
//! set would make results wrong, not just timings.

use crate::cell::Cell;
use crate::heap::{Heap, RegionId};
use crate::noderef::NodeRef;

/// Result of one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcResult {
    pub live_cells: u64,
    pub live_words: u64,
    pub collected_cells: u64,
    pub collected_words: u64,
}

/// Result of one independent minor collection of a single nursery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinorGcResult {
    pub region: RegionId,
    /// Survivors evacuated (promoted) to the old generation.
    pub survivor_cells: u64,
    pub survivor_words: u64,
    /// Nursery garbage reclaimed.
    pub freed_cells: u64,
    pub freed_words: u64,
    /// Live remembered-set sources scanned (stale/freed sources skipped).
    pub remset_entries: u64,
}

/// Virtual-time costs of the parallel mark phase, supplied by the
/// runtime's cost model (this crate stays cost-model-agnostic).
#[derive(Debug, Clone, Copy)]
pub struct ParMarkCosts {
    /// Processing one grey cell (pop, examine, push children).
    pub mark_cell: u64,
    /// Evacuation cost per word of the cell (copying collector).
    pub per_word: u64,
    /// One grey-set steal (victim handshake + transfer).
    pub steal: u64,
}

/// What the parallel mark phase did, in virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParMarkReport {
    /// Per-capability GC-thread clocks; the pause is their max.
    pub cap_clocks: Vec<u64>,
    /// Grey-set steals performed during marking.
    pub grey_steals: u64,
}

impl ParMarkReport {
    /// The mark phase ends when the slowest GC thread finishes.
    pub fn max_clock(&self) -> u64 {
        self.cap_clocks.iter().copied().max().unwrap_or(0)
    }
}

/// Cumulative GC statistics for a heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    pub collections: u64,
    pub total_collected_words: u64,
    pub max_live_words: u64,
}

/// A reusable mark–sweep collector (buffers persist across collections
/// to avoid re-allocating the mark bitmap and worklist each time).
#[derive(Debug, Default)]
pub struct Collector {
    marks: Vec<bool>,
    worklist: Vec<NodeRef>,
    child_buf: Vec<NodeRef>,
    stats: GcStats,
}

impl Collector {
    pub fn new() -> Self {
        Collector::default()
    }

    pub fn stats(&self) -> GcStats {
        self.stats
    }

    /// Collect `heap`, keeping exactly the cells reachable from `roots`.
    pub fn collect(
        &mut self,
        heap: &mut Heap,
        roots: impl IntoIterator<Item = NodeRef>,
    ) -> GcResult {
        let n = heap.capacity();
        self.marks.clear();
        self.marks.resize(n, false);
        self.worklist.clear();

        // Mark phase.
        for r in roots {
            self.mark_push(r);
        }
        while let Some(r) = self.worklist.pop() {
            self.child_buf.clear();
            heap.get(r).push_children(&mut self.child_buf);
            // Drain into the worklist without holding a borrow of heap.
            for i in 0..self.child_buf.len() {
                let c = self.child_buf[i];
                if !self.marks[c.index()] {
                    self.marks[c.index()] = true;
                    self.worklist.push(c);
                }
            }
        }

        // Sweep phase.
        let mut res = GcResult {
            live_cells: 0,
            live_words: 0,
            collected_cells: 0,
            collected_words: 0,
        };
        for idx in 0..n {
            let cell = &heap.cells()[idx];
            if matches!(cell, crate::cell::Cell::Free) {
                continue;
            }
            let words = cell.words();
            if self.marks[idx] {
                res.live_cells += 1;
                res.live_words += words;
            } else {
                res.collected_cells += 1;
                res.collected_words += words;
                heap.free_cell(idx);
            }
        }

        // A full collection leaves every survivor in the old
        // generation (no-op when nurseries are disabled).
        heap.reset_nurseries_after_major();

        self.stats.collections += 1;
        self.stats.total_collected_words += res.collected_words;
        self.stats.max_live_words = self.stats.max_live_words.max(res.live_words);
        debug_assert_eq!(res.live_words, heap.live_words());
        res
    }

    /// Independently collect one nursery `region`: mark the cells of
    /// that region reachable from `roots` (filtered to the region) and
    /// from the region's remembered set, promote survivors to the old
    /// generation, free the rest. Nothing outside the region is
    /// touched, so the pause depends only on this region's contents.
    ///
    /// `roots` should be the full runtime root set — the filter to
    /// region-resident targets happens here. Tracing is region-bounded:
    /// references leaving the region are not followed (the old
    /// generation is not collected; other nurseries are protected by
    /// their own remembered sets).
    pub fn collect_minor(
        &mut self,
        heap: &mut Heap,
        region: RegionId,
        roots: impl IntoIterator<Item = NodeRef>,
    ) -> MinorGcResult {
        let n = heap.capacity();
        self.marks.clear();
        self.marks.resize(n, false);
        self.worklist.clear();

        // Seed from runtime roots resident in this region.
        for r in roots {
            if heap.region_of(r) == region {
                self.mark_push(r);
            }
        }
        // Seed from the remembered set: sources outside the region
        // holding references into it. The set is drained — surviving
        // cross-region references into this nursery cannot exist after
        // the sweep, because every survivor is promoted.
        let remset = heap.take_remset(region);
        let mut remset_entries = 0u64;
        for src in remset {
            let cell = heap.get(NodeRef(src));
            if matches!(cell, Cell::Free) {
                continue; // stale source, freed since recording
            }
            remset_entries += 1;
            self.child_buf.clear();
            cell.push_children(&mut self.child_buf);
            for i in 0..self.child_buf.len() {
                let c = self.child_buf[i];
                if heap.region_of(c) == region {
                    self.mark_push(c);
                }
            }
        }

        // Region-bounded trace.
        while let Some(r) = self.worklist.pop() {
            self.child_buf.clear();
            heap.get(r).push_children(&mut self.child_buf);
            for i in 0..self.child_buf.len() {
                let c = self.child_buf[i];
                if heap.region_of(c) == region {
                    self.mark_push(c);
                }
            }
        }

        // Sweep the region's members: survivors are evacuated
        // (promoted, keeping their slot identity), garbage is freed.
        let members = heap.take_region_members(region);
        let mut res = MinorGcResult {
            region,
            survivor_cells: 0,
            survivor_words: 0,
            freed_cells: 0,
            freed_words: 0,
            remset_entries,
        };
        for idx in members {
            if heap.region_of(NodeRef(idx)) != region {
                continue; // stale member entry
            }
            let words = heap.get(NodeRef(idx)).words();
            if self.marks[idx as usize] {
                heap.promote_cell(idx as usize);
                res.survivor_cells += 1;
                res.survivor_words += words;
            } else {
                heap.free_cell(idx as usize);
                res.freed_cells += 1;
                res.freed_words += words;
            }
        }
        debug_assert_eq!(heap.nursery_words(region), 0, "nursery fully evacuated");

        self.stats.collections += 1;
        self.stats.total_collected_words += res.freed_words;
        res
    }

    /// Full collection with the mark phase modelled as `caps` parallel
    /// GC threads in virtual time: the root set is pre-partitioned by
    /// the caller (`roots_by_cap`), each GC thread traces its own grey
    /// stack, and an out-of-work thread steals half the grey stack of
    /// the deepest victim. Termination: all stacks empty. The returned
    /// report carries per-thread clocks; pause = max clock.
    ///
    /// The schedule is a deterministic discrete-event simulation — at
    /// each step the thread with the lowest clock (ties: lowest id)
    /// that can make progress acts. A thread with an empty stack and no
    /// victim holding ≥ 2 grey cells waits without advancing its clock,
    /// exactly like a GC thread idling at the termination barrier.
    pub fn collect_parallel(
        &mut self,
        heap: &mut Heap,
        roots_by_cap: &[Vec<NodeRef>],
        costs: &ParMarkCosts,
    ) -> (GcResult, ParMarkReport) {
        let caps = roots_by_cap.len().max(1);
        let n = heap.capacity();
        self.marks.clear();
        self.marks.resize(n, false);

        let mut stacks: Vec<Vec<NodeRef>> = vec![Vec::new(); caps];
        for (i, roots) in roots_by_cap.iter().enumerate() {
            for &r in roots {
                if !self.marks[r.index()] {
                    self.marks[r.index()] = true;
                    stacks[i].push(r);
                }
            }
        }

        let mut clocks = vec![0u64; caps];
        let mut grey_steals = 0u64;
        loop {
            // Schedulable: non-empty stack, or a steal is possible.
            let mut next: Option<usize> = None;
            for q in 0..caps {
                let can_act = !stacks[q].is_empty()
                    || stacks
                        .iter()
                        .enumerate()
                        .any(|(v, s)| v != q && s.len() >= 2);
                if can_act && next.is_none_or(|b| clocks[q] < clocks[b]) {
                    next = Some(q);
                }
            }
            let Some(q) = next else { break };

            if let Some(r) = stacks[q].pop() {
                let words = heap.get(r).words();
                clocks[q] += costs.mark_cell + words * costs.per_word;
                self.child_buf.clear();
                heap.get(r).push_children(&mut self.child_buf);
                for i in 0..self.child_buf.len() {
                    let c = self.child_buf[i];
                    if !self.marks[c.index()] {
                        self.marks[c.index()] = true;
                        stacks[q].push(c);
                    }
                }
            } else {
                // Steal half the deepest victim's grey stack (bottom
                // half — the oldest grey cells, as GHC's grey-packet
                // stealing does). Deterministic: deepest stack, ties to
                // the lowest id.
                let victim = (0..caps)
                    .filter(|&v| v != q && stacks[v].len() >= 2)
                    .max_by_key(|&v| (stacks[v].len(), usize::MAX - v))
                    .expect("schedulable empty thread has a victim");
                let take = stacks[victim].len() / 2;
                let stolen: Vec<NodeRef> = stacks[victim].drain(..take).collect();
                stacks[q] = stolen;
                clocks[q] = clocks[q].max(clocks[victim]) + costs.steal;
                grey_steals += 1;
            }
        }

        // Serial sweep (accounted in the caller's fixed costs).
        let mut res = GcResult {
            live_cells: 0,
            live_words: 0,
            collected_cells: 0,
            collected_words: 0,
        };
        for idx in 0..n {
            let cell = &heap.cells()[idx];
            if matches!(cell, Cell::Free) {
                continue;
            }
            let words = cell.words();
            if self.marks[idx] {
                res.live_cells += 1;
                res.live_words += words;
            } else {
                res.collected_cells += 1;
                res.collected_words += words;
                heap.free_cell(idx);
            }
        }
        heap.reset_nurseries_after_major();

        self.stats.collections += 1;
        self.stats.total_collected_words += res.collected_words;
        self.stats.max_live_words = self.stats.max_live_words.max(res.live_words);
        debug_assert_eq!(res.live_words, heap.live_words());
        (
            res,
            ParMarkReport {
                cap_clocks: clocks,
                grey_steals,
            },
        )
    }

    fn mark_push(&mut self, r: NodeRef) {
        if !self.marks[r.index()] {
            self.marks[r.index()] = true;
            self.worklist.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::noderef::ScId;
    use crate::value::Value;

    #[test]
    fn collects_unreachable_keeps_reachable() {
        let mut h = Heap::new();
        let a = h.int(1);
        let b = h.int(2);
        let cons = h.alloc_value(Value::Cons(a, b));
        let dead = h.int(99);
        let mut gc = Collector::new();
        let res = gc.collect(&mut h, [cons]);
        assert_eq!(res.live_cells, 3);
        assert_eq!(res.collected_cells, 1);
        assert!(h.is_free(dead));
        assert_eq!(h.expect_value(a).expect_int(), 1);
    }

    #[test]
    fn marks_through_thunks_and_inds() {
        let mut h = Heap::new();
        let x = h.int(5);
        let t = h.alloc_thunk(ScId(0), vec![x]);
        let i = h.alloc(Cell::Ind(t));
        let mut gc = Collector::new();
        let res = gc.collect(&mut h, [i]);
        assert_eq!(res.live_cells, 3);
        assert!(!h.is_free(x));
    }

    #[test]
    fn cyclic_graphs_terminate() {
        // let xs = 1 : xs  — build a knot via update.
        let mut h = Heap::new();
        let one = h.int(1);
        let t = h.alloc_thunk(ScId(0), vec![]);
        let cons = h.alloc_value(Value::Cons(one, t));
        h.claim_thunk(t, true);
        h.update(t, cons); // t -> Ind(cons): cycle cons -> t -> cons
        let mut gc = Collector::new();
        let res = gc.collect(&mut h, [cons]);
        assert_eq!(res.live_cells, 3);
        assert_eq!(res.collected_cells, 0);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut h = Heap::new();
        let _dead = h.int(1);
        let root = h.int(2);
        let mut gc = Collector::new();
        gc.collect(&mut h, [root]);
        let cap_before = h.capacity();
        let _new = h.int(3);
        assert_eq!(h.capacity(), cap_before, "freed slot should be reused");
    }

    #[test]
    fn empty_roots_collect_everything() {
        let mut h = Heap::new();
        for i in 0..10 {
            h.int(i);
        }
        let mut gc = Collector::new();
        let res = gc.collect(&mut h, []);
        assert_eq!(res.collected_cells, 10);
        assert_eq!(h.live_words(), 0);
        assert_eq!(h.live_cells(), 0);
    }

    #[test]
    fn minor_gc_promotes_survivors_frees_garbage() {
        let mut h = Heap::new();
        h.enable_nurseries(2);
        h.set_alloc_region(Some(0));
        let keep = h.int(1);
        let chain = h.alloc(Cell::Ind(keep));
        let dead = h.int(99);
        let res = Collector::new().collect_minor(&mut h, 0, [chain]);
        assert_eq!(res.survivor_cells, 2);
        assert_eq!(res.survivor_words, 4);
        assert_eq!(res.freed_cells, 1);
        assert!(h.is_free(dead));
        // Survivors promoted: region empty, cells still readable.
        assert_eq!(h.nursery_words(0), 0);
        assert_eq!(h.region_of(keep), crate::heap::OLD_REGION);
        assert_eq!(h.expect_value(keep).expect_int(), 1);
    }

    #[test]
    fn minor_gc_keeps_cells_reachable_only_via_remset() {
        let mut h = Heap::new();
        h.enable_nurseries(2);
        // Young cell in region 0, referenced only from a region-1 cell.
        h.set_alloc_region(Some(0));
        let young = h.int(5);
        h.set_alloc_region(Some(1));
        let holder = h.alloc(Cell::Ind(young));
        // Minor GC of region 0 with NO runtime roots into it: the
        // remembered set alone must keep `young` alive.
        let res = Collector::new().collect_minor(&mut h, 0, [holder]);
        assert_eq!(res.survivor_cells, 1);
        assert_eq!(res.remset_entries, 1);
        assert!(!h.is_free(young));
        assert_eq!(h.expect_value(holder).expect_int(), 5);
    }

    #[test]
    fn minor_gc_does_not_touch_other_regions_or_old_gen() {
        let mut h = Heap::new();
        let old_garbage = h.int(1); // old gen, unreachable
        h.enable_nurseries(2);
        h.set_alloc_region(Some(1));
        let other = h.int(2); // region 1, unreachable
        h.set_alloc_region(Some(0));
        let mine = h.int(3);
        let res = Collector::new().collect_minor(&mut h, 0, [mine]);
        assert_eq!(res.survivor_cells, 1);
        assert_eq!(res.freed_cells, 0);
        assert!(!h.is_free(old_garbage), "old gen untouched by minor GC");
        assert!(!h.is_free(other), "foreign nursery untouched");
    }

    #[test]
    fn minor_gc_pause_inputs_independent_of_other_regions() {
        // The coupling bug this PR fixes: region 0's minor-GC result
        // (which prices the pause) must not change when region 1 or the
        // old generation holds vastly more data.
        let build = |other_cells: usize| {
            let mut h = Heap::new();
            h.enable_nurseries(2);
            h.set_alloc_region(Some(1));
            for i in 0..other_cells {
                h.int(i as i64);
            }
            h.set_alloc_region(Some(0));
            let keep = h.int(1);
            let root = h.alloc(Cell::Ind(keep));
            h.int(42); // garbage
            let res = Collector::new().collect_minor(&mut h, 0, [root]);
            (
                res.survivor_cells,
                res.survivor_words,
                res.freed_cells,
                res.freed_words,
                res.remset_entries,
            )
        };
        assert_eq!(build(1), build(10_000));
    }

    #[test]
    fn parallel_collect_matches_serial_liveness() {
        let mk = || {
            let mut h = Heap::new();
            let mut roots = Vec::new();
            for i in 0..40 {
                let a = h.int(i);
                let b = h.alloc(Cell::Ind(a));
                if i % 3 == 0 {
                    roots.push(b);
                } // else garbage
            }
            (h, roots)
        };
        let costs = ParMarkCosts {
            mark_cell: 10,
            per_word: 1,
            steal: 100,
        };
        let (mut h1, roots) = mk();
        let serial = Collector::new().collect(&mut h1, roots.clone());
        for caps in [1usize, 2, 4, 8] {
            let (mut h2, roots) = mk();
            let mut by_cap: Vec<Vec<NodeRef>> = vec![Vec::new(); caps];
            for (i, r) in roots.into_iter().enumerate() {
                by_cap[i % caps].push(r);
            }
            let (par, report) = Collector::new().collect_parallel(&mut h2, &by_cap, &costs);
            assert_eq!(par, serial, "same liveness at {caps} GC threads");
            assert_eq!(report.cap_clocks.len(), caps);
            assert!(report.max_clock() > 0);
        }
    }

    #[test]
    fn parallel_mark_scales_down_max_clock() {
        // A wide graph: many independent roots. More GC threads →
        // shorter critical path (max clock), same total liveness.
        let mk = || {
            let mut h = Heap::new();
            let mut roots = Vec::new();
            for i in 0..64 {
                let a = h.int(i);
                let b = h.alloc(Cell::Ind(a));
                let c = h.alloc(Cell::Ind(b));
                roots.push(c);
            }
            (h, roots)
        };
        let costs = ParMarkCosts {
            mark_cell: 10,
            per_word: 1,
            steal: 5,
        };
        let clock_at = |caps: usize| {
            let (mut h, roots) = mk();
            let mut by_cap: Vec<Vec<NodeRef>> = vec![Vec::new(); caps];
            for (i, r) in roots.into_iter().enumerate() {
                by_cap[i % caps].push(r);
            }
            Collector::new()
                .collect_parallel(&mut h, &by_cap, &costs)
                .1
                .max_clock()
        };
        let c1 = clock_at(1);
        let c4 = clock_at(4);
        assert!(
            c4 * 2 < c1,
            "4 GC threads should at least halve the mark time ({c4} vs {c1})"
        );
    }

    #[test]
    fn parallel_collect_steals_when_roots_are_imbalanced() {
        // All roots on cap 0: the other GC threads must steal to help.
        let mut h = Heap::new();
        let mut roots = Vec::new();
        for i in 0..64 {
            let a = h.int(i);
            roots.push(h.alloc(Cell::Ind(a)));
        }
        let mut by_cap = vec![Vec::new(); 4];
        by_cap[0] = roots;
        let costs = ParMarkCosts {
            mark_cell: 10,
            per_word: 1,
            steal: 5,
        };
        let (_, report) = Collector::new().collect_parallel(&mut h, &by_cap, &costs);
        assert!(report.grey_steals > 0, "imbalanced roots force grey steals");
    }

    #[test]
    fn repeated_collections_accumulate_stats() {
        let mut h = Heap::new();
        let root = h.int(0);
        let mut gc = Collector::new();
        for _ in 0..3 {
            h.int(7); // garbage each round
            gc.collect(&mut h, [root]);
        }
        assert_eq!(gc.stats().collections, 3);
        assert_eq!(gc.stats().total_collected_words, 6);
        assert_eq!(gc.stats().max_live_words, 2);
    }
}
