//! The arena heap: allocation, indirection chasing, thunk entry and
//! update transitions.

use crate::cell::Cell;
use crate::noderef::{NodeRef, ScId};
use crate::value::Value;
use rph_trace::ThreadId;

/// Errors surfaced by heap operations.
#[derive(Debug, Clone, PartialEq)]
pub enum HeapError {
    /// An operation required normal-form data but met a thunk or black
    /// hole (e.g. Eden serialisation of unevaluated data).
    NotNormalForm(NodeRef),
    /// A freed cell was dereferenced — a runtime bug caught loudly.
    UseAfterFree(NodeRef),
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::NotNormalForm(r) => write!(f, "node {r} is not in normal form"),
            HeapError::UseAfterFree(r) => write!(f, "use after free of node {r}"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Outcome of entering a thunk via [`Heap::claim_thunk`].
#[derive(Debug, Clone, PartialEq)]
pub enum Claim {
    /// The caller now evaluates the thunk; here are its contents.
    /// Under eager black-holing the cell is already a `BlackHole`;
    /// under lazy black-holing it is still a `Thunk` (and another
    /// thread may claim it too — duplicate evaluation).
    Run { sc: ScId, args: Box<[NodeRef]> },
    /// The cell is already a value; no evaluation needed.
    Whnf,
    /// The cell is a black hole: someone else is evaluating it. The
    /// caller should block.
    Busy,
}

/// Cumulative allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Total words ever allocated as real graph nodes.
    pub allocated_words: u64,
    /// Total transient words charged by kernels (never materialised).
    pub charged_words: u64,
    /// Number of node allocations.
    pub allocations: u64,
    /// Number of thunk updates performed.
    pub updates: u64,
    /// Number of updates that found the node already updated
    /// (duplicate evaluation under lazy black-holing).
    pub duplicate_updates: u64,
}

/// A graph-reduction heap. One per program in GpH (shared by all
/// capabilities), one per PE in Eden.
#[derive(Debug, Default)]
pub struct Heap {
    cells: Vec<Cell>,
    free: Vec<u32>,
    /// Words occupied by live (non-`Free`) cells.
    live_words: u64,
    stats: HeapStats,
}

impl Heap {
    pub fn new() -> Self {
        Heap::default()
    }

    /// Number of live (non-free) cells.
    pub fn live_cells(&self) -> usize {
        self.cells.len() - self.free.len()
    }

    /// Words occupied by live cells.
    pub fn live_words(&self) -> u64 {
        self.live_words
    }

    /// Arena capacity (live + freed slots).
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Allocation statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Charge transient allocation: `words` a Haskell mutator would
    /// have allocated and immediately discarded (list spines inside
    /// kernels). Affects GC *frequency* via the caller's
    /// [`crate::AllocArea`], not GC cost (copying GC only pays for live
    /// data).
    pub fn charge_transient(&mut self, words: u64) {
        self.stats.charged_words += words;
    }

    /// Allocate a cell, reusing a freed slot when available.
    pub fn alloc(&mut self, cell: Cell) -> NodeRef {
        let words = cell.words();
        self.live_words += words;
        self.stats.allocated_words += words;
        self.stats.allocations += 1;
        if let Some(idx) = self.free.pop() {
            self.cells[idx as usize] = cell;
            NodeRef(idx)
        } else {
            let idx = u32::try_from(self.cells.len()).expect("heap exceeds 2^32 cells");
            self.cells.push(cell);
            NodeRef(idx)
        }
    }

    /// Allocate a WHNF value node.
    pub fn alloc_value(&mut self, v: Value) -> NodeRef {
        self.alloc(Cell::Value(v))
    }

    /// Allocate an integer node.
    pub fn int(&mut self, i: i64) -> NodeRef {
        self.alloc_value(Value::Int(i))
    }

    /// Allocate a thunk node: the suspended application `sc args`.
    pub fn alloc_thunk(&mut self, sc: ScId, args: impl Into<Box<[NodeRef]>>) -> NodeRef {
        self.alloc(Cell::Thunk {
            sc,
            args: args.into(),
        })
    }

    /// Read a cell (without resolving indirections).
    #[inline]
    pub fn get(&self, r: NodeRef) -> &Cell {
        &self.cells[r.index()]
    }

    /// Follow `Ind` chains to the underlying cell.
    #[inline]
    pub fn resolve(&self, mut r: NodeRef) -> NodeRef {
        loop {
            match &self.cells[r.index()] {
                Cell::Ind(next) => r = *next,
                _ => return r,
            }
        }
    }

    /// The value of `r` if it is (after indirections) in WHNF.
    pub fn whnf(&self, r: NodeRef) -> Option<&Value> {
        match self.get(self.resolve(r)) {
            Cell::Value(v) => Some(v),
            _ => None,
        }
    }

    /// The value of `r`, panicking if unevaluated (test/kernel helper
    /// for places where evaluation is known to have happened).
    pub fn expect_value(&self, r: NodeRef) -> &Value {
        self.whnf(r).unwrap_or_else(|| {
            panic!(
                "node {r} expected in WHNF, found {:?}",
                self.get(self.resolve(r))
            )
        })
    }

    /// Enter the (resolved) node `r` for evaluation.
    ///
    /// With `eager_blackhole` the thunk is atomically overwritten by a
    /// `BlackHole` so any second entrant gets [`Claim::Busy`]. Without
    /// it (GHC's lazy black-holing) the thunk is left in place — a
    /// second thread entering before the next context switch will also
    /// get [`Claim::Run`] and duplicate the work (paper §IV.A.3).
    pub fn claim_thunk(&mut self, r: NodeRef, eager_blackhole: bool) -> Claim {
        let r = self.resolve(r);
        match &self.cells[r.index()] {
            Cell::Value(_) => Claim::Whnf,
            Cell::BlackHole { .. } => Claim::Busy,
            Cell::Thunk { sc, args } => {
                let (sc, args) = (*sc, args.clone());
                if eager_blackhole {
                    self.blackhole(r);
                }
                Claim::Run { sc, args }
            }
            Cell::Ind(_) => unreachable!("resolve() returned an Ind"),
            Cell::Free => panic!("{}", HeapError::UseAfterFree(r)),
        }
    }

    /// Overwrite a thunk with a black hole (used directly by lazy
    /// black-holing at context-switch time). No-op unless the cell is a
    /// thunk.
    pub fn blackhole(&mut self, r: NodeRef) -> bool {
        let r = self.resolve(r);
        let cell = &mut self.cells[r.index()];
        if let Cell::Thunk { .. } = cell {
            let old = cell.words();
            *cell = Cell::BlackHole {
                blocked: Vec::new(),
            };
            // Black hole overwrites in place; live words shrink to the
            // 2-word header.
            self.live_words = self.live_words - old + 2;
            true
        } else {
            false
        }
    }

    /// Record `thread` as blocked on black hole `r`.
    ///
    /// # Panics
    /// Panics if `r` is not a black hole — the scheduler must only
    /// block threads on cells it has just observed as busy.
    pub fn block_on(&mut self, r: NodeRef, thread: ThreadId) {
        let r = self.resolve(r);
        match &mut self.cells[r.index()] {
            Cell::BlackHole { blocked } => blocked.push(thread),
            other => panic!("block_on: node {r} is {other:?}, not a black hole"),
        }
    }

    /// Update node `r` with its computed result `result` (a node in
    /// WHNF). Returns the threads to wake. If another thread already
    /// updated `r` (lazy black-holing duplicate), the update is dropped
    /// and `duplicate` is flagged in the returned report.
    pub fn update(&mut self, r: NodeRef, result: NodeRef) -> UpdateReport {
        let r = self.resolve(r);
        let result = self.resolve(result);
        if r == result {
            // Updating a node with itself (already evaluated in place).
            self.stats.updates += 1;
            return UpdateReport {
                woken: Vec::new(),
                duplicate: false,
            };
        }
        let cell = &mut self.cells[r.index()];
        match cell {
            Cell::BlackHole { blocked } => {
                let woken = std::mem::take(blocked);
                let old = 2;
                *cell = Cell::Ind(result);
                self.live_words = self.live_words - old + 2;
                self.stats.updates += 1;
                UpdateReport {
                    woken,
                    duplicate: false,
                }
            }
            Cell::Thunk { .. } => {
                // Lazy black-holing: nobody blocked, overwrite quietly.
                let old = cell.words();
                *cell = Cell::Ind(result);
                self.live_words = self.live_words - old + 2;
                self.stats.updates += 1;
                UpdateReport {
                    woken: Vec::new(),
                    duplicate: false,
                }
            }
            Cell::Value(_) | Cell::Ind(_) => {
                // Someone beat us to it: duplicate evaluation detected.
                self.stats.updates += 1;
                self.stats.duplicate_updates += 1;
                UpdateReport {
                    woken: Vec::new(),
                    duplicate: true,
                }
            }
            Cell::Free => panic!("{}", HeapError::UseAfterFree(r)),
        }
    }

    // ----- internal access for the collector -----

    pub(crate) fn cells(&self) -> &[Cell] {
        &self.cells
    }

    pub(crate) fn free_cell(&mut self, idx: usize) {
        let words = self.cells[idx].words();
        self.live_words -= words;
        self.cells[idx] = Cell::Free;
        self.free.push(idx as u32);
    }

    /// Test helper: is the slot freed?
    pub fn is_free(&self, r: NodeRef) -> bool {
        matches!(self.get(r), Cell::Free)
    }
}

/// Result of [`Heap::update`].
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateReport {
    /// Threads that were blocked on the updated black hole.
    pub woken: Vec<ThreadId>,
    /// True if the node had already been updated by another thread.
    pub duplicate: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_read() {
        let mut h = Heap::new();
        let a = h.int(42);
        assert_eq!(h.expect_value(a).expect_int(), 42);
        assert_eq!(h.live_cells(), 1);
        assert_eq!(h.live_words(), 2);
    }

    #[test]
    fn resolve_chases_ind_chains() {
        let mut h = Heap::new();
        let v = h.int(7);
        let i1 = h.alloc(Cell::Ind(v));
        let i2 = h.alloc(Cell::Ind(i1));
        assert_eq!(h.resolve(i2), v);
        assert_eq!(h.whnf(i2), Some(&Value::Int(7)));
    }

    #[test]
    fn eager_claim_blackholes() {
        let mut h = Heap::new();
        let t = h.alloc_thunk(ScId(0), vec![]);
        match h.claim_thunk(t, true) {
            Claim::Run { sc, .. } => assert_eq!(sc, ScId(0)),
            other => panic!("{other:?}"),
        }
        assert_eq!(h.claim_thunk(t, true), Claim::Busy);
    }

    #[test]
    fn lazy_claim_allows_duplicates() {
        let mut h = Heap::new();
        let t = h.alloc_thunk(ScId(0), vec![]);
        assert!(matches!(h.claim_thunk(t, false), Claim::Run { .. }));
        // Second entrant also gets to run — the duplicated work window.
        assert!(matches!(h.claim_thunk(t, false), Claim::Run { .. }));
    }

    #[test]
    fn update_wakes_blocked_threads() {
        let mut h = Heap::new();
        let t = h.alloc_thunk(ScId(0), vec![]);
        h.claim_thunk(t, true);
        h.block_on(t, ThreadId(1));
        h.block_on(t, ThreadId(2));
        let v = h.int(99);
        let rep = h.update(t, v);
        assert_eq!(rep.woken, vec![ThreadId(1), ThreadId(2)]);
        assert!(!rep.duplicate);
        assert_eq!(h.expect_value(t).expect_int(), 99);
    }

    #[test]
    fn duplicate_update_detected() {
        let mut h = Heap::new();
        let t = h.alloc_thunk(ScId(0), vec![]);
        // Two threads claim lazily.
        h.claim_thunk(t, false);
        h.claim_thunk(t, false);
        let v1 = h.int(1);
        let v2 = h.int(1);
        assert!(!h.update(t, v1).duplicate);
        assert!(h.update(t, v2).duplicate);
        assert_eq!(h.stats().duplicate_updates, 1);
        assert_eq!(h.expect_value(t).expect_int(), 1);
    }

    #[test]
    fn claim_whnf_short_circuits() {
        let mut h = Heap::new();
        let v = h.int(5);
        assert_eq!(h.claim_thunk(v, true), Claim::Whnf);
    }

    #[test]
    fn update_self_is_noop() {
        let mut h = Heap::new();
        let v = h.int(5);
        let rep = h.update(v, v);
        assert!(rep.woken.is_empty() && !rep.duplicate);
    }

    #[test]
    #[should_panic(expected = "not a black hole")]
    fn block_on_value_panics() {
        let mut h = Heap::new();
        let v = h.int(5);
        h.block_on(v, ThreadId(0));
    }

    #[test]
    fn charge_transient_tracks_stats() {
        let mut h = Heap::new();
        h.charge_transient(1000);
        assert_eq!(h.stats().charged_words, 1000);
        assert_eq!(h.live_words(), 0);
    }
}
