//! The arena heap: allocation, indirection chasing, thunk entry and
//! update transitions.
//!
//! With [`Heap::enable_nurseries`] the heap additionally partitions
//! allocation into per-capability *nursery regions* plus a shared old
//! generation, maintaining a remembered set per nursery via write
//! barriers in [`Heap::alloc`] and [`Heap::update`] — the substrate for
//! independent per-capability minor collections (see
//! [`crate::gc::Collector::collect_minor`]).

use crate::cell::Cell;
use crate::noderef::{NodeRef, ScId};
use crate::value::Value;
use rph_trace::ThreadId;
use std::collections::BTreeSet;

/// Region tag of a cell: a nursery index, or [`OLD_REGION`] for the
/// shared old generation (also used before nurseries are enabled).
pub type RegionId = u16;

/// Sentinel region tag for the shared old generation.
pub const OLD_REGION: RegionId = RegionId::MAX;

/// Per-capability nursery bookkeeping, present only after
/// [`Heap::enable_nurseries`]. Every cell carries a region tag; each
/// nursery keeps a member list (the slots to sweep in a minor GC) and a
/// remembered set of *source* slots outside the region that hold
/// references into it.
#[derive(Debug)]
struct NurseryState {
    regions: usize,
    /// Region tag per arena slot (parallel to `Heap::cells`).
    tags: Vec<RegionId>,
    /// Arena slots currently tagged with each region, in allocation
    /// order. Entries whose tag no longer matches are stale and skipped.
    members: Vec<Vec<u32>>,
    /// Remembered set per region: slots (in any other region, incl.
    /// old gen) that held a reference into this region when the
    /// reference was written. `BTreeSet` for deterministic iteration.
    remsets: Vec<BTreeSet<u32>>,
    /// Live words currently resident in each nursery.
    region_words: Vec<u64>,
    /// Region new allocations are tagged with (`None` → old gen). The
    /// runtime points this at a capability's nursery for the duration
    /// of that capability's mutator slice.
    alloc_region: Option<RegionId>,
    /// Reusable scratch for the alloc-time write barrier.
    child_buf: Vec<NodeRef>,
}

/// Errors surfaced by heap operations.
#[derive(Debug, Clone, PartialEq)]
pub enum HeapError {
    /// An operation required normal-form data but met a thunk or black
    /// hole (e.g. Eden serialisation of unevaluated data).
    NotNormalForm(NodeRef),
    /// A freed cell was dereferenced — a runtime bug caught loudly.
    UseAfterFree(NodeRef),
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::NotNormalForm(r) => write!(f, "node {r} is not in normal form"),
            HeapError::UseAfterFree(r) => write!(f, "use after free of node {r}"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Outcome of entering a thunk via [`Heap::claim_thunk`].
#[derive(Debug, Clone, PartialEq)]
pub enum Claim {
    /// The caller now evaluates the thunk; here are its contents.
    /// Under eager black-holing the cell is already a `BlackHole`;
    /// under lazy black-holing it is still a `Thunk` (and another
    /// thread may claim it too — duplicate evaluation).
    Run { sc: ScId, args: Box<[NodeRef]> },
    /// The cell is already a value; no evaluation needed.
    Whnf,
    /// The cell is a black hole: someone else is evaluating it. The
    /// caller should block.
    Busy,
}

/// Cumulative allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Total words ever allocated as real graph nodes.
    pub allocated_words: u64,
    /// Total transient words charged by kernels (never materialised).
    pub charged_words: u64,
    /// Number of node allocations.
    pub allocations: u64,
    /// Number of thunk updates performed.
    pub updates: u64,
    /// Number of updates that found the node already updated
    /// (duplicate evaluation under lazy black-holing).
    pub duplicate_updates: u64,
    /// High-water mark of live words (sampled at each allocation).
    pub peak_live_words: u64,
    /// High-water mark of live cell count (sampled at each allocation).
    pub peak_live_cells: u64,
    /// Write-barrier hits: cross-region references recorded into a
    /// remembered set (0 unless nurseries are enabled).
    pub remset_records: u64,
}

/// A graph-reduction heap. One per program in GpH (shared by all
/// capabilities), one per PE in Eden.
#[derive(Debug, Default)]
pub struct Heap {
    cells: Vec<Cell>,
    free: Vec<u32>,
    /// Words occupied by live (non-`Free`) cells.
    live_words: u64,
    stats: HeapStats,
    /// Per-capability nursery bookkeeping (None until
    /// [`Heap::enable_nurseries`]).
    nursery: Option<NurseryState>,
}

impl Heap {
    pub fn new() -> Self {
        Heap::default()
    }

    /// Number of live (non-free) cells.
    pub fn live_cells(&self) -> usize {
        self.cells.len() - self.free.len()
    }

    /// Words occupied by live cells.
    pub fn live_words(&self) -> u64 {
        self.live_words
    }

    /// Arena capacity (live + freed slots).
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Allocation statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Charge transient allocation: `words` a Haskell mutator would
    /// have allocated and immediately discarded (list spines inside
    /// kernels). Affects GC *frequency* via the caller's
    /// [`crate::AllocArea`], not GC cost (copying GC only pays for live
    /// data).
    pub fn charge_transient(&mut self, words: u64) {
        self.stats.charged_words += words;
    }

    /// Allocate a cell, reusing a freed slot when available.
    ///
    /// With nurseries enabled the cell is tagged with the current
    /// allocation region, and the alloc-time half of the write barrier
    /// runs: any reference from the new cell into a *different* nursery
    /// is recorded in that nursery's remembered set. (References are
    /// only ever created here and in [`Heap::update`]; cells are
    /// otherwise immutable, which is the no-lost-reference argument —
    /// see DESIGN.md.)
    pub fn alloc(&mut self, cell: Cell) -> NodeRef {
        let words = cell.words();
        self.live_words += words;
        self.stats.allocated_words += words;
        self.stats.allocations += 1;
        let idx = if let Some(idx) = self.free.pop() {
            self.cells[idx as usize] = cell;
            idx
        } else {
            let idx = u32::try_from(self.cells.len()).expect("heap exceeds 2^32 cells");
            self.cells.push(cell);
            idx
        };
        self.stats.peak_live_words = self.stats.peak_live_words.max(self.live_words);
        self.stats.peak_live_cells = self
            .stats
            .peak_live_cells
            .max((self.cells.len() - self.free.len()) as u64);
        if self.nursery.is_some() {
            self.note_nursery_alloc(idx, words);
        }
        NodeRef(idx)
    }

    /// Nursery bookkeeping + alloc-time write barrier for a fresh cell.
    fn note_nursery_alloc(&mut self, idx: u32, words: u64) {
        let ns = self.nursery.as_mut().expect("nurseries enabled");
        let tag = ns.alloc_region.unwrap_or(OLD_REGION);
        if ns.tags.len() <= idx as usize {
            ns.tags.resize(idx as usize + 1, OLD_REGION);
        }
        ns.tags[idx as usize] = tag;
        if tag != OLD_REGION {
            ns.members[tag as usize].push(idx);
            ns.region_words[tag as usize] += words;
        }
        // Alloc-time write barrier: the new cell's children may live in
        // foreign nurseries; record the new cell as a remembered-set
        // source for each such nursery.
        let mut buf = std::mem::take(&mut ns.child_buf);
        buf.clear();
        self.cells[idx as usize].push_children(&mut buf);
        let ns = self.nursery.as_mut().expect("nurseries enabled");
        let mut records = 0;
        for &c in &buf {
            let ct = ns.tags.get(c.index()).copied().unwrap_or(OLD_REGION);
            if ct != OLD_REGION && ct != tag && ns.remsets[ct as usize].insert(idx) {
                records += 1;
            }
        }
        ns.child_buf = buf;
        self.stats.remset_records += records;
    }

    /// Allocate a WHNF value node.
    pub fn alloc_value(&mut self, v: Value) -> NodeRef {
        self.alloc(Cell::Value(v))
    }

    /// Allocate an integer node.
    pub fn int(&mut self, i: i64) -> NodeRef {
        self.alloc_value(Value::Int(i))
    }

    /// Allocate a thunk node: the suspended application `sc args`.
    pub fn alloc_thunk(&mut self, sc: ScId, args: impl Into<Box<[NodeRef]>>) -> NodeRef {
        self.alloc(Cell::Thunk {
            sc,
            args: args.into(),
        })
    }

    /// Read a cell (without resolving indirections).
    #[inline]
    pub fn get(&self, r: NodeRef) -> &Cell {
        &self.cells[r.index()]
    }

    /// Follow `Ind` chains to the underlying cell.
    #[inline]
    pub fn resolve(&self, mut r: NodeRef) -> NodeRef {
        loop {
            match &self.cells[r.index()] {
                Cell::Ind(next) => r = *next,
                _ => return r,
            }
        }
    }

    /// The value of `r` if it is (after indirections) in WHNF.
    pub fn whnf(&self, r: NodeRef) -> Option<&Value> {
        match self.get(self.resolve(r)) {
            Cell::Value(v) => Some(v),
            _ => None,
        }
    }

    /// The value of `r`, panicking if unevaluated (test/kernel helper
    /// for places where evaluation is known to have happened).
    pub fn expect_value(&self, r: NodeRef) -> &Value {
        self.whnf(r).unwrap_or_else(|| {
            panic!(
                "node {r} expected in WHNF, found {:?}",
                self.get(self.resolve(r))
            )
        })
    }

    /// Enter the (resolved) node `r` for evaluation.
    ///
    /// With `eager_blackhole` the thunk is atomically overwritten by a
    /// `BlackHole` so any second entrant gets [`Claim::Busy`]. Without
    /// it (GHC's lazy black-holing) the thunk is left in place — a
    /// second thread entering before the next context switch will also
    /// get [`Claim::Run`] and duplicate the work (paper §IV.A.3).
    pub fn claim_thunk(&mut self, r: NodeRef, eager_blackhole: bool) -> Claim {
        let r = self.resolve(r);
        match &self.cells[r.index()] {
            Cell::Value(_) => Claim::Whnf,
            Cell::BlackHole { .. } => Claim::Busy,
            Cell::Thunk { sc, args } => {
                let (sc, args) = (*sc, args.clone());
                if eager_blackhole {
                    self.blackhole(r);
                }
                Claim::Run { sc, args }
            }
            Cell::Ind(_) => unreachable!("resolve() returned an Ind"),
            Cell::Free => panic!("{}", HeapError::UseAfterFree(r)),
        }
    }

    /// Overwrite a thunk with a black hole (used directly by lazy
    /// black-holing at context-switch time). No-op unless the cell is a
    /// thunk.
    pub fn blackhole(&mut self, r: NodeRef) -> bool {
        let r = self.resolve(r);
        let cell = &mut self.cells[r.index()];
        if let Cell::Thunk { .. } = cell {
            let old = cell.words();
            *cell = Cell::BlackHole {
                blocked: Vec::new(),
            };
            // Black hole overwrites in place; live words shrink to the
            // 2-word header.
            self.live_words = self.live_words - old + 2;
            self.note_inplace_shrink(r, old, 2);
            true
        } else {
            false
        }
    }

    /// Keep per-region word accounting in step with an in-place
    /// overwrite that changed a cell's size from `old` to `new` words.
    fn note_inplace_shrink(&mut self, r: NodeRef, old: u64, new: u64) {
        if let Some(ns) = self.nursery.as_mut() {
            let tag = ns.tags.get(r.index()).copied().unwrap_or(OLD_REGION);
            if tag != OLD_REGION {
                let rw = &mut ns.region_words[tag as usize];
                *rw = *rw - old + new;
            }
        }
    }

    /// Record `thread` as blocked on black hole `r`.
    ///
    /// # Panics
    /// Panics if `r` is not a black hole — the scheduler must only
    /// block threads on cells it has just observed as busy.
    pub fn block_on(&mut self, r: NodeRef, thread: ThreadId) {
        let r = self.resolve(r);
        match &mut self.cells[r.index()] {
            Cell::BlackHole { blocked } => blocked.push(thread),
            other => panic!("block_on: node {r} is {other:?}, not a black hole"),
        }
    }

    /// Update node `r` with its computed result `result` (a node in
    /// WHNF). Returns the threads to wake. If another thread already
    /// updated `r` (lazy black-holing duplicate), the update is dropped
    /// and `duplicate` is flagged in the returned report.
    pub fn update(&mut self, r: NodeRef, result: NodeRef) -> UpdateReport {
        let r = self.resolve(r);
        let result = self.resolve(result);
        if r == result {
            // Updating a node with itself (already evaluated in place).
            self.stats.updates += 1;
            return UpdateReport {
                woken: Vec::new(),
                duplicate: false,
            };
        }
        let cell = &mut self.cells[r.index()];
        match cell {
            Cell::BlackHole { blocked } => {
                let woken = std::mem::take(blocked);
                let old = 2;
                *cell = Cell::Ind(result);
                self.live_words = self.live_words - old + 2;
                self.stats.updates += 1;
                self.note_update_barrier(r, result);
                UpdateReport {
                    woken,
                    duplicate: false,
                }
            }
            Cell::Thunk { .. } => {
                // Lazy black-holing: nobody blocked, overwrite quietly.
                let old = cell.words();
                *cell = Cell::Ind(result);
                self.live_words = self.live_words - old + 2;
                self.stats.updates += 1;
                self.note_inplace_shrink(r, old, 2);
                self.note_update_barrier(r, result);
                UpdateReport {
                    woken: Vec::new(),
                    duplicate: false,
                }
            }
            Cell::Value(_) | Cell::Ind(_) => {
                // Someone beat us to it: duplicate evaluation detected.
                self.stats.updates += 1;
                self.stats.duplicate_updates += 1;
                UpdateReport {
                    woken: Vec::new(),
                    duplicate: true,
                }
            }
            Cell::Free => panic!("{}", HeapError::UseAfterFree(r)),
        }
    }

    /// Update-time write barrier: an update writes `Ind(result)` into
    /// `r` — if `result` lives in a nursery `r` is not part of, record
    /// `r` as a remembered-set source for that nursery.
    fn note_update_barrier(&mut self, r: NodeRef, result: NodeRef) {
        if let Some(ns) = self.nursery.as_mut() {
            let target = ns.tags.get(result.index()).copied().unwrap_or(OLD_REGION);
            if target != OLD_REGION {
                let source = ns.tags.get(r.index()).copied().unwrap_or(OLD_REGION);
                if source != target && ns.remsets[target as usize].insert(r.index() as u32) {
                    self.stats.remset_records += 1;
                }
            }
        }
    }

    // ----- nursery API -----

    /// Partition future allocation into `regions` per-capability
    /// nurseries plus the shared old generation. Everything already on
    /// the heap is tagged old. Call once, before mutators run.
    pub fn enable_nurseries(&mut self, regions: usize) {
        assert!(
            (regions as u64) < OLD_REGION as u64,
            "too many nursery regions"
        );
        assert!(self.nursery.is_none(), "nurseries already enabled");
        self.nursery = Some(NurseryState {
            regions,
            tags: vec![OLD_REGION; self.cells.len()],
            members: vec![Vec::new(); regions],
            remsets: vec![BTreeSet::new(); regions],
            region_words: vec![0; regions],
            alloc_region: None,
            child_buf: Vec::new(),
        });
    }

    /// True once [`Heap::enable_nurseries`] has been called.
    pub fn nurseries_enabled(&self) -> bool {
        self.nursery.is_some()
    }

    /// Number of nursery regions (0 when disabled).
    pub fn nursery_regions(&self) -> usize {
        self.nursery.as_ref().map_or(0, |ns| ns.regions)
    }

    /// Direct subsequent allocations into nursery `region` (`None` →
    /// old gen). The runtime sets this to the running capability's
    /// region around each mutator slice.
    pub fn set_alloc_region(&mut self, region: Option<RegionId>) {
        let ns = self
            .nursery
            .as_mut()
            .expect("set_alloc_region without nurseries");
        if let Some(r) = region {
            assert!((r as usize) < ns.regions, "alloc region out of range");
        }
        ns.alloc_region = region;
    }

    /// Region tag of a cell (`OLD_REGION` when nurseries are disabled).
    pub fn region_of(&self, r: NodeRef) -> RegionId {
        self.nursery
            .as_ref()
            .and_then(|ns| ns.tags.get(r.index()).copied())
            .unwrap_or(OLD_REGION)
    }

    /// Live words currently resident in nursery `region`.
    pub fn nursery_words(&self, region: RegionId) -> u64 {
        self.nursery.as_ref().map_or(0, |ns| {
            ns.region_words.get(region as usize).copied().unwrap_or(0)
        })
    }

    /// Current remembered-set size of nursery `region`.
    pub fn remset_len(&self, region: RegionId) -> usize {
        self.nursery.as_ref().map_or(0, |ns| {
            ns.remsets.get(region as usize).map_or(0, |s| s.len())
        })
    }

    /// Live words in the shared old generation (live words minus all
    /// nursery-resident words). With nurseries disabled this is just
    /// [`Heap::live_words`].
    pub fn old_words(&self) -> u64 {
        let in_nurseries: u64 = self
            .nursery
            .as_ref()
            .map_or(0, |ns| ns.region_words.iter().sum());
        self.live_words - in_nurseries
    }

    // ----- internal access for the collector -----

    pub(crate) fn cells(&self) -> &[Cell] {
        &self.cells
    }

    pub(crate) fn free_cell(&mut self, idx: usize) {
        let words = self.cells[idx].words();
        self.live_words -= words;
        self.cells[idx] = Cell::Free;
        self.free.push(idx as u32);
        if let Some(ns) = self.nursery.as_mut() {
            if let Some(tag) = ns.tags.get_mut(idx) {
                if *tag != OLD_REGION {
                    ns.region_words[*tag as usize] -= words;
                    *tag = OLD_REGION;
                }
            }
        }
    }

    /// Promote a surviving nursery cell to the old generation: the
    /// slot keeps its identity (so remembered-set entries naming it
    /// stay valid), only its region tag and word accounting move.
    pub(crate) fn promote_cell(&mut self, idx: usize) {
        let words = self.cells[idx].words();
        let ns = self.nursery.as_mut().expect("promote without nurseries");
        let tag = ns.tags[idx];
        debug_assert_ne!(tag, OLD_REGION, "promoting an old-gen cell");
        ns.region_words[tag as usize] -= words;
        ns.tags[idx] = OLD_REGION;
    }

    /// Members of nursery `region` (may contain stale entries whose
    /// tag has since changed — callers must check `tags`).
    pub(crate) fn take_region_members(&mut self, region: RegionId) -> Vec<u32> {
        let ns = self.nursery.as_mut().expect("nurseries enabled");
        std::mem::take(&mut ns.members[region as usize])
    }

    /// Drain the remembered set of `region` (sorted, deterministic).
    pub(crate) fn take_remset(&mut self, region: RegionId) -> BTreeSet<u32> {
        let ns = self.nursery.as_mut().expect("nurseries enabled");
        std::mem::take(&mut ns.remsets[region as usize])
    }

    /// After a full (major) collection every survivor is old: retag all
    /// slots, clear member lists and remembered sets, zero per-region
    /// accounting. No-op when nurseries are disabled.
    pub(crate) fn reset_nurseries_after_major(&mut self) {
        if let Some(ns) = self.nursery.as_mut() {
            ns.tags.clear();
            ns.tags.resize(self.cells.len(), OLD_REGION);
            for m in &mut ns.members {
                m.clear();
            }
            for s in &mut ns.remsets {
                s.clear();
            }
            for w in &mut ns.region_words {
                *w = 0;
            }
        }
    }

    /// Test helper: is the slot freed?
    pub fn is_free(&self, r: NodeRef) -> bool {
        matches!(self.get(r), Cell::Free)
    }
}

/// Result of [`Heap::update`].
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateReport {
    /// Threads that were blocked on the updated black hole.
    pub woken: Vec<ThreadId>,
    /// True if the node had already been updated by another thread.
    pub duplicate: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_read() {
        let mut h = Heap::new();
        let a = h.int(42);
        assert_eq!(h.expect_value(a).expect_int(), 42);
        assert_eq!(h.live_cells(), 1);
        assert_eq!(h.live_words(), 2);
    }

    #[test]
    fn resolve_chases_ind_chains() {
        let mut h = Heap::new();
        let v = h.int(7);
        let i1 = h.alloc(Cell::Ind(v));
        let i2 = h.alloc(Cell::Ind(i1));
        assert_eq!(h.resolve(i2), v);
        assert_eq!(h.whnf(i2), Some(&Value::Int(7)));
    }

    #[test]
    fn eager_claim_blackholes() {
        let mut h = Heap::new();
        let t = h.alloc_thunk(ScId(0), vec![]);
        match h.claim_thunk(t, true) {
            Claim::Run { sc, .. } => assert_eq!(sc, ScId(0)),
            other => panic!("{other:?}"),
        }
        assert_eq!(h.claim_thunk(t, true), Claim::Busy);
    }

    #[test]
    fn lazy_claim_allows_duplicates() {
        let mut h = Heap::new();
        let t = h.alloc_thunk(ScId(0), vec![]);
        assert!(matches!(h.claim_thunk(t, false), Claim::Run { .. }));
        // Second entrant also gets to run — the duplicated work window.
        assert!(matches!(h.claim_thunk(t, false), Claim::Run { .. }));
    }

    #[test]
    fn update_wakes_blocked_threads() {
        let mut h = Heap::new();
        let t = h.alloc_thunk(ScId(0), vec![]);
        h.claim_thunk(t, true);
        h.block_on(t, ThreadId(1));
        h.block_on(t, ThreadId(2));
        let v = h.int(99);
        let rep = h.update(t, v);
        assert_eq!(rep.woken, vec![ThreadId(1), ThreadId(2)]);
        assert!(!rep.duplicate);
        assert_eq!(h.expect_value(t).expect_int(), 99);
    }

    #[test]
    fn duplicate_update_detected() {
        let mut h = Heap::new();
        let t = h.alloc_thunk(ScId(0), vec![]);
        // Two threads claim lazily.
        h.claim_thunk(t, false);
        h.claim_thunk(t, false);
        let v1 = h.int(1);
        let v2 = h.int(1);
        assert!(!h.update(t, v1).duplicate);
        assert!(h.update(t, v2).duplicate);
        assert_eq!(h.stats().duplicate_updates, 1);
        assert_eq!(h.expect_value(t).expect_int(), 1);
    }

    #[test]
    fn claim_whnf_short_circuits() {
        let mut h = Heap::new();
        let v = h.int(5);
        assert_eq!(h.claim_thunk(v, true), Claim::Whnf);
    }

    #[test]
    fn update_self_is_noop() {
        let mut h = Heap::new();
        let v = h.int(5);
        let rep = h.update(v, v);
        assert!(rep.woken.is_empty() && !rep.duplicate);
    }

    #[test]
    #[should_panic(expected = "not a black hole")]
    fn block_on_value_panics() {
        let mut h = Heap::new();
        let v = h.int(5);
        h.block_on(v, ThreadId(0));
    }

    #[test]
    fn charge_transient_tracks_stats() {
        let mut h = Heap::new();
        h.charge_transient(1000);
        assert_eq!(h.stats().charged_words, 1000);
        assert_eq!(h.live_words(), 0);
    }

    #[test]
    fn peak_stats_track_high_water_mark() {
        let mut h = Heap::new();
        let a = h.int(1);
        let _b = h.int(2);
        assert_eq!(h.stats().peak_live_words, 4);
        assert_eq!(h.stats().peak_live_cells, 2);
        // Freeing does not lower the peak.
        h.free_cell(a.index());
        h.int(3);
        assert_eq!(h.stats().peak_live_words, 4);
        assert_eq!(h.stats().peak_live_cells, 2);
    }

    #[test]
    fn nursery_tags_follow_alloc_region() {
        let mut h = Heap::new();
        let before = h.int(0);
        h.enable_nurseries(2);
        assert_eq!(h.region_of(before), OLD_REGION);
        h.set_alloc_region(Some(1));
        let a = h.int(1);
        assert_eq!(h.region_of(a), 1);
        assert_eq!(h.nursery_words(1), 2);
        h.set_alloc_region(None);
        let b = h.int(2);
        assert_eq!(h.region_of(b), OLD_REGION);
        assert_eq!(h.old_words(), h.live_words() - 2);
    }

    #[test]
    fn alloc_barrier_records_cross_region_refs() {
        let mut h = Heap::new();
        h.enable_nurseries(2);
        h.set_alloc_region(Some(0));
        let young = h.int(7);
        // A cell in region 1 referencing region 0 must land in region
        // 0's remembered set; a same-region reference must not.
        h.set_alloc_region(Some(1));
        h.alloc(Cell::Ind(young));
        assert_eq!(h.remset_len(0), 1);
        h.set_alloc_region(Some(0));
        h.alloc(Cell::Ind(young));
        assert_eq!(h.remset_len(0), 1, "same-region ref not remembered");
        assert_eq!(h.stats().remset_records, 1);
    }

    #[test]
    fn update_barrier_records_old_to_young_refs() {
        let mut h = Heap::new();
        let t = h.alloc_thunk(ScId(0), vec![]);
        h.enable_nurseries(1);
        h.claim_thunk(t, true);
        // Result allocated in the nursery, thunk lives in old gen: the
        // Ind written by the update is an old→young reference.
        h.set_alloc_region(Some(0));
        let v = h.int(9);
        h.update(t, v);
        assert_eq!(h.remset_len(0), 1);
        assert_eq!(h.stats().remset_records, 1);
    }

    #[test]
    fn blackhole_shrink_keeps_region_words_consistent() {
        let mut h = Heap::new();
        h.enable_nurseries(1);
        h.set_alloc_region(Some(0));
        let x = h.int(1);
        let t = h.alloc_thunk(ScId(0), vec![x, x, x]); // 5 words
        assert_eq!(h.nursery_words(0), 2 + 5);
        h.blackhole(t); // shrinks to 2 words in place
        assert_eq!(h.nursery_words(0), 2 + 2);
        assert_eq!(h.live_words(), 4);
        assert_eq!(h.old_words(), 0);
    }
}
