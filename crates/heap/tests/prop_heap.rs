//! Property tests for the heap: the collector keeps exactly the
//! reachable cells, and subgraph copying preserves structure and
//! sharing.

use proptest::prelude::*;
use rph_heap::gc::Collector;
use rph_heap::{copy_subgraph, Cell, Heap, NodeRef, ScId, Value};

/// A recipe for one heap node; indices refer to previously built nodes.
#[derive(Debug, Clone)]
enum NodeSpec {
    Int(i64),
    Nil,
    Cons { head: usize, tail: usize },
    Tuple(Vec<usize>),
    Array(u8),
    Thunk(Vec<usize>),
}

fn spec_strategy() -> impl Strategy<Value = NodeSpec> {
    prop_oneof![
        (-50i64..50).prop_map(NodeSpec::Int),
        Just(NodeSpec::Nil),
        (any::<usize>(), any::<usize>()).prop_map(|(head, tail)| NodeSpec::Cons { head, tail }),
        proptest::collection::vec(any::<usize>(), 2..4).prop_map(NodeSpec::Tuple),
        (0u8..10).prop_map(NodeSpec::Array),
        proptest::collection::vec(any::<usize>(), 0..3).prop_map(NodeSpec::Thunk),
    ]
}

/// Build a random heap graph; references always point backwards, so
/// the graph is a DAG with sharing.
fn build(heap: &mut Heap, specs: &[NodeSpec]) -> Vec<NodeRef> {
    let mut nodes: Vec<NodeRef> = Vec::new();
    for spec in specs {
        let pick = |i: usize, nodes: &[NodeRef], heap: &mut Heap| -> NodeRef {
            if nodes.is_empty() {
                heap.int(0)
            } else {
                nodes[i % nodes.len()]
            }
        };
        let n = match spec {
            NodeSpec::Int(i) => heap.int(*i),
            NodeSpec::Nil => heap.alloc_value(Value::Nil),
            NodeSpec::Cons { head, tail } => {
                let h = pick(*head, &nodes, heap);
                let t = pick(*tail, &nodes, heap);
                heap.alloc_value(Value::Cons(h, t))
            }
            NodeSpec::Tuple(fields) => {
                let fs: Vec<NodeRef> = fields.iter().map(|i| pick(*i, &nodes, heap)).collect();
                heap.alloc_value(Value::Tuple(fs.into()))
            }
            NodeSpec::Array(len) => {
                heap.alloc_value(Value::DArray((0..*len).map(|x| x as f64).collect()))
            }
            NodeSpec::Thunk(args) => {
                let aa: Vec<NodeRef> = args.iter().map(|i| pick(*i, &nodes, heap)).collect();
                heap.alloc_thunk(ScId(0), aa)
            }
        };
        nodes.push(n);
    }
    nodes
}

/// Reachable set computed independently of the collector.
fn reachable(heap: &Heap, roots: &[NodeRef]) -> std::collections::HashSet<NodeRef> {
    let mut seen = std::collections::HashSet::new();
    let mut stack: Vec<NodeRef> = roots.to_vec();
    let mut buf = Vec::new();
    while let Some(r) = stack.pop() {
        if !seen.insert(r) {
            continue;
        }
        buf.clear();
        heap.get(r).push_children(&mut buf);
        stack.extend(buf.iter().copied());
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After a collection, a cell is free iff it was unreachable.
    #[test]
    fn gc_keeps_exactly_the_reachable(
        specs in proptest::collection::vec(spec_strategy(), 1..60),
        root_picks in proptest::collection::vec(any::<usize>(), 0..4),
    ) {
        let mut heap = Heap::new();
        let nodes = build(&mut heap, &specs);
        let roots: Vec<NodeRef> = root_picks.iter().map(|i| nodes[i % nodes.len()]).collect();
        let live = reachable(&heap, &roots);
        let mut gc = Collector::new();
        let res = gc.collect(&mut heap, roots.clone());
        prop_assert_eq!(res.live_cells as usize, live.len());
        for n in &nodes {
            prop_assert_eq!(
                heap.is_free(*n),
                !live.contains(n),
                "node {} freed-ness mismatch", n
            );
        }
        // Idempotence: a second collection with the same roots frees
        // nothing more.
        let res2 = gc.collect(&mut heap, roots);
        prop_assert_eq!(res2.collected_cells, 0);
        prop_assert_eq!(res2.live_words, res.live_words);
    }

    /// Copying a random *normal-form* subgraph preserves its structure
    /// (compared via a canonical serialisation) and its sharing
    /// (distinct source cells → equally many distinct copies).
    #[test]
    fn copy_preserves_structure_and_sharing(
        specs in proptest::collection::vec(spec_strategy(), 1..40),
    ) {
        // Drop thunks: copy requires normal form.
        let specs: Vec<NodeSpec> = specs
            .into_iter()
            .map(|s| match s {
                NodeSpec::Thunk(_) => NodeSpec::Int(7),
                other => other,
            })
            .collect();
        let mut src = Heap::new();
        let nodes = build(&mut src, &specs);
        let root = *nodes.last().unwrap();
        let mut dst = Heap::new();
        let (copied, words) = copy_subgraph(&src, root, &mut dst).expect("NF copy");
        prop_assert!(words > 0);
        prop_assert_eq!(canon(&src, root), canon(&dst, copied));
        let src_cells = reachable(&src, &[root]).len();
        let dst_cells = reachable(&dst, &[copied]).len();
        prop_assert_eq!(src_cells, dst_cells, "sharing not preserved");
    }
}

/// Canonical string of a NF graph with sharing markers (first visit
/// prints structure; revisits print a back-reference index).
fn canon(heap: &Heap, root: NodeRef) -> String {
    fn go(
        heap: &Heap,
        r: NodeRef,
        ids: &mut std::collections::HashMap<NodeRef, usize>,
        out: &mut String,
    ) {
        let r = heap.resolve(r);
        if let Some(id) = ids.get(&r) {
            out.push_str(&format!("^{id}"));
            return;
        }
        let id = ids.len();
        ids.insert(r, id);
        match heap.get(r) {
            Cell::Value(Value::Int(i)) => out.push_str(&format!("i{i}")),
            Cell::Value(Value::Nil) => out.push_str("[]"),
            Cell::Value(Value::Cons(h, t)) => {
                out.push('(');
                go(heap, *h, ids, out);
                out.push(':');
                go(heap, *t, ids, out);
                out.push(')');
            }
            Cell::Value(Value::Tuple(fs)) => {
                out.push('<');
                for f in fs.iter() {
                    go(heap, *f, ids, out);
                    out.push(',');
                }
                out.push('>');
            }
            Cell::Value(Value::DArray(xs)) => out.push_str(&format!("a{}", xs.len())),
            other => out.push_str(&format!("?{other:?}")),
        }
    }
    let mut out = String::new();
    go(heap, root, &mut std::collections::HashMap::new(), &mut out);
    out
}
