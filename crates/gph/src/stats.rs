//! Aggregated per-run statistics for the GpH runtime.

use rph_trace::Time;

/// Counters accumulated by [`crate::GphRuntime`] during a run (cheaper
/// than deriving everything from the event trace, and available even
/// with tracing disabled).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GphStats {
    /// Sparks recorded by `par`.
    pub sparks_created: u64,
    /// Sparks dropped because a pool was full.
    pub sparks_overflowed: u64,
    /// Sparks converted to work on their own capability.
    pub sparks_run_local: u64,
    /// Sparks obtained by stealing (intra-node and cross-node
    /// together; `steal_local + steal_remote == sparks_stolen`).
    pub sparks_stolen: u64,
    /// Successful steal operations whose victim shared the thief's
    /// node (shared-memory steal, one spark each).
    pub steal_local: u64,
    /// Successful steal operations that crossed an inter-node link
    /// (batched: one spark to run plus extras into the thief's pool).
    pub steal_remote: u64,
    /// Words put on inter-node links (remote steal transfers, remote
    /// spark pushes, remote thread migrations; payload + envelope).
    /// Zero on a single-node topology.
    pub remote_words: u64,
    /// Sparks pushed to idle capabilities by the push-model scheduler.
    pub sparks_pushed: u64,
    /// Sparks found already evaluated when converted (fizzled).
    pub sparks_fizzled: u64,
    /// Failed steal attempts.
    pub steal_failures: u64,
    /// Lightweight threads created.
    pub threads_created: u64,
    /// Threads that blocked on black holes.
    pub blackhole_blocks: u64,
    /// Duplicate evaluations detected (lazy black-holing).
    pub duplicate_evals: u64,
    /// Virtual time wasted in duplicate evaluation.
    pub duplicate_work_wasted: Time,
    /// Stop-the-world collections.
    pub gcs: u64,
    /// Virtual time capabilities spent waiting for the world to stop
    /// (GC request → all capabilities parked), summed over
    /// capabilities. This is the exact quantity §IV.A.1's improved
    /// barrier synchronisation targets.
    pub gc_barrier_wait: Time,
    /// Virtual time capabilities spent in stop-the-world collections
    /// proper (excluding the barrier wait), summed over capabilities.
    pub gc_pause: Time,
    /// Live words after the last collection.
    pub last_live_words: u64,
    /// Total words reclaimed (stop-the-world and minor collections).
    pub collected_words: u64,
    /// Context switches performed.
    pub ctx_switches: u64,
    /// Surplus runnable threads pushed to idle capabilities.
    pub threads_migrated: u64,
    /// Runnable threads stolen by idle capabilities (the §IV.A.2
    /// future-work extension; 0 unless `thread_stealing` is on).
    pub threads_stolen: u64,
    /// Independent local nursery collections (semi-distributed and
    /// per-capability-nursery models).
    pub local_gcs: u64,
    /// Virtual time spent in independent minor collections (one
    /// capability each — never a world stop, so not part of
    /// [`GphStats::gc_stopped_time`]).
    pub minor_gc_time: Time,
    /// Words promoted from nurseries to the old generation by minor
    /// collections (the *measured* survivors whose evacuation the
    /// minor pause is priced on).
    pub promoted_words: u64,
    /// Grey-set steals between GC threads during parallel major
    /// collections (per-capability-nursery model only).
    pub grey_steals: u64,
}

impl GphStats {
    /// Total virtual time all capabilities spent stopped for GC
    /// (barrier wait + collection), summed over capabilities.
    pub fn gc_stopped_time(&self) -> Time {
        self.gc_barrier_wait + self.gc_pause
    }
}
