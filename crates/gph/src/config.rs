//! Runtime configuration: the paper's optimisation ladder as flags.

use rph_heap::AllocArea;
use rph_sim::{Costs, Topology};

/// How sparks move between capabilities (§IV.A.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparkPolicy {
    /// GHC 6.8's scheme: the scheduler, when it happens to run,
    /// *pushes* surplus sparks to idle capabilities. "There might be a
    /// significant delay between the work being created and it being
    /// made available for execution."
    Push,
    /// The paper's optimisation: spark pools are work-stealing deques;
    /// idle capabilities *pull*. "Eliminates any hand-shaking when
    /// sharing work."
    Steal,
}

/// When a thunk under evaluation is marked (§IV.A.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlackHoling {
    /// GHC's default: thunks are only black-holed at context-switch
    /// time, leaving a window for duplicate parallel evaluation.
    Lazy,
    /// Mark every thunk on entry; second entrants block immediately.
    Eager,
}

/// Heap organisation for garbage collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcModel {
    /// GHC 6.x: one shared heap, every collection stops the world
    /// (the configuration the paper measures).
    StopTheWorld,
    /// The paper's §VI proposal (after Doligez & Leroy): capabilities
    /// collect their own nurseries *independently*, and only every
    /// `global_every`-th collection (per capability) joins a global
    /// stop-the-world collection of the shared heap. "The overhead can
    /// be reduced by using a semi-distributed heap model."
    ///
    /// NOTE: this mode is a *cost fiction* kept for comparison — its
    /// local collections reclaim nothing and price their pause off
    /// global heap size. [`GcModel::PerCapNurseries`] is the real
    /// mechanism.
    SemiDistributed { global_every: u32 },
    /// Real per-capability nurseries (after *Garbage Collection for
    /// Multicore NUMA Machines*): each capability allocates into a
    /// private region; write barriers record cross-region references
    /// in per-region remembered sets; an exhausted nursery is collected
    /// *independently* (survivors promoted to the shared old
    /// generation, pause proportional to measured survivors — no
    /// barrier, no other capability involved). When the old generation
    /// has grown past a threshold, a stop-the-world major collection
    /// runs with its mark phase parallelised across the capabilities'
    /// GC threads (grey-set work stealing; pause = slowest GC thread).
    PerCapNurseries,
}

/// How sparks become running work (§IV.A.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparkExec {
    /// Create (and destroy) a fresh lightweight thread per spark.
    ThreadPerSpark,
    /// One scheduler-created *spark thread* per capability runs sparks
    /// in a loop until none remain anywhere, then exits.
    SparkThread,
}

/// Full configuration of a GpH run.
#[derive(Debug, Clone)]
pub struct GphConfig {
    /// Number of capabilities (= simulated cores; GHC `-N`).
    pub caps: usize,
    /// Per-capability allocation area in words (GHC `-A`; default
    /// 0.5 MB ÷ 8-byte words). The "big allocation area" rows of
    /// Figs. 1–4 multiply this by [`Self::BIG_AREA_FACTOR`].
    pub alloc_area_words: u64,
    /// Allocation checkpoint quantum in words (GHC: 4 kB blocks).
    pub checkpoint_words: u64,
    /// Improved stop-the-world barrier (cheaper per-capability
    /// handshake) instead of the original polled handshake.
    pub gc_sync_improved: bool,
    /// Spark distribution policy.
    pub spark_policy: SparkPolicy,
    /// Black-holing policy.
    pub black_holing: BlackHoling,
    /// Spark execution policy.
    pub spark_exec: SparkExec,
    /// GC organisation (stop-the-world, or the §VI semi-distributed
    /// future-work model).
    pub gc_model: GcModel,
    /// Future-work extension (§IV.A.2: "Work pulling could also be
    /// applied to threads"): idle capabilities steal runnable threads,
    /// not just sparks.
    pub thread_stealing: bool,
    /// Machine shape: which node each capability lives on. Defaults to
    /// one shared-memory node holding all capabilities — the paper's
    /// flat machine, bit-identical to the pre-topology runtime. Under
    /// a multi-node cluster, steals and pushes that cross nodes are
    /// priced over inter-node links ([`rph_sim::LinkClass`]).
    pub topology: Topology,
    /// Hierarchical victim selection under a multi-node topology:
    /// sweep the thief's own node first, then remote nodes with
    /// *batched* steals (mirroring the native pool's
    /// `steal_batch_and_pop`). Off = flat stealing: one seeded
    /// permutation over all victims, single-spark steals everywhere —
    /// the ablation baseline. Irrelevant on a single node.
    pub hier_stealing: bool,
    /// Spark pool capacity per capability (GHC: 4096 after the
    /// work-stealing rewrite; overflowing sparks are dropped).
    pub spark_pool_cap: usize,
    /// Thread time-slice in work units before the scheduler rotates
    /// the run queue (GHC `-C`, ~20 ms default; checked only at
    /// allocation checkpoints, as in GHC).
    pub time_slice: u64,
    /// Simulator slice bound (how much virtual time one capability may
    /// advance before control returns to the event loop). Affects
    /// fidelity of cross-capability interleavings, not semantics.
    pub sim_slice: u64,
    /// Overhead cost model.
    pub costs: Costs,
    /// RNG seed (steal-victim choices).
    pub seed: u64,
    /// Record a full event trace (timeline diagrams). Counters are
    /// kept either way.
    pub trace: bool,
}

impl GphConfig {
    /// Factor the paper's "big allocation area" rows use (0.5 MB →
    /// 8 MB, matching the text's "massive effect" observation).
    pub const BIG_AREA_FACTOR: u64 = 16;

    /// GHC 6.9 out-of-the-box (Fig. 1 row 1: "GpH in plain GHC-6.9"):
    /// small nursery, original barrier, push-model spark distribution,
    /// lazy black-holing, thread per spark.
    pub fn ghc69_plain(caps: usize) -> Self {
        GphConfig {
            caps,
            alloc_area_words: AllocArea::DEFAULT_AREA_WORDS,
            checkpoint_words: AllocArea::DEFAULT_CHECKPOINT_WORDS,
            gc_sync_improved: false,
            spark_policy: SparkPolicy::Push,
            black_holing: BlackHoling::Lazy,
            spark_exec: SparkExec::ThreadPerSpark,
            gc_model: GcModel::StopTheWorld,
            thread_stealing: false,
            topology: Topology::single_node(caps),
            hier_stealing: true,
            spark_pool_cap: 4096,
            time_slice: 10_000_000, // 10 ms (the RTS timer tick)
            sim_slice: 100_000,     // 100 µs DES granularity
            costs: Costs::default(),
            seed: 0x9E37,
            trace: true,
        }
    }

    /// Fig. 1 row 2: plain + big allocation area.
    pub fn with_big_alloc_area(mut self) -> Self {
        self.alloc_area_words = AllocArea::DEFAULT_AREA_WORDS * Self::BIG_AREA_FACTOR;
        self
    }

    /// Fig. 1 row 3: + improved GC barrier synchronisation.
    pub fn with_improved_gc_sync(mut self) -> Self {
        self.gc_sync_improved = true;
        self
    }

    /// Fig. 1 row 4: + work stealing for sparks (includes the spark
    /// thread of §IV.A.4, which landed together with the stealing
    /// rewrite).
    pub fn with_work_stealing(mut self) -> Self {
        self.spark_policy = SparkPolicy::Steal;
        self.spark_exec = SparkExec::SparkThread;
        self
    }

    /// §IV.A.3 / Fig. 5: eager black-holing.
    pub fn with_eager_blackholing(mut self) -> Self {
        self.black_holing = BlackHoling::Eager;
        self
    }

    /// §VI future work: the semi-distributed heap model — local
    /// nursery collections with a global stop-the-world collection
    /// only every `global_every` local ones.
    pub fn with_semi_distributed_heap(mut self, global_every: u32) -> Self {
        assert!(global_every >= 1);
        self.gc_model = GcModel::SemiDistributed { global_every };
        self
    }

    /// §IV.A.2 future work: steal runnable threads as well as sparks.
    pub fn with_thread_stealing(mut self) -> Self {
        self.thread_stealing = true;
        self
    }

    /// Real per-capability nurseries + parallel major GC (ROADMAP
    /// item 1): independent minor collections per capability, global
    /// collections only when the old generation has grown, with the
    /// mark phase spread over parallel GC threads.
    pub fn with_per_cap_nurseries(mut self) -> Self {
        self.gc_model = GcModel::PerCapNurseries;
        self
    }

    /// Convenience: the four Fig. 1 GpH rows in order.
    pub fn fig1_ladder(caps: usize) -> [(&'static str, GphConfig); 4] {
        [
            ("GpH in plain GHC-6.9", Self::ghc69_plain(caps)),
            (
                "GpH, big allocation area",
                Self::ghc69_plain(caps).with_big_alloc_area(),
            ),
            (
                "GpH, above + improved GC synchronisation",
                Self::ghc69_plain(caps)
                    .with_big_alloc_area()
                    .with_improved_gc_sync(),
            ),
            (
                "GpH, above + work stealing for sparks",
                Self::ghc69_plain(caps)
                    .with_big_alloc_area()
                    .with_improved_gc_sync()
                    .with_work_stealing(),
            ),
        ]
    }

    /// Model a cluster of `nodes` shared-memory nodes with
    /// `cores_per_node` capabilities each (must multiply out to
    /// [`Self::caps`]). Capability `i` lives on node
    /// `i / cores_per_node`; steals and pushes crossing nodes pay
    /// inter-node link costs.
    pub fn with_topology(mut self, nodes: usize, cores_per_node: usize) -> Self {
        assert_eq!(
            nodes * cores_per_node,
            self.caps,
            "topology must cover exactly the configured capabilities"
        );
        self.topology = Topology::cluster(nodes, cores_per_node);
        self
    }

    /// Disable hierarchical victim selection (the topology-ablation
    /// baseline): victims are swept in one flat seeded permutation and
    /// every steal moves a single spark, even across nodes.
    pub fn with_flat_stealing(mut self) -> Self {
        self.hier_stealing = false;
        self
    }

    /// Disable event collection (keep counters) — for big sweeps.
    pub fn without_trace(mut self) -> Self {
        self.trace = false;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether eager black-holing is on.
    pub fn eager_blackhole(&self) -> bool {
        self.black_holing == BlackHoling::Eager
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_cumulative() {
        let l = GphConfig::fig1_ladder(8);
        assert_eq!(l[0].1.spark_policy, SparkPolicy::Push);
        assert!(l[1].1.alloc_area_words > l[0].1.alloc_area_words);
        assert!(l[2].1.gc_sync_improved && !l[1].1.gc_sync_improved);
        assert_eq!(l[3].1.spark_policy, SparkPolicy::Steal);
        assert_eq!(l[3].1.spark_exec, SparkExec::SparkThread);
        // Black-holing stays lazy through the ladder (Fig. 5 varies it
        // separately).
        for (_, c) in &l {
            assert_eq!(c.black_holing, BlackHoling::Lazy);
        }
    }

    #[test]
    fn builder_chaining() {
        let c = GphConfig::ghc69_plain(4)
            .with_eager_blackholing()
            .with_work_stealing()
            .without_trace()
            .with_seed(7);
        assert!(c.eager_blackhole());
        assert_eq!(c.seed, 7);
        assert!(!c.trace);
        assert_eq!(c.caps, 4);
    }
}
