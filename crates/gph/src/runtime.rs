//! The GpH runtime: capabilities, spark scheduling, and the
//! stop-the-world GC barrier, as a deterministic discrete-event
//! simulation.
//!
//! The event loop always advances the capability with the smallest
//! virtual clock, so cross-capability interactions (steals, pushes,
//! wake-ups, the GC barrier) are causally consistent to within one
//! simulator slice ([`crate::GphConfig::sim_slice`], default 100 µs).

use crate::config::{BlackHoling, GcModel, GphConfig, SparkExec, SparkPolicy};
use crate::stats::GphStats;
use rph_deque::DetDeque;
use rph_heap::gc::Collector;
use rph_heap::{Heap, NodeRef, ParMarkCosts, RegionId};
use rph_machine::{Machine, Program, RunCtx, StopReason};
use rph_sim::{DetRng, LinkClass};
use rph_trace::{CapId, EventKind, State, ThreadId, Time, Tracer};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// A lightweight thread (GHC: TSO).
struct Tso {
    machine: Machine,
    /// True for the dedicated spark-running thread of §IV.A.4.
    spark_thread: bool,
    /// When this thread last started running (time-slice accounting).
    started: Time,
}

/// One capability: a virtual core with its own allocation area, run
/// queue and spark pool, sharing the program-wide heap.
struct Cap {
    id: CapId,
    clock: Time,
    area: rph_heap::AllocArea,
    run_q: VecDeque<Tso>,
    current: Option<Tso>,
    sparks: DetDeque<NodeRef>,
    /// `Some(t)`: parked at the GC barrier since `t`.
    stopped_for_gc: Option<Time>,
    /// Last traced state (to emit transitions only).
    last_state: Option<State>,
    /// Local collections since the last global one (semi-distributed
    /// heap model).
    locals_since_global: u32,
}

impl Cap {
    fn has_local_work(&self) -> bool {
        self.current.is_some() || !self.run_q.is_empty()
    }
}

/// An in-flight stop-the-world request.
struct GcPhase {
    request_time: Time,
}

/// Result of a completed run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The WHNF result of the main thread.
    pub result: NodeRef,
    /// Virtual makespan: the main capability's clock at main-thread
    /// completion (GHC exits when `main` finishes).
    pub elapsed: Time,
    /// Runtime counters.
    pub stats: GphStats,
    /// The event trace (empty if tracing was disabled).
    pub tracer: Tracer,
}

/// The shared-heap GpH runtime.
pub struct GphRuntime {
    program: Arc<Program>,
    config: GphConfig,
    heap: Heap,
    collector: Collector,
    caps: Vec<Cap>,
    /// Threads blocked on black holes, by thread id. A `BTreeMap` so
    /// every iteration (notably GC-root gathering) visits threads in
    /// thread-id order — `HashMap` iteration order varies run-to-run,
    /// which leaked allocation-order nondeterminism into mark–sweep
    /// root order and undermined the byte-identical-trace guarantee.
    blocked: BTreeMap<ThreadId, Tso>,
    tracer: Tracer,
    rng: DetRng,
    stats: GphStats,
    next_tid: u64,
    gc: Option<GcPhase>,
    /// Extra GC roots (the entry node, and anything a caller pins).
    extra_roots: Vec<NodeRef>,
    /// Old-generation live words at the end of the last major
    /// collection (per-capability-nursery model: the next major
    /// triggers when the old gen has grown well past this).
    last_major_live: u64,
    /// Reusable buffer for steal-victim permutations.
    victim_buf: Vec<usize>,
}

impl GphRuntime {
    pub fn new(program: Arc<Program>, config: GphConfig) -> Self {
        assert!(config.caps >= 1, "need at least one capability");
        let caps = (0..config.caps)
            .map(|i| Cap {
                id: CapId(i as u32),
                clock: 0,
                area: rph_heap::AllocArea::new(config.alloc_area_words, config.checkpoint_words),
                run_q: VecDeque::new(),
                current: None,
                sparks: DetDeque::new(config.spark_pool_cap),
                stopped_for_gc: None,
                last_state: None,
                locals_since_global: 0,
            })
            .collect();
        let tracer = if config.trace {
            Tracer::new(config.caps)
        } else {
            Tracer::disabled(config.caps)
        };
        let mut heap = Heap::new();
        if config.gc_model == GcModel::PerCapNurseries {
            heap.enable_nurseries(config.caps);
        }
        GphRuntime {
            program,
            heap,
            collector: Collector::new(),
            caps,
            blocked: BTreeMap::new(),
            tracer,
            rng: DetRng::new(config.seed),
            stats: GphStats::default(),
            next_tid: 0,
            gc: None,
            extra_roots: Vec::new(),
            last_major_live: 0,
            victim_buf: Vec::new(),
            config,
        }
    }

    /// The shared heap (for building entry graphs and reading results).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable heap access for building the entry graph.
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// Pin an extra GC root for the duration of the run.
    pub fn pin_root(&mut self, r: NodeRef) {
        self.extra_roots.push(r);
    }

    /// Run the program: build the entry graph with `build`, then force
    /// it to WHNF on capability 0 as the main thread, scheduling sparks
    /// across all capabilities until main finishes.
    pub fn run(&mut self, build: impl FnOnce(&mut Heap) -> NodeRef) -> Result<RunOutcome, String> {
        let entry = build(&mut self.heap);
        self.extra_roots.push(entry);
        let main_tid = self.fresh_tid();
        let main = Tso {
            machine: Machine::enter(main_tid, entry),
            spark_thread: false,
            started: 0,
        };
        self.stats.threads_created += 1;
        self.tracer
            .record(CapId(0), 0, EventKind::ThreadCreated { thread: main_tid });
        self.caps[0].run_q.push_back(main);

        loop {
            // Complete a pending GC once every capability is parked.
            if self.gc.is_some() && self.caps.iter().all(|c| c.stopped_for_gc.is_some()) {
                self.perform_gc();
                continue;
            }
            // Advance the lowest-clock capability that is not parked.
            let Some(idx) = self
                .caps
                .iter()
                .enumerate()
                .filter(|(_, c)| c.stopped_for_gc.is_none())
                .min_by_key(|(i, c)| (c.clock, *i))
                .map(|(i, _)| i)
            else {
                return Err("all capabilities parked with no GC pending".into());
            };
            if let Some(result) = self.advance(idx, main_tid)? {
                let elapsed = self.caps[idx].clock;
                // Close the trace: every capability goes idle at its
                // current clock, and the main capability's end time
                // dominates the timeline.
                for i in 0..self.caps.len() {
                    let t = self.caps[i].clock.max(elapsed);
                    self.caps[i].clock = t;
                    self.set_state(i, State::Idle);
                }
                let tracer = std::mem::replace(&mut self.tracer, Tracer::disabled(0));
                return Ok(RunOutcome {
                    result,
                    elapsed,
                    stats: self.stats.clone(),
                    tracer,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Event-loop pieces
    // ------------------------------------------------------------------

    /// Advance one capability. Returns `Some(result)` when the main
    /// thread finished.
    fn advance(&mut self, idx: usize, main_tid: ThreadId) -> Result<Option<NodeRef>, String> {
        // If a GC is pending and this capability has no running thread,
        // it parks at the barrier immediately (idle capabilities yield
        // straight away; only mutating threads delay to a checkpoint).
        if self.gc.is_some() && self.caps[idx].current.is_none() {
            self.park_for_gc(idx);
            return Ok(None);
        }

        if self.caps[idx].current.is_none() && !self.ensure_work(idx) {
            // Idle: wait for pushes, wakes or new sparks.
            self.set_state(idx, State::Idle);
            self.caps[idx].clock += self.config.costs.idle_backoff;
            return Ok(None);
        }

        // Run the current thread for one simulator slice. Under the
        // per-capability-nursery model, everything the mutator
        // allocates in this slice lands in this capability's region
        // (this covers both `RunCtx::alloc` and direct kernel
        // allocations — the region is heap state, not a ctx argument).
        self.set_state(idx, State::Running);
        if self.heap.nurseries_enabled() {
            self.heap.set_alloc_region(Some(idx as RegionId));
        }
        let cap = &mut self.caps[idx];
        let mut tso = cap.current.take().expect("ensured above");
        let mut ctx = RunCtx::new(
            &self.program,
            &mut self.heap,
            &mut cap.area,
            self.config.black_holing == BlackHoling::Eager,
        );
        let slice = tso.machine.run(&mut ctx, self.config.sim_slice);
        let sparks = std::mem::take(&mut ctx.sparks);
        let woken = std::mem::take(&mut ctx.woken);
        let dups = std::mem::take(&mut ctx.duplicate_work);
        drop(ctx);
        self.caps[idx].clock += slice.cost;
        let now = self.caps[idx].clock;

        // Sparks created in this slice go to the local pool.
        for s in sparks {
            self.stats.sparks_created += 1;
            if self.caps[idx].sparks.push(s) {
                self.tracer
                    .record(self.caps[idx].id, now, EventKind::SparkCreated);
            } else {
                self.stats.sparks_overflowed += 1;
                self.tracer
                    .record(self.caps[idx].id, now, EventKind::SparkOverflow);
            }
        }
        // Threads unblocked by updates move to this capability's queue.
        for tid in woken {
            if let Some(mut w) = self.blocked.remove(&tid) {
                w.machine.wake();
                w.started = now;
                self.tracer.record(
                    self.caps[idx].id,
                    now,
                    EventKind::WokenFromBlackHole { thread: tid },
                );
                self.caps[idx].run_q.push_back(w);
            }
        }
        for wasted in dups {
            self.stats.duplicate_evals += 1;
            self.stats.duplicate_work_wasted += wasted;
            self.tracer
                .record(self.caps[idx].id, now, EventKind::DuplicateWork { wasted });
        }
        // Updates may have woken a batch of threads onto this
        // capability; both GHC runtimes push surplus threads to idle
        // capabilities actively (§IV.A.2).
        self.balance_threads(idx);

        match slice.stop {
            StopReason::FuelExhausted | StopReason::Sparked => {
                // Not a scheduling point; keep the thread installed.
                // (`Sparked` just flushed fresh sparks to the pool so
                // thieves can see them promptly.)
                self.caps[idx].current = Some(tso);
            }
            StopReason::Checkpoint => {
                self.caps[idx].current = Some(tso);
                self.scheduler_checkpoint(idx);
            }
            StopReason::Blocked(node) => {
                let tid = tso.machine.tid();
                self.stats.blackhole_blocks += 1;
                self.tracer.record(
                    self.caps[idx].id,
                    now,
                    EventKind::BlockedOnBlackHole { thread: tid },
                );
                // Suspension is a context switch: under lazy black-holing
                // the suspended stack's thunks are marked now.
                if self.config.black_holing == BlackHoling::Lazy {
                    tso.machine.blackhole_update_frames(&mut self.heap);
                }
                self.heap.block_on(node, tid);
                self.blocked.insert(tid, tso);
                self.caps[idx].clock += self.config.costs.ctx_switch;
                self.stats.ctx_switches += 1;
                if self.caps[idx].run_q.is_empty() {
                    self.set_state(idx, State::Blocked);
                }
            }
            StopReason::Finished(result) => {
                let tid = tso.machine.tid();
                self.tracer.record(
                    self.caps[idx].id,
                    now,
                    EventKind::ThreadFinished { thread: tid },
                );
                if tid == main_tid {
                    return Ok(Some(result));
                }
                // §IV.A.4: a spark thread keeps running sparks unless
                // higher-priority threads are waiting.
                if tso.spark_thread
                    && self.config.spark_exec == SparkExec::SparkThread
                    && self.caps[idx].run_q.is_empty()
                {
                    if let Some(node) = self.obtain_spark(idx) {
                        self.caps[idx].clock += self.config.costs.spark_fetch;
                        tso.machine = Machine::enter(tid, node);
                        tso.started = self.caps[idx].clock;
                        self.caps[idx].current = Some(tso);
                    }
                }
                // Otherwise the thread simply dies.
            }
            StopReason::Error(e) => return Err(e),
        }
        Ok(None)
    }

    /// Give the capability something to run. Returns false if idle.
    fn ensure_work(&mut self, idx: usize) -> bool {
        debug_assert!(self.caps[idx].current.is_none());
        if self.ensure_work_from_queue(idx) {
            return true;
        }
        if self.config.thread_stealing
            && self.config.spark_policy == SparkPolicy::Steal
            && self.caps.len() > 1
            && self.all_spark_pools_empty()
            && self.steal_thread(idx)
        {
            // The stolen thread is installed by the run-queue branch on
            // the next visit.
            return self.ensure_work_from_queue(idx);
        }
        if let Some(node) = self.obtain_spark(idx) {
            let cost = self.config.costs.thread_create;
            self.caps[idx].clock += cost;
            let tid = self.fresh_tid();
            self.stats.threads_created += 1;
            let now = self.caps[idx].clock;
            self.tracer.record(
                self.caps[idx].id,
                now,
                EventKind::ThreadCreated { thread: tid },
            );
            let tso = Tso {
                machine: Machine::enter(tid, node),
                spark_thread: self.config.spark_exec == SparkExec::SparkThread,
                started: now,
            };
            self.caps[idx].current = Some(tso);
            return true;
        }
        false
    }

    /// Take a runnable spark: from the local pool first, then (under
    /// the stealing policy) from random victims. Fizzled sparks are
    /// discarded on the way.
    fn obtain_spark(&mut self, idx: usize) -> Option<NodeRef> {
        // Local pool: the owner takes the newest spark (bottom end).
        while let Some(s) = self.caps[idx].sparks.pop() {
            if self.heap.whnf(s).is_none() {
                self.stats.sparks_run_local += 1;
                let now = self.caps[idx].clock;
                self.tracer
                    .record(self.caps[idx].id, now, EventKind::SparkRunLocal);
                return Some(s);
            }
            self.stats.sparks_fizzled += 1;
            let now = self.caps[idx].clock;
            self.tracer
                .record(self.caps[idx].id, now, EventKind::SparkFizzled);
        }
        if self.config.spark_policy != SparkPolicy::Steal || self.caps.len() < 2 {
            return None;
        }
        // Steal sweep: probe every other capability exactly once, in a
        // seeded-random permutation (the shared `rph_sim::sweep`
        // contract, mirroring `crates/native`'s `VictimPicker`).
        // Independent per-probe draws could revisit one victim and
        // skip others entirely, inflating `steal_failures` and missing
        // available work. Under a multi-node topology the sweep visits
        // the thief's own node first; remote probes pay the inter-node
        // link latency on top of the CAS cost.
        let topo = self.config.topology;
        self.victim_sweep(idx);
        for k in 0..self.victim_buf.len() {
            let victim = self.victim_buf[k];
            let link = topo.link(idx, victim);
            self.caps[idx].clock += self.config.costs.steal_attempt;
            if link == LinkClass::Inter {
                self.caps[idx].clock += self.config.costs.link_latency(LinkClass::Inter);
            }
            if link == LinkClass::Inter && self.config.hier_stealing {
                if let Some(s) = self.steal_remote_batch(idx, victim) {
                    return Some(s);
                }
            } else {
                // Shared-memory steal (or the flat-stealing ablation
                // baseline): one spark per successful CAS, as in GHC.
                while let Some(s) = self.caps[victim].sparks.steal() {
                    if link == LinkClass::Inter {
                        // Even a single spark crosses the wire packed.
                        let words = self
                            .config
                            .costs
                            .link_words(LinkClass::Inter, self.config.costs.steal_pack_words(1));
                        self.caps[idx].clock += self.config.costs.link_wire_cost(
                            LinkClass::Inter,
                            self.config.costs.steal_pack_words(1),
                        );
                        self.stats.remote_words += words;
                        if self.heap.whnf(s).is_none() {
                            self.count_steal(idx, victim, link, 0, words);
                            return Some(s);
                        }
                    } else if self.heap.whnf(s).is_none() {
                        self.count_steal(idx, victim, link, 0, 0);
                        return Some(s);
                    }
                    self.stats.sparks_fizzled += 1;
                }
            }
            self.stats.steal_failures += 1;
        }
        None
    }

    /// A batched cross-node steal from `victim` (mirroring the native
    /// pool's `steal_batch_and_pop`): take up to half the victim's
    /// pool, capped at [`Self::REMOTE_BATCH_CAP`], in one transfer —
    /// one message envelope, one wire crossing. The first live spark
    /// is returned to run; the rest land in the thief's own pool,
    /// where node-local peers can steal them over cheap links.
    fn steal_remote_batch(&mut self, idx: usize, victim: usize) -> Option<NodeRef> {
        let avail = self.caps[victim].sparks.len();
        if avail == 0 {
            return None;
        }
        let take = (avail / 2).clamp(1, Self::REMOTE_BATCH_CAP);
        let mut chosen = None;
        let mut moved = 0u64;
        for _ in 0..take {
            let Some(s) = self.caps[victim].sparks.steal() else {
                break;
            };
            if self.heap.whnf(s).is_some() {
                self.stats.sparks_fizzled += 1;
            } else if chosen.is_none() {
                chosen = Some(s);
            } else {
                moved += 1;
                self.caps[idx].sparks.push(s);
            }
        }
        // The packed graph crossed the wire whether or not anything in
        // it was still unevaluated.
        let pack = self.config.costs.steal_pack_words(take as u64);
        let words = self.config.costs.link_words(LinkClass::Inter, pack);
        self.caps[idx].clock += self.config.costs.link_wire_cost(LinkClass::Inter, pack);
        self.stats.remote_words += words;
        if chosen.is_some() {
            self.count_steal(idx, victim, LinkClass::Inter, moved, words);
        }
        chosen
    }

    /// Bookkeeping for one successful steal operation.
    fn count_steal(&mut self, idx: usize, victim: usize, link: LinkClass, moved: u64, words: u64) {
        self.stats.sparks_stolen += 1;
        let now = self.caps[idx].clock;
        match link {
            LinkClass::Intra => {
                self.stats.steal_local += 1;
                self.tracer.record(
                    self.caps[idx].id,
                    now,
                    EventKind::SparkStolen {
                        victim: CapId(victim as u32),
                    },
                );
            }
            LinkClass::Inter => {
                self.stats.steal_remote += 1;
                self.tracer.record(
                    self.caps[idx].id,
                    now,
                    EventKind::SparkStolenRemote {
                        victim: CapId(victim as u32),
                        moved,
                        words,
                    },
                );
            }
        }
    }

    /// Cap on sparks moved by one batched cross-node steal (the native
    /// pool's `steal_batch_and_pop` cap).
    const REMOTE_BATCH_CAP: usize = 32;

    /// Fill `self.victim_buf` with a fresh seeded permutation of the
    /// other capabilities — one steal sweep probes each exactly once
    /// (the shared `rph_sim::sweep` contract, cf. `crates/native`'s
    /// `VictimPicker`). Under a multi-node topology with hierarchical
    /// stealing the permutation is two-level: all same-node victims
    /// (shuffled) before all remote victims (shuffled). On a single
    /// node the remote segment is empty and the shuffle consumes
    /// exactly the pre-topology draw sequence, keeping flat-model
    /// traces bit-identical.
    fn victim_sweep(&mut self, idx: usize) {
        let mut order = std::mem::take(&mut self.victim_buf);
        order.clear();
        let topo = self.config.topology;
        if topo.nodes() > 1 && self.config.hier_stealing {
            order.extend((0..self.caps.len()).filter(|&v| v != idx && topo.same_node(v, idx)));
            let split = order.len();
            order.extend((0..self.caps.len()).filter(|&v| v != idx && !topo.same_node(v, idx)));
            self.rng.shuffle(&mut order[..split]);
            self.rng.shuffle(&mut order[split..]);
        } else {
            order.extend((0..self.caps.len()).filter(|&v| v != idx));
            self.rng.shuffle(&mut order);
        }
        self.victim_buf = order;
    }

    /// Actions a thread takes when it notices the context-switch /
    /// GC-request flags at an allocation checkpoint.
    fn scheduler_checkpoint(&mut self, idx: usize) {
        // 1. Our allocation area is exhausted: collect. Under the
        // stop-the-world model this requests the global barrier; under
        // the semi-distributed model (§VI future work) the capability
        // collects its own nursery locally, and only every n-th local
        // collection escalates to a global one.
        if self.caps[idx].area.needs_gc() && self.gc.is_none() {
            match self.config.gc_model {
                GcModel::StopTheWorld => {
                    self.tracer.record(
                        self.caps[idx].id,
                        self.caps[idx].clock,
                        EventKind::GcRequest,
                    );
                    self.gc = Some(GcPhase {
                        request_time: self.caps[idx].clock,
                    });
                }
                GcModel::SemiDistributed { global_every } => {
                    if self.caps[idx].locals_since_global + 1 >= global_every {
                        self.caps[idx].locals_since_global = 0;
                        self.tracer.record(
                            self.caps[idx].id,
                            self.caps[idx].clock,
                            EventKind::GcRequest,
                        );
                        self.gc = Some(GcPhase {
                            request_time: self.caps[idx].clock,
                        });
                    } else {
                        self.local_gc(idx);
                    }
                }
                GcModel::PerCapNurseries => {
                    // Collect our own nursery independently; escalate
                    // to a global collection only when the shared old
                    // generation has grown substantially (GHC-style
                    // growth trigger, so majors don't thrash when live
                    // data is genuinely large).
                    self.minor_gc(idx);
                    let threshold = (self.config.alloc_area_words * self.caps.len() as u64)
                        .max(self.last_major_live * 2);
                    if self.heap.old_words() >= threshold {
                        self.tracer.record(
                            self.caps[idx].id,
                            self.caps[idx].clock,
                            EventKind::GcRequest,
                        );
                        self.gc = Some(GcPhase {
                            request_time: self.caps[idx].clock,
                        });
                    }
                }
            }
        }
        // 2. Join a pending barrier.
        if self.gc.is_some() {
            self.park_for_gc(idx);
            return;
        }
        // 3. Time-slice expiry: the thread returns to the scheduler
        // (GHC's timer-driven yield). `threadPaused` scans its stack —
        // this is when lazy black-holing actually marks the frames of
        // a *running* thread — and the scheduler rotates the run queue
        // if other threads wait.
        let cap = &mut self.caps[idx];
        let expired = cap
            .current
            .as_ref()
            .map(|t| cap.clock - t.started >= self.config.time_slice)
            .unwrap_or(false);
        if expired {
            let mut tso = cap.current.take().expect("checked");
            if self.config.black_holing == BlackHoling::Lazy {
                tso.machine.blackhole_update_frames(&mut self.heap);
            }
            self.caps[idx].clock += self.config.costs.ctx_switch;
            self.stats.ctx_switches += 1;
            if self.caps[idx].run_q.is_empty() {
                // Nobody waiting: resume the same thread with a fresh
                // slice.
                tso.started = self.caps[idx].clock;
                self.caps[idx].current = Some(tso);
            } else {
                self.caps[idx].run_q.push_back(tso);
                // Next thread installed by ensure_work on the next visit.
            }
        }
        // 4. Surplus threads are pushed to idle capabilities under
        // both policies.
        self.balance_threads(idx);
        // 5. Push-model work distribution: GHC 6.8's `schedulePushWork`
        // runs whenever the scheduler does — i.e. at the pushing
        // capability's scheduling points, not when the *idle* side
        // wants work; that asymmetry is the delay §IV.A.2 criticises.
        if self.config.spark_policy == SparkPolicy::Push {
            self.push_work(idx);
        }
    }

    /// Push surplus runnable threads to idle capabilities (both
    /// runtimes do this actively; only *spark* distribution differs
    /// between the push and steal policies).
    fn balance_threads(&mut self, idx: usize) {
        // Keep one runnable thread for ourselves when nothing is
        // installed; everything beyond that is surplus.
        let keep = usize::from(self.caps[idx].current.is_none());
        for j in 0..self.caps.len() {
            if j == idx || self.caps[idx].run_q.len() <= keep {
                if self.caps[idx].run_q.len() <= keep {
                    break;
                }
                continue;
            }
            let idle = self.caps[j].current.is_none()
                && self.caps[j].run_q.is_empty()
                && self.caps[j].stopped_for_gc.is_none();
            if !idle {
                continue;
            }
            if let Some(tso) = self.caps[idx].run_q.pop_back() {
                self.caps[idx].clock += self.config.costs.thread_migrate;
                self.stats.threads_migrated += 1;
                self.caps[j].run_q.push_back(tso);
            }
        }
    }

    /// Install the next queued thread, if any.
    fn ensure_work_from_queue(&mut self, idx: usize) -> bool {
        if let Some(mut tso) = self.caps[idx].run_q.pop_front() {
            self.caps[idx].clock += self.config.costs.ctx_switch;
            self.stats.ctx_switches += 1;
            tso.started = self.caps[idx].clock;
            self.caps[idx].current = Some(tso);
            return true;
        }
        false
    }

    fn all_spark_pools_empty(&self) -> bool {
        self.caps.iter().all(|c| c.sparks.is_empty())
    }

    /// A local nursery collection (semi-distributed heap model): no
    /// barrier, no other capability involved. Only the nursery's
    /// survivors are evacuated to the shared heap; the real mark–sweep
    /// of shared data happens at the periodic global collections.
    ///
    /// This is a cost fiction kept for comparison: nothing is actually
    /// reclaimed, and the pause is priced off *global* live words —
    /// exactly the coupling [`GphRuntime::minor_gc`] removes.
    fn local_gc(&mut self, idx: usize) {
        let survivors =
            (self.heap.live_words() / self.caps.len() as u64).min(self.config.alloc_area_words);
        let pause = self.config.costs.gc_pause_local(survivors);
        self.set_state(idx, State::Gc);
        self.caps[idx].clock += pause;
        self.caps[idx].area.reset_after_gc();
        self.caps[idx].locals_since_global += 1;
        self.stats.local_gcs += 1;
        self.stats.minor_gc_time += pause;
        self.set_state(idx, State::Running);
    }

    /// A real independent minor collection of this capability's
    /// nursery: survivors are evacuated (promoted) to the shared old
    /// generation and nursery garbage is reclaimed. The pause is
    /// proportional to the *measured* survivors plus the remembered
    /// set scanned — it does not depend on any other capability's heap
    /// usage, and no barrier is involved.
    fn minor_gc(&mut self, idx: usize) {
        self.set_state(idx, State::Gc);
        let roots = self.gather_roots();
        let res = self
            .collector
            .collect_minor(&mut self.heap, idx as RegionId, roots);
        let pause = self
            .config
            .costs
            .gc_pause_minor(res.survivor_words, res.remset_entries);
        self.caps[idx].clock += pause;
        self.caps[idx].area.reset_after_gc();
        self.stats.local_gcs += 1;
        self.stats.minor_gc_time += pause;
        self.stats.promoted_words += res.survivor_words;
        self.stats.collected_words += res.freed_words;
        let now = self.caps[idx].clock;
        self.tracer.record(
            self.caps[idx].id,
            now,
            EventKind::GcDone {
                live_words: res.survivor_words,
                collected_words: res.freed_words,
                pause,
            },
        );
        self.set_state(idx, State::Running);
    }

    /// The full runtime root set: pinned roots, every capability's
    /// running and queued threads, spark pools, and blocked threads.
    fn gather_roots(&self) -> Vec<NodeRef> {
        let mut roots: Vec<NodeRef> = self.extra_roots.clone();
        for cap in &self.caps {
            if let Some(t) = &cap.current {
                t.machine.push_roots(&mut roots);
            }
            for t in &cap.run_q {
                t.machine.push_roots(&mut roots);
            }
            roots.extend(cap.sparks.iter().copied());
        }
        for t in self.blocked.values() {
            t.machine.push_roots(&mut roots);
        }
        roots
    }

    /// Steal a runnable thread from another capability (future-work
    /// extension of the pulling scheme). Sweeps a seeded permutation
    /// of the victims so each is probed exactly once.
    fn steal_thread(&mut self, idx: usize) -> bool {
        let topo = self.config.topology;
        self.victim_sweep(idx);
        for k in 0..self.victim_buf.len() {
            let victim = self.victim_buf[k];
            let link = topo.link(idx, victim);
            self.caps[idx].clock += self.config.costs.steal_attempt;
            if link == LinkClass::Inter {
                self.caps[idx].clock += self.config.costs.link_latency(LinkClass::Inter);
            }
            // Take the oldest queued thread; never the one installed.
            if let Some(tso) = self.caps[victim].run_q.pop_front() {
                self.caps[idx].clock += self.config.costs.thread_migrate;
                if link == LinkClass::Inter {
                    // A TSO crossing nodes is packed and shipped like
                    // any other closure graph.
                    let pack = self.config.costs.steal_pack_words(1);
                    self.caps[idx].clock += self.config.costs.link_wire_cost(link, pack);
                    self.stats.remote_words += self.config.costs.link_words(link, pack);
                }
                self.stats.threads_stolen += 1;
                self.caps[idx].run_q.push_back(tso);
                return true;
            }
        }
        false
    }

    /// Push surplus sparks to idle capabilities (one each).
    fn push_work(&mut self, idx: usize) {
        for j in 0..self.caps.len() {
            if j == idx {
                continue;
            }
            if self.caps[idx].sparks.len() <= 1 {
                break; // keep one for ourselves
            }
            let idle = !self.caps[j].has_local_work()
                && self.caps[j].sparks.is_empty()
                && self.caps[j].stopped_for_gc.is_none();
            if !idle {
                continue;
            }
            // Hand over the oldest spark (FIFO end). The event is
            // recorded on the donor's row (the recipient may be behind
            // in virtual time and discovers the spark when it next
            // polls for work).
            if let Some(s) = self.caps[idx].sparks.steal() {
                self.caps[idx].clock += self.config.costs.steal_attempt; // handshake cost
                if self.config.topology.link(idx, j) == LinkClass::Inter {
                    // Pushing a spark to another node ships it over
                    // the wire like a remote steal would.
                    let pack = self.config.costs.steal_pack_words(1);
                    self.caps[idx].clock +=
                        self.config.costs.link_wire_cost(LinkClass::Inter, pack);
                    self.stats.remote_words += self.config.costs.link_words(LinkClass::Inter, pack);
                }
                let now = self.caps[idx].clock;
                self.caps[j].sparks.push(s);
                self.stats.sparks_pushed += 1;
                self.tracer.record(
                    self.caps[idx].id,
                    now,
                    EventKind::SparkPushed {
                        to: CapId(j as u32),
                    },
                );
            }
        }
    }

    /// Park a capability at the GC barrier.
    fn park_for_gc(&mut self, idx: usize) {
        let request_time = self.gc.as_ref().expect("gc pending").request_time;
        // The barrier can complete no earlier than the request; idle
        // capabilities whose clocks lag jump forward to it.
        let t = self.caps[idx].clock.max(request_time);
        self.caps[idx].clock = t;
        self.caps[idx].stopped_for_gc = Some(t);
        // Suspended mutator: lazy black-holing scan.
        if self.config.black_holing == BlackHoling::Lazy {
            if let Some(tso) = &self.caps[idx].current {
                tso.machine.blackhole_update_frames(&mut self.heap);
            }
        }
        self.set_state(idx, State::Gc);
    }

    /// All capabilities parked: run the collector and charge the pause.
    fn perform_gc(&mut self) {
        let request_time = self.gc.as_ref().expect("gc pending").request_time;
        let barrier_end = self
            .caps
            .iter()
            .map(|c| c.stopped_for_gc.expect("all parked"))
            .max()
            .expect("caps non-empty");

        // Real mark–sweep over the real graph.
        let roots = self.gather_roots();
        let (res, pause) = match self.config.gc_model {
            GcModel::PerCapNurseries => {
                // Parallel copying major GC model: partition the root
                // set across the capabilities' GC threads, mark with
                // grey-set work stealing, pause = slowest GC thread.
                let caps = self.caps.len();
                let mut by_cap: Vec<Vec<NodeRef>> = vec![Vec::new(); caps];
                for (i, r) in roots.into_iter().enumerate() {
                    by_cap[i % caps].push(r);
                }
                let pm = ParMarkCosts {
                    mark_cell: self.config.costs.gc_mark_cell,
                    per_word: self.config.costs.gc_per_live_word,
                    steal: self.config.costs.gc_grey_steal,
                };
                let (res, report) = self
                    .collector
                    .collect_parallel(&mut self.heap, &by_cap, &pm);
                self.stats.grey_steals += report.grey_steals;
                let pause = self.config.costs.gc_pause_parallel(
                    caps,
                    self.config.gc_sync_improved,
                    report.max_clock(),
                );
                (res, pause)
            }
            GcModel::StopTheWorld | GcModel::SemiDistributed { .. } => {
                // Serial collection, as in GHC 6.8 (the paper's
                // reference 29 parallel collector is "still
                // stop-the-world" and not what it measures).
                let res = self.collector.collect(&mut self.heap, roots);
                let copy_words = self.config.costs.gc_copy_words(
                    self.stats.gcs,
                    res.live_words,
                    self.config.alloc_area_words * self.caps.len() as u64,
                );
                let pause = self.config.costs.gc_pause(
                    self.caps.len(),
                    self.config.gc_sync_improved,
                    copy_words,
                );
                (res, pause)
            }
        };
        let end = barrier_end + pause;
        self.stats.gcs += 1;
        self.stats.last_live_words = res.live_words;
        self.stats.collected_words += res.collected_words;
        self.last_major_live = res.live_words;
        self.tracer.record(
            CapId(0),
            barrier_end,
            EventKind::GcStart {
                barrier_wait: barrier_end - request_time,
            },
        );

        // Prune fizzled sparks, GHC-style, while the world is stopped.
        let heap = &self.heap;
        for cap in &mut self.caps {
            cap.sparks.retain(|r| heap.whnf(*r).is_none());
        }

        for idx in 0..self.caps.len() {
            let stopped_at = self.caps[idx].stopped_for_gc.take().expect("parked");
            self.stats.gc_barrier_wait += barrier_end - stopped_at;
            self.stats.gc_pause += pause;
            self.caps[idx].clock = end;
            self.caps[idx].area.reset_after_gc();
            // A global collection covers every nursery: local-collection
            // counters start over (semi-distributed model).
            self.caps[idx].locals_since_global = 0;
            self.set_state(idx, State::Runnable);
        }
        self.tracer.record(
            CapId(0),
            end,
            EventKind::GcDone {
                live_words: res.live_words,
                collected_words: res.collected_words,
                pause,
            },
        );
        self.gc = None;
    }

    fn set_state(&mut self, idx: usize, state: State) {
        if self.caps[idx].last_state != Some(state) {
            self.caps[idx].last_state = Some(state);
            self.tracer
                .state(self.caps[idx].id, self.caps[idx].clock, state);
        }
    }

    fn fresh_tid(&mut self) -> ThreadId {
        let t = ThreadId(self.next_tid);
        self.next_tid += 1;
        t
    }
}
