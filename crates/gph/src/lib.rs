//! # rph-gph — the shared-heap GpH runtime
//!
//! The simulated counterpart of GHC's threaded runtime as studied in
//! the paper (§III.A, §IV.A): `N` *capabilities* share one graph heap;
//! `par` records *sparks*; the scheduler converts sparks to lightweight
//! threads; allocation is per-capability with stop-the-world garbage
//! collection.
//!
//! Every optimisation the paper evaluates is a configuration switch
//! ([`GphConfig`]), so each of Fig. 1's rows and Fig. 5's curves is one
//! config:
//!
//! | paper change (§IV.A) | flag |
//! |---|---|
//! | bigger allocation areas | [`GphConfig::alloc_area_words`] |
//! | improved GC barrier synchronisation | [`GphConfig::gc_sync_improved`] |
//! | work-stealing spark distribution (Chase–Lev) | [`SparkPolicy::Steal`] |
//! | eager vs lazy black-holing | [`BlackHoling`] |
//! | one spark thread per capability | [`SparkExec::SparkThread`] |
//!
//! The runtime is a deterministic discrete-event simulation: each
//! capability has a virtual clock; the capability with the smallest
//! clock advances next; mutator cost comes from the abstract machine's
//! accounting and every scheduler/GC overhead from [`rph_sim::Costs`].
//!
//! # Example
//!
//! `par`/`seq` over a list of kernel calls, on 4 capabilities with the
//! paper's fully optimised runtime:
//!
//! ```
//! use rph_gph::{GphConfig, GphRuntime};
//! use rph_machine::{prelude, ProgramBuilder, KernelOut};
//! use rph_machine::ir::*;
//! use rph_heap::Value;
//!
//! let mut b = ProgramBuilder::new();
//! let pre = prelude::install(&mut b);
//! let work = b.kernel("work", 1, |heap, args| {
//!     let x = heap.expect_value(args[0]).expect_int();
//!     KernelOut { result: heap.alloc_value(Value::Int(x * x)),
//!                 cost: 100_000, transient_words: 500 }
//! });
//! // main n = let xs = map work [1..n] in sparkList xs `seq` sum xs
//! let main = b.def("main", 1, let_(
//!     vec![
//!         pap(work, vec![]),
//!         thunk(pre.enum_from_to, vec![int(1), v(0)]),
//!         thunk(pre.map, vec![v(1), v(2)]),
//!         thunk(pre.spark_list, vec![v(3)]),
//!     ],
//!     seq(atom(v(4)), app(pre.sum, vec![v(3)])),
//! ));
//! let program = b.build();
//!
//! let cfg = GphConfig::ghc69_plain(4)
//!     .with_big_alloc_area()
//!     .with_improved_gc_sync()
//!     .with_work_stealing();
//! let mut rt = GphRuntime::new(program, cfg);
//! let out = rt.run(|heap| {
//!     let n = heap.int(16);
//!     heap.alloc_thunk(main, vec![n])
//! }).unwrap();
//! assert_eq!(rt.heap().expect_value(out.result).expect_int(),
//!            (1..=16).map(|x| x * x).sum::<i64>());
//! assert!(out.stats.sparks_created == 16);
//! ```

pub mod config;
pub mod runtime;
#[cfg(test)]
mod runtime_tests;
pub mod stats;
pub mod strategies;

pub use config::{BlackHoling, GcModel, GphConfig, SparkExec, SparkPolicy};
pub use runtime::{GphRuntime, RunOutcome};
pub use stats::GphStats;
pub use strategies::{install as install_strategies, Strategies};
