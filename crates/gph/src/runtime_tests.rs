//! Runtime tests: result correctness across the whole configuration
//! matrix, determinism, and the qualitative effects the paper reports
//! (stealing beats pushing; bigger nurseries mean fewer GCs; eager
//! black-holing suppresses duplicate evaluation; spark threads create
//! fewer threads).

use crate::config::{BlackHoling, GcModel, GphConfig, SparkExec, SparkPolicy};
use crate::runtime::GphRuntime;
use rph_heap::{Heap, NodeRef, Value};
use rph_machine::ir::*;
use rph_machine::prelude::{self, Prelude};
use rph_machine::program::{KernelOut, Program, ProgramBuilder};
use rph_trace::State;
use std::sync::Arc;

/// Test program: `sum (map work [1..n])` with `work` a kernel of
/// `cost_per_item` work units and `alloc_per_item` words of transient
/// allocation, parallelised by sparking every element (deep).
struct Fixture {
    program: Arc<Program>,
    #[allow(dead_code)]
    pre: Prelude,
    main: rph_heap::ScId,
}

fn fixture(cost_per_item: u64, alloc_per_item: u64) -> Fixture {
    let mut b = ProgramBuilder::new();
    let pre = prelude::install(&mut b);
    let work = b.kernel("work", 1, move |heap, args| {
        let x = heap.expect_value(args[0]).expect_int();
        KernelOut {
            result: heap.alloc_value(Value::Int(x * 2)),
            cost: cost_per_item,
            transient_words: alloc_per_item,
        }
    });
    // main n = let xs = map work [1..n]
    //          in  sparkList xs `seq` sum xs
    // frame: [n]
    let main = b.def(
        "main",
        1,
        let_(
            vec![
                pap(work, vec![]),                           // [1] work as a value
                thunk(pre.enum_from_to, vec![int(1), v(0)]), // [2] [1..n]
                thunk(pre.map, vec![v(1), v(2)]),            // [3] map work [1..n]
                thunk(pre.spark_list, vec![v(3)]),           // [4] sparker
            ],
            seq(atom(v(4)), app(pre.sum, vec![v(3)])),
        ),
    );
    Fixture {
        program: b.build(),
        pre,
        main,
    }
}

fn entry(f: &Fixture, heap: &mut Heap, n: i64) -> NodeRef {
    let nn = heap.int(n);
    heap.alloc_thunk(f.main, vec![nn])
}

fn expected(n: i64) -> i64 {
    (1..=n).map(|x| x * 2).sum()
}

fn run_with(config: GphConfig, n: i64, cost: u64, alloc: u64) -> (i64, crate::runtime::RunOutcome) {
    let f = fixture(cost, alloc);
    let mut rt = GphRuntime::new(f.program.clone(), config);
    let out = rt.run(|heap| entry(&f, heap, n)).expect("run failed");
    let v = rt.heap().expect_value(out.result).expect_int();
    (v, out)
}

#[test]
fn correct_result_across_config_matrix() {
    for caps in [1, 2, 4, 8] {
        for policy in [SparkPolicy::Push, SparkPolicy::Steal] {
            for bh in [BlackHoling::Lazy, BlackHoling::Eager] {
                for exec in [SparkExec::ThreadPerSpark, SparkExec::SparkThread] {
                    let mut c = GphConfig::ghc69_plain(caps).without_trace();
                    c.spark_policy = policy;
                    c.black_holing = bh;
                    c.spark_exec = exec;
                    let (v, _) = run_with(c, 40, 100_000, 2_000);
                    assert_eq!(
                        v,
                        expected(40),
                        "caps={caps} policy={policy:?} bh={bh:?} exec={exec:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn deterministic_same_seed_same_everything() {
    let c = GphConfig::ghc69_plain(4).with_work_stealing();
    let (v1, o1) = run_with(c.clone(), 50, 80_000, 1_000);
    let (v2, o2) = run_with(c, 50, 80_000, 1_000);
    assert_eq!(v1, v2);
    assert_eq!(o1.elapsed, o2.elapsed);
    assert_eq!(o1.stats, o2.stats);
    assert_eq!(o1.tracer.merged(), o2.tracer.merged());
}

#[test]
fn parallelism_gives_speedup_with_stealing() {
    let base = GphConfig::ghc69_plain(1)
        .with_work_stealing()
        .without_trace();
    let (_, o1) = run_with(base, 64, 400_000, 1_000);
    let par = GphConfig::ghc69_plain(8)
        .with_work_stealing()
        .without_trace();
    let (_, o8) = run_with(par, 64, 400_000, 1_000);
    let speedup = o1.elapsed as f64 / o8.elapsed as f64;
    assert!(speedup > 4.0, "8-cap stealing speedup only {speedup:.2}");
}

#[test]
fn stealing_beats_pushing() {
    // Fine-grained sparks make the push scheduler's polling delay
    // visible (§IV.A.2).
    let mut push = GphConfig::ghc69_plain(8)
        .with_big_alloc_area()
        .without_trace();
    push.spark_policy = SparkPolicy::Push;
    let (_, op) = run_with(push, 96, 150_000, 500);
    let steal = GphConfig::ghc69_plain(8)
        .with_big_alloc_area()
        .with_work_stealing()
        .without_trace();
    let (_, os) = run_with(steal, 96, 150_000, 500);
    assert!(
        os.elapsed < op.elapsed,
        "steal {} !< push {}",
        os.elapsed,
        op.elapsed
    );
    assert!(os.stats.sparks_stolen > 0);
    assert!(op.stats.sparks_pushed > 0);
}

#[test]
fn big_allocation_area_reduces_gc_count() {
    let small = GphConfig::ghc69_plain(4).without_trace();
    let (_, o_small) = run_with(small, 64, 100_000, 30_000);
    let big = GphConfig::ghc69_plain(4)
        .with_big_alloc_area()
        .without_trace();
    let (_, o_big) = run_with(big, 64, 100_000, 30_000);
    assert!(
        o_big.stats.gcs < o_small.stats.gcs,
        "big area gcs {} !< small area gcs {}",
        o_big.stats.gcs,
        o_small.stats.gcs
    );
    assert!(
        o_big.elapsed < o_small.elapsed,
        "fewer GCs should run faster"
    );
}

#[test]
fn improved_gc_sync_reduces_runtime_with_many_gcs() {
    // Single capability: the schedule is identical apart from the
    // barrier cost, so the comparison is exact. (The multi-capability
    // effect is measured by the Fig. 1 benchmark, where scheduling
    // feedback legitimately changes GC counts between configs.)
    let orig = GphConfig::ghc69_plain(1).without_trace();
    let (_, o1) = run_with(orig, 64, 100_000, 30_000);
    let impr = GphConfig::ghc69_plain(1)
        .with_improved_gc_sync()
        .without_trace();
    let (_, o2) = run_with(impr, 64, 100_000, 30_000);
    assert!(o1.stats.gcs > 0);
    assert_eq!(o1.stats.gcs, o2.stats.gcs, "same single-cap schedule");
    assert!(
        o2.elapsed < o1.elapsed,
        "improved {} !< original {}",
        o2.elapsed,
        o1.elapsed
    );
}

#[test]
fn spark_thread_mode_creates_fewer_threads() {
    let mut per_spark = GphConfig::ghc69_plain(4)
        .with_big_alloc_area()
        .without_trace();
    per_spark.spark_policy = SparkPolicy::Steal;
    per_spark.spark_exec = SparkExec::ThreadPerSpark;
    let (_, o1) = run_with(per_spark, 64, 100_000, 500);
    let mut spark_thread = GphConfig::ghc69_plain(4)
        .with_big_alloc_area()
        .without_trace();
    spark_thread.spark_policy = SparkPolicy::Steal;
    spark_thread.spark_exec = SparkExec::SparkThread;
    let (_, o2) = run_with(spark_thread, 64, 100_000, 500);
    assert!(
        o2.stats.threads_created < o1.stats.threads_created,
        "spark-thread {} !< thread-per-spark {}",
        o2.stats.threads_created,
        o1.stats.threads_created
    );
}

#[test]
fn gc_happens_and_reclaims() {
    let (v, o) = run_with(
        GphConfig::ghc69_plain(2).without_trace(),
        48,
        50_000,
        20_000,
    );
    assert_eq!(v, expected(48));
    assert!(o.stats.gcs > 0, "expected collections");
    assert!(o.stats.collected_words > 0);
}

#[test]
fn trace_is_well_formed_and_shows_gc() {
    let (_, o) = run_with(GphConfig::ghc69_plain(2), 48, 50_000, 20_000);
    let tl = rph_trace::Timeline::from_tracer(&o.tracer);
    tl.check_well_formed().unwrap();
    assert!(
        tl.mean_fraction(State::Gc) > 0.0,
        "GC time visible in trace"
    );
    assert!(tl.mean_fraction(State::Running) > 0.1);
}

#[test]
fn one_cap_run_has_no_steals_or_pushes() {
    let c = GphConfig::ghc69_plain(1)
        .with_work_stealing()
        .without_trace();
    let (v, o) = run_with(c, 20, 50_000, 500);
    assert_eq!(v, expected(20));
    assert_eq!(o.stats.sparks_stolen, 0);
    assert_eq!(o.stats.sparks_pushed, 0);
}

/// Shared-data workload: every sparked task forces the same shared
/// thunk *and* does private work. Under lazy black-holing the shared
/// computation is duplicated by concurrent forcers, displacing useful
/// work; eager black-holing blocks the second forcers, whose
/// capabilities pick up other sparks instead (§IV.A.3 / Fig. 5's
/// mechanism).
#[test]
fn eager_blackholing_prevents_duplicate_shared_work() {
    fn build_shared(bh: BlackHoling) -> (i64, crate::runtime::RunOutcome) {
        let mut b = ProgramBuilder::new();
        let pre = prelude::install(&mut b);
        let heavy = b.kernel("heavy", 1, |heap, args| {
            let x = heap.expect_value(args[0]).expect_int();
            KernelOut {
                result: heap.alloc_value(Value::Int(x + 1000)),
                cost: 3_000_000, // 3 ms: a big shared computation
                transient_words: 100,
            }
        });
        let own_work = b.kernel("ownWork", 1, |heap, args| {
            let x = heap.expect_value(args[0]).expect_int();
            KernelOut {
                result: heap.alloc_value(Value::Int(x)),
                cost: 1_000_000, // 1 ms private work per task
                transient_words: 100,
            }
        });
        // useShared s i = ownWork i + s     frame: [s, i]
        // Private work first, then the shared thunk: under eager BH a
        // blocked task's capability has other tasks' private work to
        // run; under lazy BH the capability duplicates `heavy` instead.
        let use_shared = b.def(
            "useShared",
            2,
            let_(
                vec![thunk(own_work, vec![v(1)])], // [2]
                prim(rph_machine::PrimOp::Add, vec![v(2), v(0)]),
            ),
        );
        // main k = let s = heavy 1
        //              xs = map (useShared s) [1..k]
        //          in sparkList xs `seq` sum xs
        let main = b.def(
            "main",
            1,
            let_(
                vec![
                    thunk(heavy, vec![int(1)]),                  // [1] shared s
                    pap(use_shared, vec![v(1)]),                 // [2] (useShared s)
                    thunk(pre.enum_from_to, vec![int(1), v(0)]), // [3]
                    thunk(pre.map, vec![v(2), v(3)]),            // [4]
                    thunk(pre.spark_list, vec![v(4)]),           // [5]
                ],
                seq(atom(v(5)), app(pre.sum, vec![v(4)])),
            ),
        );
        let program = b.build();
        let mut c = GphConfig::ghc69_plain(4)
            .with_big_alloc_area()
            .with_work_stealing();
        c.black_holing = bh;
        c = c.without_trace();
        let mut rt = GphRuntime::new(program, c);
        let out = rt
            .run(|heap| {
                let k = heap.int(32);
                heap.alloc_thunk(main, vec![k])
            })
            .unwrap();
        let v = rt.heap().expect_value(out.result).expect_int();
        (v, out)
    }
    let (v_lazy, lazy) = build_shared(BlackHoling::Lazy);
    let (v_eager, eager) = build_shared(BlackHoling::Eager);
    let expect: i64 = (1..=32).map(|i| 1001 + i).sum();
    assert_eq!(v_lazy, expect);
    assert_eq!(v_eager, expect);
    assert!(
        lazy.stats.duplicate_evals > 0,
        "lazy BH must duplicate the shared computation"
    );
    assert_eq!(
        eager.stats.duplicate_evals, 0,
        "eager BH prevents duplication"
    );
    assert!(
        eager.stats.blackhole_blocks > 0,
        "eager BH blocks second forcers"
    );
    assert!(
        eager.elapsed < lazy.elapsed,
        "eager {} !< lazy {} when work is shared",
        eager.elapsed,
        lazy.elapsed
    );
}

/// §VI future work: the semi-distributed heap model must produce the
/// same results and collect mostly locally, cutting stop-the-world
/// count roughly by its `global_every` factor.
#[test]
fn semi_distributed_heap_reduces_global_collections() {
    let stw = GphConfig::ghc69_plain(8).without_trace();
    let (v1, o1) = run_with(stw, 64, 100_000, 30_000);
    let semi = GphConfig::ghc69_plain(8)
        .with_semi_distributed_heap(8)
        .without_trace();
    let (v2, o2) = run_with(semi, 64, 100_000, 30_000);
    assert_eq!(v1, v2);
    let s1 = &o1.stats;
    let s2 = &o2.stats;
    assert!(s1.gcs > 0);
    assert!(
        s2.gcs * 4 <= s1.gcs,
        "global GCs should drop sharply: {} vs {}",
        s2.gcs,
        s1.gcs
    );
    assert!(s2.local_gcs > 0, "local collections must happen");
    assert!(
        o2.elapsed < o1.elapsed,
        "semi-distributed {} !< stop-the-world {}",
        o2.elapsed,
        o1.elapsed
    );
}

/// §IV.A.2 future work: thread stealing lets idle capabilities pull
/// runnable threads when there are no sparks left to steal.
#[test]
fn thread_stealing_pulls_queued_threads() {
    // Shared thunk: all tasks block on it; the waker accumulates the
    // woken threads. With thread stealing, idle capabilities pull them.
    let mut b = ProgramBuilder::new();
    let pre = prelude::install(&mut b);
    let heavy = b.kernel("heavy", 1, |heap, args| {
        let x = heap.expect_value(args[0]).expect_int();
        KernelOut {
            result: heap.alloc_value(Value::Int(x + 100)),
            cost: 2_000_000,
            transient_words: 100,
        }
    });
    let own = b.kernel("own", 1, |heap, args| {
        let x = heap.expect_value(args[0]).expect_int();
        KernelOut {
            result: heap.alloc_value(Value::Int(x)),
            cost: 1_000_000,
            transient_words: 100,
        }
    });
    // task s i = s + own i  (forces the shared thunk FIRST, so every
    // task blocks until it resolves; the post-wake work is the part
    // thread stealing can spread).
    let task = b.def(
        "task",
        2,
        let_(
            vec![thunk(own, vec![v(1)])],
            prim(rph_machine::PrimOp::Add, vec![v(0), v(2)]),
        ),
    );
    let main = b.def(
        "main",
        1,
        let_(
            vec![
                thunk(heavy, vec![int(1)]),
                pap(task, vec![v(1)]),
                thunk(pre.enum_from_to, vec![int(1), v(0)]),
                thunk(pre.map, vec![v(2), v(3)]),
                thunk(pre.spark_list, vec![v(4)]),
            ],
            seq(atom(v(5)), app(pre.sum, vec![v(4)])),
        ),
    );
    let program = b.build();
    let run = |steal_threads: bool| {
        let mut c = GphConfig::ghc69_plain(8)
            .with_big_alloc_area()
            .with_work_stealing()
            .with_eager_blackholing()
            .without_trace();
        if steal_threads {
            c = c.with_thread_stealing();
        }
        let mut rt = GphRuntime::new(program.clone(), c);
        let out = rt
            .run(|heap| {
                let k = heap.int(24);
                heap.alloc_thunk(main, vec![k])
            })
            .unwrap();
        let v = rt.heap().expect_value(out.result).expect_int();
        assert_eq!(v, (1..=24).map(|i| 101 + i).sum::<i64>());
        out
    };
    let without = run(false);
    let with = run(true);
    assert!(with.stats.threads_stolen > 0, "expected thread steals");
    assert!(
        with.elapsed <= without.elapsed,
        "thread stealing should not hurt: {} vs {}",
        with.elapsed,
        without.elapsed
    );
}

/// Value oracle: every GC model produces the bit-identical sequential
/// answer across capability counts.
#[test]
fn gc_model_matrix_preserves_results() {
    for caps in [1, 2, 4, 8] {
        for (name, model) in [
            ("stw", GcModel::StopTheWorld),
            ("semi", GcModel::SemiDistributed { global_every: 8 }),
            ("percap", GcModel::PerCapNurseries),
        ] {
            let mut c = GphConfig::ghc69_plain(caps)
                .with_work_stealing()
                .without_trace();
            c.gc_model = model;
            let (v, _) = run_with(c, 48, 50_000, 20_000);
            assert_eq!(v, expected(48), "caps={caps} model={name}");
        }
    }
}

/// Determinism must survive the new nursery machinery: identical
/// seeds give identical stats, elapsed time, and byte-identical
/// merged event traces.
#[test]
fn per_cap_nurseries_deterministic_same_seed() {
    let c = GphConfig::ghc69_plain(4)
        .with_work_stealing()
        .with_per_cap_nurseries();
    let (v1, o1) = run_with(c.clone(), 48, 50_000, 20_000);
    let (v2, o2) = run_with(c, 48, 50_000, 20_000);
    assert_eq!(v1, v2);
    assert_eq!(o1.elapsed, o2.elapsed);
    assert_eq!(o1.stats, o2.stats);
    assert_eq!(o1.tracer.merged(), o2.tracer.merged());
}

/// The tentpole's headline effect: with real per-capability nurseries
/// most collections are independent minor ones, so at scale the
/// global-GC count and the total stopped time both drop against the
/// stop-the-world baseline — the sim's GpH profile moves toward
/// Eden's.
#[test]
fn per_cap_nurseries_cut_global_gcs_and_stopped_time() {
    let stw = GphConfig::ghc69_plain(8).without_trace();
    let (v1, o1) = run_with(stw, 64, 100_000, 30_000);
    let percap = GphConfig::ghc69_plain(8)
        .with_per_cap_nurseries()
        .without_trace();
    let (v2, o2) = run_with(percap, 64, 100_000, 30_000);
    assert_eq!(v1, v2);
    assert!(o1.stats.gcs > 0, "baseline must collect");
    assert!(
        o2.stats.gcs < o1.stats.gcs,
        "global GCs should drop: {} !< {}",
        o2.stats.gcs,
        o1.stats.gcs
    );
    assert!(o2.stats.local_gcs > 0, "minor collections must happen");
    assert!(
        o2.stats.promoted_words > 0,
        "minor collections must evacuate real survivors"
    );
    assert!(
        o2.stats.gc_stopped_time() < o1.stats.gc_stopped_time(),
        "stopped time should shrink: {} !< {}",
        o2.stats.gc_stopped_time(),
        o1.stats.gc_stopped_time()
    );
    assert!(
        o2.elapsed < o1.elapsed,
        "independent minors should run faster: {} !< {}",
        o2.elapsed,
        o1.elapsed
    );
}

/// Regression for the cost-model bug the semi-distributed fiction
/// papers over: a capability's minor-GC pause must depend only on its
/// *own* survivors, never on how big the rest of the heap happens to
/// be. We pin a ballast structure in the old generation (reachable,
/// never part of any nursery) and check the nursery run is completely
/// unperturbed — while the semi-distributed model, which prices its
/// "local" pause off global heap size, visibly slows down.
#[test]
fn minor_pause_independent_of_other_heap_usage() {
    fn run_ballast(model: GcModel, ballast_cells: usize) -> crate::runtime::RunOutcome {
        let f = fixture(50_000, 20_000);
        let mut c = GphConfig::ghc69_plain(2)
            .with_work_stealing()
            .without_trace();
        c.gc_model = model;
        let mut rt = GphRuntime::new(f.program.clone(), c);
        for i in 0..ballast_cells {
            let cell = rt.heap_mut().int(i as i64);
            rt.pin_root(cell);
        }
        rt.run(|heap| entry(&f, heap, 48)).expect("run failed")
    }
    let small = run_ballast(GcModel::PerCapNurseries, 10);
    let big = run_ballast(GcModel::PerCapNurseries, 10_000);
    assert!(small.stats.local_gcs > 0);
    assert_eq!(
        small.stats.local_gcs, big.stats.local_gcs,
        "ballast must not change the minor-GC schedule"
    );
    assert_eq!(
        small.stats.minor_gc_time, big.stats.minor_gc_time,
        "minor pauses must not scale with unrelated old-gen data"
    );
    assert_eq!(
        small.elapsed, big.elapsed,
        "whole schedule must be unperturbed by old-gen ballast"
    );
    // Contrast: the semi-distributed cost fiction charges local pauses
    // off the global heap, so the same ballast slows it down.
    let semi_small = run_ballast(GcModel::SemiDistributed { global_every: 8 }, 10);
    let semi_big = run_ballast(GcModel::SemiDistributed { global_every: 8 }, 10_000);
    assert_ne!(
        semi_small.stats.minor_gc_time, semi_big.stats.minor_gc_time,
        "semi-distributed pauses are (wrongly) coupled to global heap size"
    );
}

/// Regression for the heap-growth bug: the semi-distributed model's
/// local collections reclaim nothing, so a churn-heavy program's cell
/// count climbs until a *global* collection. Real nurseries reclaim
/// dead cells at every minor collection, keeping the live cell count
/// bounded between major GCs.
#[test]
fn minor_collections_bound_the_heap() {
    fn churn_run(model: GcModel) -> (i64, crate::runtime::RunOutcome, rph_heap::HeapStats) {
        let mut b = ProgramBuilder::new();
        let pre = prelude::install(&mut b);
        // Each task allocates 200 short-lived cells that die as soon
        // as the kernel returns — classic nursery garbage.
        let churn = b.kernel("churn", 1, |heap, args| {
            let x = heap.expect_value(args[0]).expect_int();
            let mut acc = 0i64;
            for i in 0..200i64 {
                let t = heap.int(i);
                acc += heap.expect_value(t).expect_int();
            }
            KernelOut {
                result: heap.alloc_value(Value::Int(x * 2 + (acc - acc))),
                cost: 50_000,
                transient_words: 2_000,
            }
        });
        let main = b.def(
            "main",
            1,
            let_(
                vec![
                    pap(churn, vec![]),
                    thunk(pre.enum_from_to, vec![int(1), v(0)]),
                    thunk(pre.map, vec![v(1), v(2)]),
                    thunk(pre.spark_list, vec![v(3)]),
                ],
                seq(atom(v(4)), app(pre.sum, vec![v(3)])),
            ),
        );
        let program = b.build();
        let mut c = GphConfig::ghc69_plain(2)
            .with_work_stealing()
            .without_trace();
        // Small nursery so minor collections are frequent.
        c.alloc_area_words = 8_192;
        c.gc_model = model;
        let mut rt = GphRuntime::new(program, c);
        let out = rt
            .run(|heap| {
                let n = heap.int(48);
                heap.alloc_thunk(main, vec![n])
            })
            .unwrap();
        let v = rt.heap().expect_value(out.result).expect_int();
        let hs = rt.heap().stats();
        (v, out, hs)
    }
    let (v_n, nursery, hs_n) = churn_run(GcModel::PerCapNurseries);
    // global_every so large the fiction never reclaims anything.
    let (v_s, semi, hs_s) = churn_run(GcModel::SemiDistributed {
        global_every: 1_000_000,
    });
    assert_eq!(v_n, expected(48));
    assert_eq!(v_s, expected(48));
    assert!(nursery.stats.local_gcs > 0);
    assert!(
        nursery.stats.collected_words > 0,
        "minor collections must actually reclaim nursery garbage"
    );
    assert_eq!(
        semi.stats.gcs, 0,
        "fiction configured to never globally collect"
    );
    assert!(
        hs_n.peak_live_cells * 2 < hs_s.peak_live_cells,
        "nursery heap must stay bounded: peak {} cells vs unreclaimed {}",
        hs_n.peak_live_cells,
        hs_s.peak_live_cells
    );
}

/// When churn promotes enough to grow the old generation past its
/// threshold, the per-capability model runs a *parallel* major
/// collection: with several capabilities' GC threads marking, the
/// grey-set work-stealing must actually engage.
#[test]
fn parallel_major_gc_triggers_and_steals() {
    let mut c = GphConfig::ghc69_plain(4)
        .with_work_stealing()
        .with_per_cap_nurseries()
        .without_trace();
    // Tiny nursery + tiny old-gen threshold so minors promote often
    // and majors actually trigger within the run.
    c.alloc_area_words = 2_048;
    let (v, o) = run_with(c, 512, 50_000, 3_000);
    assert_eq!(v, expected(512));
    assert!(o.stats.local_gcs > 0);
    assert!(o.stats.gcs > 0, "old-gen growth must trigger a major GC");
    assert!(o.stats.gc_pause > 0);
    assert!(o.stats.gc_barrier_wait > 0);
    assert!(
        o.stats.grey_steals > 0,
        "parallel mark must balance work by stealing grey objects"
    );
}

/// Failure injection: a program error (division by zero) inside a
/// sparked computation surfaces as `Err` from the run, never as a
/// panic or a wrong answer.
#[test]
fn program_errors_propagate_from_parallel_code() {
    let mut b = ProgramBuilder::new();
    let pre = prelude::install(&mut b);
    // poison x = x / 0
    let poison = b.def(
        "poison",
        1,
        prim(rph_machine::PrimOp::Div, vec![v(0), int(0)]),
    );
    let main = b.def(
        "main",
        1,
        let_(
            vec![
                pap(poison, vec![]),
                thunk(pre.enum_from_to, vec![int(1), v(0)]),
                thunk(pre.map, vec![v(1), v(2)]),
                thunk(pre.spark_list, vec![v(3)]),
            ],
            seq(atom(v(4)), app(pre.sum, vec![v(3)])),
        ),
    );
    let program = b.build();
    let mut rt = GphRuntime::new(
        program,
        GphConfig::ghc69_plain(4)
            .with_work_stealing()
            .without_trace(),
    );
    let err = rt
        .run(|heap| {
            let n = heap.int(8);
            heap.alloc_thunk(main, vec![n])
        })
        .unwrap_err();
    assert!(err.contains("division"), "got: {err}");
}

/// The single-node topology is the pre-topology runtime by
/// construction: an explicit `with_topology(1, caps)` — and even the
/// flat-stealing ablation, whose remote arm is unreachable with one
/// node — replays the default config bit for bit: result, virtual
/// makespan, every counter, and the merged event trace.
#[test]
fn single_node_topology_is_bit_identical_to_default() {
    let base = GphConfig::ghc69_plain(4).with_work_stealing();
    let (v1, o1) = run_with(base.clone(), 50, 80_000, 1_000);
    for c in [
        base.clone().with_topology(1, 4),
        base.with_topology(1, 4).with_flat_stealing(),
    ] {
        let (v2, o2) = run_with(c, 50, 80_000, 1_000);
        assert_eq!(v1, v2);
        assert_eq!(o1.elapsed, o2.elapsed);
        assert_eq!(o1.stats, o2.stats);
        assert_eq!(o1.tracer.merged(), o2.tracer.merged());
    }
    assert_eq!(o1.stats.steal_remote, 0);
    assert_eq!(o1.stats.remote_words, 0);
    assert_eq!(o1.stats.steal_local, o1.stats.sparks_stolen);
}

/// A cluster topology changes spark *pricing*, never spark
/// *semantics*: the value is unchanged, local/remote steals partition
/// the total, and every remote steal puts envelope-bearing words on
/// the inter-node links.
#[test]
fn cluster_stealing_preserves_results_and_partitions_steals() {
    let c = GphConfig::ghc69_plain(8)
        .with_work_stealing()
        .with_topology(2, 4)
        .without_trace();
    let (v, o) = run_with(c, 96, 150_000, 500);
    assert_eq!(v, expected(96));
    assert_eq!(
        o.stats.steal_local + o.stats.steal_remote,
        o.stats.sparks_stolen,
        "{:?}",
        o.stats
    );
    assert!(o.stats.steal_remote > 0, "{:?}", o.stats);
    assert!(o.stats.remote_words > 0, "{:?}", o.stats);
}

/// The tentpole's ablation gate at test granularity: against the same
/// two-node machine, hierarchical stealing (local-first sweeps, batched
/// remote steals) must need fewer remote steal operations and put
/// fewer words on the inter-node links than flat single-spark
/// stealing — batches amortise the per-message envelope.
#[test]
fn hierarchical_stealing_cuts_remote_traffic_vs_flat() {
    let hier = GphConfig::ghc69_plain(8)
        .with_work_stealing()
        .with_topology(2, 4)
        .without_trace();
    let flat = hier.clone().with_flat_stealing();
    let (vh, oh) = run_with(hier, 96, 150_000, 500);
    let (vf, of_) = run_with(flat, 96, 150_000, 500);
    assert_eq!(vh, vf);
    assert!(of_.stats.steal_remote > 0, "flat: {:?}", of_.stats);
    assert!(
        oh.stats.steal_remote < of_.stats.steal_remote,
        "hier {:?} !< flat {:?}",
        oh.stats.steal_remote,
        of_.stats.steal_remote
    );
    assert!(
        oh.stats.remote_words < of_.stats.remote_words,
        "hier {:?} !< flat {:?}",
        oh.stats.remote_words,
        of_.stats.remote_words
    );
}
