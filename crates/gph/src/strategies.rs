//! Evaluation strategies (§II.B of the paper).
//!
//! "By using normal higher-order functional programming, higher-level
//! parallel programming constructs can be defined just from these two
//! simple primitive constructs \[`par` and `seq`\]." This module is the
//! reproduction's `Control.Parallel.Strategies`: strategy
//! supercombinators built from `par`/`seq`, composable exactly like the
//! paper's examples —
//!
//! ```text
//! parList :: Strategy a -> Strategy [a]
//! parList s []     = ()
//! parList s (x:xs) = s x `par` parList s xs
//! ```
//!
//! A strategy here is a supercombinator of arity 1 whose result is
//! forced for effect (`()`-like); applying one with [`Strategies::using`]
//! mirrors Haskell's ``xs `using` strat``.

use rph_heap::ScId;
use rph_machine::ir::*;
use rph_machine::prelude::Prelude;
use rph_machine::{PrimOp, ProgramBuilder};

/// Installed strategy supercombinators.
#[derive(Debug, Clone, Copy)]
pub struct Strategies {
    /// `rwhnf x`: reduce to weak head normal form (the identity
    /// strategy plus forcing).
    pub rwhnf: ScId,
    /// `rnf x`: reduce to full normal form.
    pub rnf: ScId,
    /// `parList s xs`: spark `s x` for every element.
    /// Applied via [`Self::using`]; `s` is a strategy value (`Pap`).
    pub par_list: ScId,
    /// `parListWhnf xs = parList rwhnf xs` (the common case, saving a
    /// `Pap` allocation).
    pub par_list_whnf: ScId,
    /// `parListRnf xs = parList rnf xs` — the paper's `parList rnf`,
    /// used by its sumEuler.
    pub par_list_rnf: ScId,
    /// `parListChunk n s xs`: split into chunks of `n` and spark the
    /// strategy over each chunk's *whole* contents (spine and
    /// elements) — coarser grains for fine-grained lists.
    pub par_list_chunk: ScId,
    /// `seqList s xs`: apply `s` to every element *sequentially*
    /// (no sparks — the sequential counterpart for calibration).
    pub seq_list: ScId,
    /// ``using x strat = strat x `seq` x``.
    pub using: ScId,
}

/// Install the strategies into a program under construction (requires
/// the prelude for `chunk` and `deepSeq`).
pub fn install(b: &mut ProgramBuilder, pre: &Prelude) -> Strategies {
    // rwhnf x = x `seq` ()            frame: [x]
    let rwhnf = b.def("rwhnf", 1, seq(atom(v(0)), atom(unit())));

    // rnf x = deepseq x `seq` ()
    let rnf = b.def(
        "rnf",
        1,
        seq(prim(PrimOp::DeepSeq, vec![v(0)]), atom(unit())),
    );

    // parList s xs = case xs of
    //   []     -> ()
    //   (y:ys) -> (s y) `par` parList s ys     frame: [s, xs | y, ys]
    let par_list = b.declare("parList", 2);
    b.define(
        par_list,
        case_list(
            atom(v(1)),
            atom(unit()),
            let_(
                vec![thunk_app(v(0), vec![v(2)])], // [4] s y
                par(v(4), app(par_list, vec![v(0), v(3)])),
            ),
        ),
    );

    // parListWhnf xs = parList rwhnf xs
    let par_list_whnf = b.def(
        "parListWhnf",
        1,
        let_(vec![pap(rwhnf, vec![])], app(par_list, vec![v(1), v(0)])),
    );

    // parListRnf xs = parList rnf xs
    let par_list_rnf = b.def(
        "parListRnf",
        1,
        let_(vec![pap(rnf, vec![])], app(par_list, vec![v(1), v(0)])),
    );

    // parListChunk n s xs = parList (seqList s) (chunk n xs)
    //                                  frame: [n, s, xs]
    let seq_list = b.declare("seqList", 2);
    // seqList s xs = case xs of [] -> (); (y:ys) -> (s y) `seq` seqList s ys
    b.define(
        seq_list,
        case_list(
            atom(v(1)),
            atom(unit()),
            let_(
                vec![thunk_app(v(0), vec![v(2)])], // [4] s y
                seq(atom(v(4)), app(seq_list, vec![v(0), v(3)])),
            ),
        ),
    );
    let par_list_chunk = b.def(
        "parListChunk",
        3,
        let_(
            vec![
                thunk(pre.chunk, vec![v(0), v(2)]), // [3] chunk n xs
                pap(seq_list, vec![v(1)]),          // [4] seqList s
            ],
            app(par_list, vec![v(4), v(3)]),
        ),
    );

    // using x strat = (strat x) `seq` x        frame: [x, strat]
    let using = b.def(
        "using",
        2,
        let_(
            vec![thunk_app(v(1), vec![v(0)])], // [2] strat x
            seq(atom(v(2)), atom(v(0))),
        ),
    );

    Strategies {
        rwhnf,
        rnf,
        par_list,
        par_list_whnf,
        par_list_rnf,
        par_list_chunk,
        seq_list,
        using,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GphConfig;
    use crate::runtime::GphRuntime;
    use rph_heap::{Heap, NodeRef, Value};
    use rph_machine::prelude;
    use rph_machine::program::{KernelOut, Program};
    use rph_machine::reference::alloc_int_list;
    use std::sync::Arc;

    struct Fix {
        program: Arc<Program>,
        pre: prelude::Prelude,
        strat: Strategies,
        work: ScId,
    }

    fn fix() -> Fix {
        let mut b = ProgramBuilder::new();
        let pre = prelude::install(&mut b);
        let strat = install(&mut b, &pre);
        let work = b.kernel("work", 1, |heap, args| {
            let x = heap.expect_value(args[0]).expect_int();
            KernelOut {
                result: heap.alloc_value(Value::Int(x * 3)),
                cost: 200_000,
                transient_words: 1_000,
            }
        });
        Fix {
            program: b.build(),
            pre,
            strat,
            work,
        }
    }

    /// Run `sum (map work [1..n] `using` strat_expr)` and return
    /// (value, sparks created).
    fn run_using(f: &Fix, n: i64, build_strat: impl FnOnce(&mut Heap) -> NodeRef) -> (i64, u64) {
        let mut rt = GphRuntime::new(
            f.program.clone(),
            GphConfig::ghc69_plain(4)
                .with_work_stealing()
                .without_trace(),
        );
        let (pre, work, using) = (f.pre, f.work, f.strat.using);
        let out = rt
            .run(move |heap| {
                let data: Vec<i64> = (1..=n).collect();
                let xs = alloc_int_list(heap, &data);
                let wp = heap.alloc_value(Value::Pap {
                    sc: work,
                    args: Box::new([]),
                });
                let mapped = heap.alloc_thunk(pre.map, vec![wp, xs]);
                let strat = build_strat(heap);
                let used = heap.alloc_thunk(using, vec![mapped, strat]);
                heap.alloc_thunk(pre.sum, vec![used])
            })
            .unwrap();
        let value = rt.heap().expect_value(out.result).expect_int();
        (value, out.stats.sparks_created)
    }

    #[test]
    fn par_list_whnf_sparks_every_element() {
        let f = fix();
        let strat_sc = f.strat.par_list_whnf;
        let (v, sparks) = run_using(&f, 20, |heap| {
            heap.alloc_value(Value::Pap {
                sc: strat_sc,
                args: Box::new([]),
            })
        });
        assert_eq!(v, (1..=20).map(|x| x * 3).sum::<i64>());
        assert_eq!(sparks, 20, "one spark per element");
    }

    #[test]
    fn par_list_rnf_matches_whnf_on_flat_lists() {
        let f = fix();
        let rnf_sc = f.strat.par_list_rnf;
        let (v, sparks) = run_using(&f, 12, |heap| {
            heap.alloc_value(Value::Pap {
                sc: rnf_sc,
                args: Box::new([]),
            })
        });
        assert_eq!(v, (1..=12).map(|x| x * 3).sum::<i64>());
        assert_eq!(sparks, 12);
    }

    #[test]
    fn par_list_chunk_sparks_one_per_chunk() {
        let f = fix();
        let (chunk_sc, rwhnf_sc) = (f.strat.par_list_chunk, f.strat.rwhnf);
        // strat = \xs -> parListChunk 5 rwhnf xs, as a partial application.
        let (v, sparks) = run_using(&f, 20, |heap| {
            let five = heap.int(5);
            let rw = heap.alloc_value(Value::Pap {
                sc: rwhnf_sc,
                args: Box::new([]),
            });
            heap.alloc_value(Value::Pap {
                sc: chunk_sc,
                args: vec![five, rw].into(),
            })
        });
        assert_eq!(v, (1..=20).map(|x| x * 3).sum::<i64>());
        assert_eq!(sparks, 4, "20 elements / chunks of 5");
    }

    #[test]
    fn seq_list_creates_no_sparks() {
        let f = fix();
        let (seq_sc, rwhnf_sc) = (f.strat.seq_list, f.strat.rwhnf);
        let (v, sparks) = run_using(&f, 10, |heap| {
            let rw = heap.alloc_value(Value::Pap {
                sc: rwhnf_sc,
                args: Box::new([]),
            });
            heap.alloc_value(Value::Pap {
                sc: seq_sc,
                args: vec![rw].into(),
            })
        });
        assert_eq!(v, (1..=10).map(|x| x * 3).sum::<i64>());
        assert_eq!(sparks, 0);
    }

    #[test]
    fn custom_strategy_composition() {
        // End-users "can easily define tailor-made strategies": spark
        // only every element's rnf via parList (the generic one).
        let f = fix();
        let (par_list, rnf) = (f.strat.par_list, f.strat.rnf);
        let (v, sparks) = run_using(&f, 8, |heap| {
            let r = heap.alloc_value(Value::Pap {
                sc: rnf,
                args: Box::new([]),
            });
            heap.alloc_value(Value::Pap {
                sc: par_list,
                args: vec![r].into(),
            })
        });
        assert_eq!(v, (1..=8).map(|x| x * 3).sum::<i64>());
        assert_eq!(sparks, 8);
    }
}
