//! # The workload registry — one list, every harness
//!
//! Before this module each native harness (`bench_native_json`,
//! `fig3_native_speedup`, `trace_native`, the integration suites)
//! carried its own hard-coded `[(&dyn NativeWorkload, String); 4]`
//! table, and adding a fifth workload meant finding every copy. The
//! registry is the single source of truth: [`registry`] returns the
//! full boxed set at one of three [`Scale`]s, and each workload
//! carries its own [`NativeWorkload::name`] and
//! [`NativeWorkload::default_params`] so the harnesses need no
//! side-band strings.
//!
//! Scales:
//!
//! * [`Scale::Test`] — seconds-long CI smoke sizes; every backend and
//!   worker count still exercises real parallelism.
//! * [`Scale::Quick`] — the `--quick` bench sizes (tens of ms per
//!   run on the reference box).
//! * [`Scale::Full`] — the paper-figure sizes.

use crate::{Apsp, Episim, MatMul, NQueens, NativeWorkload, SumEuler, VisitDist};

/// Problem-size tier for the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny CI-smoke sizes.
    Test,
    /// The `--quick` bench sizes.
    Quick,
    /// The paper-figure sizes.
    Full,
}

/// The registry's episim instance at `scale` — exposed concretely
/// (not boxed) because the bench harness's dedicated episim section
/// needs the workload-specific API ([`Episim::run_eden_native`]'s
/// tally, [`Episim::expected_tally`]) that the object-safe trait
/// deliberately does not carry. Keeping the constructor here means
/// the section and the registry can never disagree about sizes.
pub fn episim(scale: Scale) -> Episim {
    match scale {
        Scale::Test => Episim::new(240, 48, 4, 0x5EED, VisitDist::Skewed),
        Scale::Quick => Episim::new(4_000, 256, 8, 0x5EED, VisitDist::Skewed),
        Scale::Full => Episim::new(20_000, 512, 16, 0x5EED, VisitDist::Skewed),
    }
}

/// The five benchmark workloads at the requested scale, in canonical
/// order: the original four (sumEuler, matmul, apsp, nqueens) first —
/// harnesses assert this prefix stays stable — then episim.
pub fn registry(scale: Scale) -> Vec<Box<dyn NativeWorkload>> {
    match scale {
        Scale::Test => vec![
            Box::new(SumEuler::new(300).with_chunk_size(20)),
            Box::new(MatMul::new(40, 4)),
            Box::new(Apsp::new(24)),
            Box::new(NQueens::new(8).with_spawn_depth(2)),
            Box::new(episim(scale)),
        ],
        Scale::Quick => vec![
            Box::new(SumEuler::new(1_500)),
            Box::new(MatMul::new(240, 6)),
            Box::new(Apsp::new(96)),
            Box::new(NQueens::new(11).with_spawn_depth(3)),
            Box::new(episim(scale)),
        ],
        Scale::Full => vec![
            Box::new(SumEuler::new(6_000)),
            Box::new(MatMul::new(480, 8)),
            Box::new(Apsp::new(256)),
            Box::new(NQueens::new(13).with_spawn_depth(4)),
            Box::new(episim(scale)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_stable_and_legacy_prefix_holds() {
        for scale in [Scale::Test, Scale::Quick, Scale::Full] {
            let names: Vec<&str> = registry(scale).iter().map(|w| w.name()).collect();
            assert_eq!(
                names,
                ["sum_euler", "matmul", "apsp", "nqueens", "episim"],
                "scale {scale:?}"
            );
        }
    }

    #[test]
    fn params_strings_are_non_empty_and_distinct() {
        let params: Vec<String> = registry(Scale::Test)
            .iter()
            .map(|w| w.default_params())
            .collect();
        for p in &params {
            assert!(!p.is_empty());
        }
        let mut dedup = params.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), params.len(), "{params:?}");
    }

    #[test]
    fn test_scale_oracles_agree_with_expected_value() {
        // `expected_value` must be the sequential oracle for each
        // entry; run it twice to pin determinism.
        for w in registry(Scale::Test) {
            assert_eq!(w.expected_value(), w.expected_value(), "{}", w.name());
        }
    }
}
