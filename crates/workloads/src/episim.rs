//! # episim — an EpiSimdemics-style agent/epidemic simulation
//!
//! The first *data-partitioned, iterated* workload (ROADMAP item 2a):
//! `N` agents carry S/E/I/R disease state and a private RNG stream,
//! `L` locations are the unit of sharding, and the simulation iterates
//! rounds of
//!
//! 1. **visit** — every agent draws a location to visit this round
//!    (mostly a window around its home; otherwise a far visit, drawn
//!    uniformly or from a Zipf head — the skew knob),
//! 2. **interaction** — at each location, susceptible visitors draw
//!    per-contact infection Bernoullis against the infectious
//!    headcount (capped at [`CONTACT_CAP`] contacts),
//! 3. **progression + migration** — exposed/infectious timers tick,
//!    and a migration draw may re-home the agent at the visited
//!    location.
//!
//! Unlike the four flat workloads, the parallel structure is a
//! *round barrier with all-to-all movement*: agents physically travel
//! between location shards twice per round (out to the visited
//! location, back to the — possibly new — home), so on distributed
//! backends the migration batches are the algorithm's own traffic, not
//! scheduler overhead.
//!
//! ## Determinism under parallelism
//!
//! Every backend must produce the same final agent population
//! bit-for-bit at every worker count. Three design rules make that
//! hold *by construction* rather than by locking:
//!
//! * **Per-agent RNG streams.** Each agent owns a splitmix64 stream
//!   seeded from `(seed, id)`. A round consumes a deterministic number
//!   of draws per agent — two for the visit, `min(I, CONTACT_CAP)`
//!   for infection (the count depends only on the pre-round states of
//!   the location's visitors, never on execution order), one for
//!   migration — so streams stay aligned no matter which thread runs
//!   the agent.
//! * **Order-independent interaction.** A location's infectious count
//!   is a function of the *set* of visitors (states at round entry);
//!   each visitor then updates purely from its own state + stream.
//!   No update reads another agent's post-update state.
//! * **Commutative checksum.** The result is a wrapping sum of a
//!   splitmix hash of each final agent record, so shard order and
//!   partition boundaries cannot leak into the value.
//!
//! The sequential simulator ([`Episim::run_seq`]) is the oracle; the
//! GpH, sim-Eden, native-steal and native-Eden drivers all reuse the
//! same per-agent kernels [`Episim::visit_of`] / [`Episim::interact`]
//! and are differentially tested against it (and each other).

use crate::native::{merge_trace, run_iter_on, IterNative, NativeMeasured, NativeWorkload};
use crate::sum_euler::list_of;
use crate::Measured;
use rph_eden::job::{NativeCtx, NativeLogic, NativeStep};
use rph_eden::{CommMode, EdenConfig, EdenRuntime, Endpoint};
use rph_gph::{GphConfig, GphRuntime};
use rph_heap::{Heap, NodeRef, Value};
use rph_machine::ir::{app, seq, v};
use rph_machine::prelude;
use rph_machine::program::{KernelOut, ProgramBuilder};
use rph_native::{
    try_exchange, try_par_map_reduce, ExchangeJob, Job, NativeConfig, Pool, RunError,
};

/// Percent of visits that stay within the home window.
pub const LOCAL_PCT: u64 = 70;
/// Width of the home visit window (locations).
pub const LOCAL_WINDOW: u64 = 8;
/// Per-contact infection probability, percent.
pub const INFECT_PCT: u64 = 30;
/// A susceptible meets at most this many infectious visitors.
pub const CONTACT_CAP: u32 = 4;
/// Chance (percent) of re-homing at the visited location.
pub const MIG_PCT: u64 = 10;
/// Rounds spent exposed before turning infectious.
pub const EXPOSED_ROUNDS: u32 = 2;
/// Rounds spent infectious before recovering.
pub const INFECTIOUS_ROUNDS: u32 = 3;
/// One agent in this many starts out infectious.
pub const INIT_INFECTED_EVERY: u32 = 50;

/// How far (non-window) visits pick their target location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisitDist {
    /// Uniform over all locations.
    Uniform,
    /// Zipf(1) over all locations: location 0 is the hot spot. This
    /// is the load-imbalance knob — per-location interaction work is
    /// proportional to occupancy, so the head locations make fixed
    /// per-block dealing lose to lazy splitting.
    Skewed,
}

impl VisitDist {
    /// Stable label used in params strings and test matrices.
    pub fn label(self) -> &'static str {
        match self {
            VisitDist::Uniform => "uniform",
            VisitDist::Skewed => "skewed",
        }
    }
}

/// Disease state, encoded small for message packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Seir {
    Susceptible = 0,
    Exposed = 1,
    Infectious = 2,
    Recovered = 3,
}

impl Seir {
    fn from_u8(v: u8) -> Seir {
        match v {
            0 => Seir::Susceptible,
            1 => Seir::Exposed,
            2 => Seir::Infectious,
            3 => Seir::Recovered,
            _ => unreachable!("invalid SEIR encoding {v}"),
        }
    }
}

/// One agent: identity, disease state, home, and its private RNG
/// stream position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Agent {
    pub id: u32,
    pub state: Seir,
    /// Rounds remaining in the current E or I phase.
    pub timer: u32,
    pub home: u32,
    /// splitmix64 stream state; advanced only by this agent's draws.
    pub rng: u64,
}

/// splitmix64 finaliser.
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Advance a splitmix64 stream one draw.
fn next(rng: &mut u64) -> u64 {
    *rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
    mix(*rng)
}

impl Agent {
    /// Pack into three message words (the wire/heap format every
    /// distributed backend ships at round boundaries).
    pub fn encode(&self) -> [u64; 3] {
        [
            self.id as u64 | ((self.state as u64) << 32) | ((self.timer as u64) << 40),
            self.home as u64,
            self.rng,
        ]
    }

    /// Inverse of [`Agent::encode`].
    pub fn decode(w: [u64; 3]) -> Agent {
        Agent {
            id: w[0] as u32,
            state: Seir::from_u8(((w[0] >> 32) & 0xFF) as u8),
            timer: (w[0] >> 40) as u32,
            home: w[1] as u32,
            rng: w[2],
        }
    }

    /// Position-independent record hash; the workload checksum is the
    /// wrapping sum of these over the final population.
    pub fn hash(&self) -> u64 {
        let [a, b, c] = self.encode();
        mix(a ^ mix(b ^ mix(c)))
    }
}

/// Commutative population checksum: wrapping sum of per-agent hashes,
/// reinterpreted as the `i64` every oracle harness expects.
pub fn checksum<'a>(agents: impl IntoIterator<Item = &'a Agent>) -> i64 {
    agents
        .into_iter()
        .fold(0u64, |acc, a| acc.wrapping_add(a.hash())) as i64
}

/// S/E/I/R headcounts (in that order).
pub fn seir_tally<'a>(agents: impl IntoIterator<Item = &'a Agent>) -> [u64; 4] {
    let mut t = [0u64; 4];
    for a in agents {
        t[a.state as usize] += 1;
    }
    t
}

/// Balanced contiguous partition of `n` items into `parts`; returns
/// part `p`'s `[lo, hi)` range. Every backend shards locations with
/// this (the checksum is partition-independent, but sharing one
/// partition keeps per-shard stats comparable across backends).
pub fn block_range(n: usize, parts: usize, p: usize) -> (usize, usize) {
    let parts = parts.max(1);
    (n * p / parts, n * (p + 1) / parts)
}

/// The workload definition: sizes, seed, visit skew, and the location
/// block count used as steal-backend task granularity.
#[derive(Debug, Clone)]
pub struct Episim {
    pub agents: usize,
    pub locations: usize,
    pub rounds: usize,
    pub seed: u64,
    pub dist: VisitDist,
    /// Location blocks per phase on the steal backend (task count).
    pub blocks: usize,
    /// Cumulative integer Zipf weights over locations (empty when
    /// `dist` is uniform).
    zipf_cum: Vec<u64>,
}

impl Episim {
    pub fn new(
        agents: usize,
        locations: usize,
        rounds: usize,
        seed: u64,
        dist: VisitDist,
    ) -> Episim {
        assert!(
            agents > 0 && locations > 0,
            "episim needs agents and locations"
        );
        let zipf_cum = match dist {
            VisitDist::Uniform => Vec::new(),
            VisitDist::Skewed => {
                // Integer harmonic weights w_l = SCALE/(l+1), summed.
                const SCALE: u64 = 1 << 20;
                let mut cum = Vec::with_capacity(locations);
                let mut acc = 0u64;
                for l in 0..locations as u64 {
                    acc += SCALE / (l + 1);
                    cum.push(acc);
                }
                cum
            }
        };
        Episim {
            agents,
            locations,
            rounds,
            seed,
            dist,
            blocks: locations.min(32),
            zipf_cum,
        }
    }

    /// Pick a location from the Zipf head given a raw draw.
    fn zipf_pick(&self, u: u64) -> u32 {
        let total = *self.zipf_cum.last().expect("skewed dist has weights");
        let target = u % total;
        self.zipf_cum.partition_point(|&c| c <= target) as u32
    }

    /// The initial population: homes dealt round-robin over locations,
    /// every [`INIT_INFECTED_EVERY`]-th agent seeded infectious, each
    /// RNG stream split off `(seed, id)`.
    pub fn init_agents(&self) -> Vec<Agent> {
        (0..self.agents)
            .map(|i| {
                let id = i as u32;
                let (state, timer) = if id.is_multiple_of(INIT_INFECTED_EVERY) {
                    (Seir::Infectious, INFECTIOUS_ROUNDS)
                } else {
                    (Seir::Susceptible, 0)
                };
                Agent {
                    id,
                    state,
                    timer,
                    home: id % self.locations as u32,
                    rng: mix(self.seed ^ (((i as u64) << 1) | 1)),
                }
            })
            .collect()
    }

    /// Phase 1 kernel: the agent (at home) draws this round's visit
    /// target. Consumes exactly two draws.
    pub fn visit_of(&self, a: &mut Agent) -> u32 {
        let u1 = next(&mut a.rng);
        let u2 = next(&mut a.rng);
        let l = self.locations as u64;
        if u1 % 100 < LOCAL_PCT {
            let w = LOCAL_WINDOW.min(l);
            ((a.home as u64 + u2 % w) % l) as u32
        } else {
            match self.dist {
                VisitDist::Uniform => (u2 % l) as u32,
                VisitDist::Skewed => self.zipf_pick(u2),
            }
        }
    }

    /// Phase 2 kernel: infection draws (for susceptibles), timer
    /// progression (for exposed/infectious), then the migration draw.
    /// `here` is the visited location, `infectious` its infectious
    /// headcount at round entry. Consumes `min(infectious,
    /// CONTACT_CAP)` draws if susceptible, plus one migration draw —
    /// a count independent of execution order.
    pub fn interact(&self, a: &mut Agent, here: u32, infectious: u32) {
        match a.state {
            Seir::Susceptible => {
                let contacts = infectious.min(CONTACT_CAP);
                for _ in 0..contacts {
                    let u = next(&mut a.rng);
                    if a.state == Seir::Susceptible && u % 100 < INFECT_PCT {
                        a.state = Seir::Exposed;
                        a.timer = EXPOSED_ROUNDS;
                    }
                }
            }
            Seir::Exposed => {
                a.timer -= 1;
                if a.timer == 0 {
                    a.state = Seir::Infectious;
                    a.timer = INFECTIOUS_ROUNDS;
                }
            }
            Seir::Infectious => {
                a.timer -= 1;
                if a.timer == 0 {
                    a.state = Seir::Recovered;
                }
            }
            Seir::Recovered => {}
        }
        if next(&mut a.rng) % 100 < MIG_PCT {
            a.home = here;
        }
    }

    /// The sequential oracle: the whole simulation on one thread,
    /// returning the final population in id order.
    pub fn run_seq(&self) -> Vec<Agent> {
        let mut agents = self.init_agents();
        let mut visits = vec![0u32; self.agents];
        let mut infectious = vec![0u32; self.locations];
        for _ in 0..self.rounds {
            for (a, v) in agents.iter_mut().zip(visits.iter_mut()) {
                *v = self.visit_of(a);
            }
            infectious.iter_mut().for_each(|c| *c = 0);
            for (a, &v) in agents.iter().zip(&visits) {
                if a.state == Seir::Infectious {
                    infectious[v as usize] += 1;
                }
            }
            for (a, &v) in agents.iter_mut().zip(&visits) {
                self.interact(a, v, infectious[v as usize]);
            }
        }
        agents
    }

    /// Oracle checksum (what every backend must reproduce).
    pub fn expected(&self) -> i64 {
        checksum(&self.run_seq())
    }

    /// Oracle S/E/I/R tally of the final population.
    pub fn expected_tally(&self) -> [u64; 4] {
        seir_tally(&self.run_seq())
    }
}

// ---------------------------------------------------- native steal backend

/// Carried state of the steal backend's phased waves: agents grouped
/// by location — homes between rounds, visitors mid-round — plus the
/// per-location infectious headcounts the interaction phase reads.
pub struct EpiState {
    by_loc: Vec<Vec<Agent>>,
    infectious: Vec<u32>,
}

/// One phase as a flat job over location *blocks*: task `b` processes
/// every agent currently at block `b`'s locations. Under the skewed
/// visit distribution the interaction phase's per-block work follows
/// the occupancy skew — the load shape lazy range splitting exists
/// for.
pub struct EpiPhase<'a> {
    w: &'a Episim,
    state: &'a EpiState,
    /// 0 = visit draw (at home), 1 = interact + migrate (at visit).
    phase: usize,
}

impl Job for EpiPhase<'_> {
    type Out = Vec<(u32, Agent)>;
    fn len(&self) -> usize {
        self.w.blocks
    }
    fn run(&self, b: usize) -> Vec<(u32, Agent)> {
        let (lo, hi) = block_range(self.w.locations, self.w.blocks, b);
        let mut movers = Vec::new();
        for loc in lo..hi {
            for &agent in &self.state.by_loc[loc] {
                let mut a = agent;
                if self.phase == 0 {
                    let v = self.w.visit_of(&mut a);
                    movers.push((v, a));
                } else {
                    self.w
                        .interact(&mut a, loc as u32, self.state.infectious[loc]);
                    movers.push((a.home, a));
                }
            }
        }
        movers
    }
}

/// The steal-backend form through the iterated seam: `2·rounds`
/// barrier-separated waves (visit, interact) whose `absorb` is the
/// regroup — by visited location after phase 1 (counting infectious
/// arrivals), by (possibly migrated) home after phase 2.
impl IterNative for Episim {
    type State = EpiState;
    type Out = Vec<(u32, Agent)>;
    type RoundJob<'a> = EpiPhase<'a>;

    fn rounds(&self) -> usize {
        2 * self.rounds
    }
    fn init_state(&self) -> EpiState {
        let mut by_loc = vec![Vec::new(); self.locations];
        for a in self.init_agents() {
            by_loc[a.home as usize].push(a);
        }
        EpiState {
            by_loc,
            infectious: vec![0; self.locations],
        }
    }
    fn round_job<'a>(&'a self, round: usize, state: &'a EpiState) -> EpiPhase<'a> {
        EpiPhase {
            w: self,
            state,
            phase: round % 2,
        }
    }
    fn absorb(&self, round: usize, state: &mut EpiState, values: Vec<Vec<(u32, Agent)>>) {
        for v in state.by_loc.iter_mut() {
            v.clear();
        }
        state.infectious.iter_mut().for_each(|c| *c = 0);
        let arriving_to_visit = round.is_multiple_of(2);
        for movers in values {
            for (dest, a) in movers {
                if arriving_to_visit && a.state == Seir::Infectious {
                    state.infectious[dest as usize] += 1;
                }
                state.by_loc[dest as usize].push(a);
            }
        }
    }
    fn finish(&self, state: EpiState) -> i64 {
        checksum(state.by_loc.iter().flatten())
    }
}

// ----------------------------------------------------- native Eden backend

/// Wire format of one moving agent: destination location + the three
/// [`Agent::encode`] words.
const MOVER_WORDS: usize = 4;

fn push_mover(batch: &mut Vec<u64>, dest: u32, a: &Agent) {
    let [w0, w1, w2] = a.encode();
    batch.extend_from_slice(&[dest as u64, w0, w1, w2]);
}

fn movers(batch: &[u64]) -> impl Iterator<Item = (u32, Agent)> + '_ {
    batch
        .chunks_exact(MOVER_WORDS)
        .map(|c| (c[0] as u32, Agent::decode([c[1], c[2], c[3]])))
}

/// How locations map onto partitions on the distributed backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Contiguous location blocks per partition ([`block_range`]) —
    /// the hierarchical placement: a home-window visit usually stays
    /// on the owning partition or an adjacent one (which a cluster
    /// topology keeps on the same node).
    Contiguous,
    /// Round-robin `loc % parts` — the flat-placement ablation:
    /// home-window visits scatter across every partition, so nearly
    /// all movement crosses shard (and node) boundaries.
    Scatter,
}

/// The location → owning-partition routing table for a placement.
pub fn owner_map(locations: usize, parts: usize, placement: Placement) -> Vec<u32> {
    let mut owner = vec![0u32; locations];
    match placement {
        Placement::Contiguous => {
            for p in 0..parts {
                let (lo, hi) = block_range(locations, parts, p);
                for slot in owner.iter_mut().take(hi).skip(lo) {
                    *slot = p as u32;
                }
            }
        }
        Placement::Scatter => {
            for (loc, slot) in owner.iter_mut().enumerate() {
                *slot = (loc % parts) as u32;
            }
        }
    }
    owner
}

/// One partition's state under the round-barrier exchange: the shared
/// location→partition routing table and scratch bins over its owned
/// locations (always drained by the end of each step — between steps
/// the whole population travels inside the batches, including the
/// partition's own self-addressed one). This core is shared verbatim
/// by the native-Eden exchange skeleton and the simulator's Eden
/// shard processes, which is what makes their checksums bit-identical
/// by construction.
pub struct EpiShard {
    part: u32,
    owner: Vec<u32>,
    by_loc: Vec<Vec<Agent>>,
    infectious: Vec<u32>,
}

impl EpiShard {
    /// A fresh shard with the initial population it owns staged at
    /// their home locations.
    pub fn new(w: &Episim, part: u32, owner: Vec<u32>) -> EpiShard {
        let mut by_loc = vec![Vec::new(); w.locations];
        for a in w.init_agents() {
            if owner[a.home as usize] == part {
                by_loc[a.home as usize].push(a);
            }
        }
        let infectious = vec![0; w.locations];
        EpiShard {
            part,
            owner,
            by_loc,
            infectious,
        }
    }

    /// One phase on this shard: absorb `arrivals`, process every owned
    /// location, return outgoing movers grouped by destination
    /// partition (slot `self.part` is the self-batch). Even steps are
    /// the visit phase (arrivals are home-comers from the previous
    /// round), odd steps the interaction phase (arrivals are this
    /// round's visitors, whose infectious headcount must be complete
    /// before any draw).
    pub fn step(
        &mut self,
        w: &Episim,
        parts: usize,
        step: usize,
        arrivals: impl IntoIterator<Item = (u32, Agent)>,
    ) -> Vec<Vec<(u32, Agent)>> {
        let mut out: Vec<Vec<(u32, Agent)>> = (0..parts).map(|_| Vec::new()).collect();
        if step.is_multiple_of(2) {
            for (dest, a) in arrivals {
                debug_assert_eq!(self.owner[dest as usize], self.part);
                self.by_loc[dest as usize].push(a);
            }
            for loc in 0..w.locations {
                if self.owner[loc] != self.part {
                    continue;
                }
                let mut bin = std::mem::take(&mut self.by_loc[loc]);
                for mut a in bin.drain(..) {
                    let v = w.visit_of(&mut a);
                    out[self.owner[v as usize] as usize].push((v, a));
                }
                self.by_loc[loc] = bin;
            }
        } else {
            for (dest, a) in arrivals {
                let i = dest as usize;
                if a.state == Seir::Infectious {
                    self.infectious[i] += 1;
                }
                self.by_loc[i].push(a);
            }
            for loc in 0..w.locations {
                if self.owner[loc] != self.part {
                    continue;
                }
                let inf = self.infectious[loc];
                let mut bin = std::mem::take(&mut self.by_loc[loc]);
                for mut a in bin.drain(..) {
                    w.interact(&mut a, loc as u32, inf);
                    out[self.owner[a.home as usize] as usize].push((a.home, a));
                }
                self.by_loc[loc] = bin;
                self.infectious[loc] = 0;
            }
        }
        out
    }

    /// Consume the shard after the last interaction phase: the final
    /// home-coming `arrivals` plus anything still staged (only
    /// possible with zero rounds) are this partition's residents.
    pub fn residents(mut self, arrivals: impl IntoIterator<Item = (u32, Agent)>) -> Vec<Agent> {
        for (dest, a) in arrivals {
            self.by_loc[dest as usize].push(a);
        }
        self.by_loc.into_iter().flatten().collect()
    }
}

/// The native-Eden form: locations owned per-PE, one exchange step
/// per phase (`2·rounds` total). Every batch is the algorithm's own
/// migration traffic — agents travelling to their visit target and
/// back to their (possibly new) home — so `remote_words` measures the
/// workload, not the scheduler.
struct EpiExchange<'a> {
    w: &'a Episim,
}

impl ExchangeJob for EpiExchange<'_> {
    type State = EpiShard;
    type Batch = Vec<u64>;
    type Out = Vec<u64>;

    fn steps(&self) -> usize {
        2 * self.w.rounds
    }

    fn init(&self, part: usize, parts: usize) -> EpiShard {
        EpiShard::new(
            self.w,
            part as u32,
            owner_map(self.w.locations, parts, Placement::Contiguous),
        )
    }

    fn exchange(
        &self,
        _part: usize,
        parts: usize,
        step: usize,
        state: &mut EpiShard,
        inbox: Vec<Vec<u64>>,
    ) -> Vec<Vec<u64>> {
        let arrivals = inbox.iter().flat_map(|b| movers(b));
        state
            .step(self.w, parts, step, arrivals)
            .into_iter()
            .map(|group| {
                let mut batch = Vec::with_capacity(group.len() * MOVER_WORDS);
                for (dest, a) in group {
                    push_mover(&mut batch, dest, &a);
                }
                batch
            })
            .collect()
    }

    fn finish(
        &self,
        _part: usize,
        _parts: usize,
        state: EpiShard,
        inbox: Vec<Vec<u64>>,
    ) -> Vec<u64> {
        // The last interaction phase's batches are this partition's
        // final residents; with zero rounds the initial staging is.
        let arrivals = inbox.iter().flat_map(|b| movers(b));
        let mut recs = Vec::new();
        for a in state.residents(arrivals) {
            recs.extend_from_slice(&a.encode());
        }
        recs
    }
}

/// Per-location-block S/E/I/R tallies as a flat reduction job — the
/// `parMapReduce` skeleton's input on the native Eden backend.
pub struct TallyJob<'a> {
    w: &'a Episim,
    by_loc: Vec<Vec<Agent>>,
}

impl Job for TallyJob<'_> {
    type Out = Vec<u64>;
    fn len(&self) -> usize {
        self.w.blocks
    }
    fn run(&self, b: usize) -> Vec<u64> {
        let (lo, hi) = block_range(self.w.locations, self.w.blocks, b);
        let mut t = vec![0u64; 4];
        for bin in &self.by_loc[lo..hi] {
            for a in bin {
                t[a.state as usize] += 1;
            }
        }
        t
    }
}

/// The tally fold: elementwise headcount sum (associative *and*
/// commutative, so any grouping is bit-identical).
pub fn tally_fold(mut a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
    for (x, y) in a.iter_mut().zip(&b) {
        *x += y;
    }
    a
}

impl Episim {
    /// The full native-Eden run: the exchange skeleton for the rounds,
    /// then the `parMapReduce` skeleton for the final per-location
    /// S/E/I/R tallies. Returns the merged measurement plus the tally
    /// (which tests pin against both the sequential fold and the
    /// oracle population).
    pub fn run_eden_native(
        &self,
        cfg: &NativeConfig,
    ) -> Result<(NativeMeasured, [u64; 4]), RunError> {
        let out = try_exchange(&EpiExchange { w: self }, cfg)?;
        let mut by_loc = vec![Vec::new(); self.locations];
        let mut sum = 0u64;
        for part in &out.values {
            for rec in part.chunks_exact(3) {
                let a = Agent::decode([rec[0], rec[1], rec[2]]);
                sum = sum.wrapping_add(a.hash());
                by_loc[a.home as usize].push(a);
            }
        }
        let tally_run = try_par_map_reduce(&TallyJob { w: self, by_loc }, cfg, tally_fold)?;
        let tally: [u64; 4] = tally_run
            .values
            .first()
            .map(|v| v.clone().try_into().expect("tally has four counts"))
            .unwrap_or([0; 4]);
        let mut m = NativeMeasured {
            value: sum as i64,
            wall: out.wall + tally_run.wall,
            stats: out.stats,
            trace: out.trace,
            trace_dropped: out.trace_dropped + tally_run.trace_dropped,
        };
        m.stats.merge(&tally_run.stats);
        merge_trace(&mut m.trace, tally_run.trace);
        Ok((m, tally))
    }
}

impl NativeWorkload for Episim {
    fn name(&self) -> &'static str {
        "episim"
    }
    fn default_params(&self) -> String {
        format!(
            "n={} loc={} rounds={} dist={}",
            self.agents,
            self.locations,
            self.rounds,
            self.dist.label()
        )
    }
    fn expected_value(&self) -> i64 {
        self.expected()
    }
    /// Steal backend: `2·rounds` pooled waves over location blocks.
    /// Eden backend: the exchange skeleton (locations owned per-PE,
    /// migration batches at every phase barrier) plus the
    /// `parMapReduce` tally pass.
    fn run_on(&self, cfg: &NativeConfig) -> Result<NativeMeasured, RunError> {
        match cfg.backend {
            rph_native::BackendKind::Steal => {
                run_iter_on(self, &mut Pool::new(cfg)).map_err(RunError::from)
            }
            rph_native::BackendKind::Eden => self.run_eden_native(cfg).map(|(m, _)| m),
        }
    }
}

// ------------------------------------------------------ simulator drivers

/// Work units charged per agent for a visit draw.
const VISIT_COST: u64 = 40;
/// Work units charged per agent for the interaction phase.
const INTERACT_COST: u64 = 80;
/// Work units charged per mover scanned while regrouping.
const GATHER_COST: u64 = 4;

/// Collect the spine of a fully-evaluated heap list.
fn walk_list(heap: &Heap, mut cur: NodeRef) -> Vec<NodeRef> {
    let mut out = Vec::new();
    loop {
        let next = match heap.expect_value(cur) {
            Value::Cons(h, t) => {
                out.push(*h);
                *t
            }
            Value::Nil => return out,
            other => panic!("episim: expected a list spine, got {other:?}"),
        };
        cur = next;
    }
}

/// Decode an agent cell (a tuple of the three [`Agent::encode`]
/// words) from the heap.
fn heap_agent(heap: &Heap, node: NodeRef) -> Agent {
    match heap.expect_value(node) {
        Value::Tuple(els) if els.len() == 3 => {
            let w = |i: usize| heap.expect_value(els[i]).expect_int() as u64;
            Agent::decode([w(0), w(1), w(2)])
        }
        other => panic!("episim: expected an agent cell, got {other:?}"),
    }
}

/// Allocate an agent cell: a boxed tuple of three boxed ints — the
/// deliberate heap-pressure representation (each agent is five small
/// nodes the GC has to chase, like the paper's cons-heavy Haskell
/// heaps).
fn alloc_agent(heap: &mut Heap, a: &Agent) -> NodeRef {
    let [w0, w1, w2] = a.encode();
    let n0 = heap.int(w0 as i64);
    let n1 = heap.int(w1 as i64);
    let n2 = heap.int(w2 as i64);
    heap.alloc_value(Value::Tuple(vec![n0, n1, n2].into()))
}

/// Allocate a mover: `(destination location, agent cell)`.
fn alloc_mover(heap: &mut Heap, dest: u32, agent_cell: NodeRef) -> NodeRef {
    let d = heap.int(dest as i64);
    heap.alloc_value(Value::Tuple(vec![d, agent_cell].into()))
}

/// Decode a mover's destination and its agent-cell node.
fn heap_mover(heap: &Heap, node: NodeRef) -> (u32, NodeRef) {
    match heap.expect_value(node) {
        Value::Tuple(els) if els.len() == 2 => {
            (heap.expect_value(els[0]).expect_int() as u32, els[1])
        }
        other => panic!("episim: expected a mover, got {other:?}"),
    }
}

impl Episim {
    /// Shared-heap GpH run: the whole `2·rounds × blocks` thunk graph
    /// is built up front (like the APSP driver "sparks an evaluation
    /// for each row in advance") and sparked in layer order; demand
    /// flows backwards from the per-block checksum partials. Agents
    /// live as tuple-of-int cells, so the population churns the shared
    /// heap every round — the allocation pressure this workload is
    /// meant to put on the per-capability nurseries.
    pub fn run_gph(&self, config: GphConfig) -> Result<Measured, String> {
        let blocks = self.blocks;
        let block_of = owner_map(self.locations, blocks, Placement::Contiguous);

        let mut b = ProgramBuilder::new();
        let pre = prelude::install(&mut b);
        let w = self.clone();
        // visitBlock pop: one visit draw per agent; emits movers.
        let visit_k = b.kernel("visitBlock", 1, move |heap, args| {
            let cells = walk_list(heap, args[0]);
            let mut movers = Vec::with_capacity(cells.len());
            for cell in cells {
                let mut a = heap_agent(heap, cell);
                let dest = w.visit_of(&mut a);
                let cell2 = alloc_agent(heap, &a);
                movers.push(alloc_mover(heap, dest, cell2));
            }
            let cost = VISIT_COST * movers.len() as u64 + 10;
            KernelOut {
                result: list_of(heap, &movers),
                cost,
                transient_words: 0,
            }
        });
        let bo = block_of.clone();
        // gatherVisit b m_0 … m_{B-1}: movers bound for block b.
        let gather_visit_k = b.kernel("gatherVisit", blocks + 1, move |heap, args| {
            let blk = heap.expect_value(args[0]).expect_int() as u32;
            let mut mine = Vec::new();
            let mut scanned = 0u64;
            for &m in &args[1..] {
                for mv in walk_list(heap, m) {
                    scanned += 1;
                    let (dest, _) = heap_mover(heap, mv);
                    if bo[dest as usize] == blk {
                        mine.push(mv);
                    }
                }
            }
            KernelOut {
                result: list_of(heap, &mine),
                cost: GATHER_COST * scanned + 10,
                transient_words: 0,
            }
        });
        let w = self.clone();
        // interactBlock visitors: tally infectious per location over
        // the *pre-state* set, then infect/progress/migrate each
        // visitor; emits home-bound movers.
        let interact_k = b.kernel("interactBlock", 1, move |heap, args| {
            let movers = walk_list(heap, args[0]);
            let mut decoded = Vec::with_capacity(movers.len());
            let mut infectious = vec![0u32; w.locations];
            for mv in movers {
                let (loc, cell) = heap_mover(heap, mv);
                let a = heap_agent(heap, cell);
                if a.state == Seir::Infectious {
                    infectious[loc as usize] += 1;
                }
                decoded.push((loc, a));
            }
            let mut out = Vec::with_capacity(decoded.len());
            for (loc, mut a) in decoded {
                w.interact(&mut a, loc, infectious[loc as usize]);
                let cell = alloc_agent(heap, &a);
                out.push(alloc_mover(heap, a.home, cell));
            }
            let cost = INTERACT_COST * out.len() as u64 + 10;
            KernelOut {
                result: list_of(heap, &out),
                cost,
                transient_words: 0,
            }
        });
        let bo = block_of.clone();
        // gatherHome b m_0 … m_{B-1}: agents homed in block b (the
        // mover wrapper is stripped; the agent cells are shared).
        let gather_home_k = b.kernel("gatherHome", blocks + 1, move |heap, args| {
            let blk = heap.expect_value(args[0]).expect_int() as u32;
            let mut mine = Vec::new();
            let mut scanned = 0u64;
            for &m in &args[1..] {
                for mv in walk_list(heap, m) {
                    scanned += 1;
                    let (dest, cell) = heap_mover(heap, mv);
                    if bo[dest as usize] == blk {
                        mine.push(cell);
                    }
                }
            }
            KernelOut {
                result: list_of(heap, &mine),
                cost: GATHER_COST * scanned + 10,
                transient_words: 0,
            }
        });
        // checksumBlock pop: the block's wrapping hash-sum partial.
        let checksum_k = b.kernel("checksumBlock", 1, move |heap, args| {
            let cells = walk_list(heap, args[0]);
            let mut sum = 0u64;
            for cell in &cells {
                sum = sum.wrapping_add(heap_agent(heap, *cell).hash());
            }
            KernelOut {
                result: heap.alloc_value(Value::Int(sum as i64)),
                cost: 6 * cells.len() as u64 + 5,
                transient_words: 0,
            }
        });
        // gphMain all partials = sparkList all `seq` sum partials
        // (prelude Add wraps, so the partial fold is exact).
        let gph_main = b.def(
            "gphMain",
            2,
            seq(app(pre.spark_list, vec![v(0)]), app(pre.sum, vec![v(1)])),
        );
        let program = b.build();

        let mut rt = GphRuntime::new(program, config);
        let this = self.clone();
        let block_of = owner_map(self.locations, blocks, Placement::Contiguous);
        let out = rt.run(|heap| {
            // Initial per-block populations.
            let mut grouped: Vec<Vec<NodeRef>> = vec![Vec::new(); blocks];
            for a in this.init_agents() {
                let cell = alloc_agent(heap, &a);
                grouped[block_of[a.home as usize] as usize].push(cell);
            }
            let mut pop: Vec<NodeRef> = grouped.iter().map(|g| list_of(heap, g)).collect();
            let mut all = Vec::new();
            for _ in 0..this.rounds {
                let visits: Vec<NodeRef> = pop
                    .iter()
                    .map(|&p| heap.alloc_thunk(visit_k, vec![p]))
                    .collect();
                let popv: Vec<NodeRef> = (0..blocks)
                    .map(|blk| {
                        let mut args = vec![heap.int(blk as i64)];
                        args.extend_from_slice(&visits);
                        heap.alloc_thunk(gather_visit_k, args)
                    })
                    .collect();
                let inter: Vec<NodeRef> = popv
                    .iter()
                    .map(|&p| heap.alloc_thunk(interact_k, vec![p]))
                    .collect();
                let next: Vec<NodeRef> = (0..blocks)
                    .map(|blk| {
                        let mut args = vec![heap.int(blk as i64)];
                        args.extend_from_slice(&inter);
                        heap.alloc_thunk(gather_home_k, args)
                    })
                    .collect();
                all.extend_from_slice(&visits);
                all.extend_from_slice(&popv);
                all.extend_from_slice(&inter);
                all.extend_from_slice(&next);
                pop = next;
            }
            let partials: Vec<NodeRef> = pop
                .iter()
                .map(|&p| heap.alloc_thunk(checksum_k, vec![p]))
                .collect();
            all.extend_from_slice(&partials);
            let all_list = list_of(heap, &all);
            let partials_list = list_of(heap, &partials);
            heap.alloc_thunk(gph_main, vec![all_list, partials_list])
        })?;
        let value = rt.heap().expect_value(out.result).expect_int();
        Ok(Measured {
            value,
            elapsed: out.elapsed,
            tracer: out.tracer,
            gph_stats: Some(out.stats),
            eden_stats: None,
        })
    }

    /// Distributed-heap Eden run: one shard process per PE owning a
    /// location partition (per `placement`), exchanging one migration
    /// batch per ordered PE pair per phase over stream channels. All
    /// inter-PE words are the algorithm's own agent movement, priced
    /// through the topology's link classes — under a cluster topology
    /// [`rph_eden::EdenStats::remote_words`] measures the workload,
    /// and the [`Placement::Contiguous`]-vs-[`Placement::Scatter`]
    /// ablation shows hierarchical placement cutting inter-node
    /// traffic.
    pub fn run_eden(&self, config: EdenConfig, placement: Placement) -> Result<Measured, String> {
        let parts = config.pes;
        let mut b = ProgramBuilder::new();
        let _pre = prelude::install(&mut b);
        let support = rph_eden::install_support(&mut b);
        let program = b.build();
        let mut rt = EdenRuntime::new(program, support, config);

        let owner = owner_map(self.locations, parts, placement);
        // Result channels (one Int partial per shard) on PE 0.
        let mut result_nodes = Vec::with_capacity(parts);
        let mut result_chans = Vec::with_capacity(parts);
        for _ in 0..parts {
            let (c, n) = rt.new_channel(0, CommMode::Single);
            result_chans.push(c);
            result_nodes.push(n);
        }
        // One stream channel per ordered PE pair, on the receiver.
        let mut in_nodes: Vec<Vec<Option<NodeRef>>> = vec![vec![None; parts]; parts];
        let mut out_eps: Vec<Vec<Option<Endpoint>>> = vec![vec![None; parts]; parts];
        for src in 0..parts {
            for dst in 0..parts {
                if src == dst {
                    continue;
                }
                let (c, n) = rt.new_channel(dst, CommMode::Stream);
                in_nodes[dst][src] = Some(n);
                out_eps[src][dst] = Some(Endpoint {
                    pe: dst as u32,
                    chan: c,
                });
            }
        }
        for p in 0..parts {
            let logic = ShardLogic {
                w: self.clone(),
                part: p,
                parts,
                shard: Some(EpiShard::new(self, p as u32, owner.clone())),
                step: 0,
                cursors: in_nodes[p].clone(),
                // Step 0 has no arrivals: pre-fill every slot so the
                // first visit phase runs immediately.
                got: (0..parts).map(|_| Some(Vec::new())).collect(),
                outs: out_eps[p].clone(),
                result_dest: Endpoint {
                    pe: 0,
                    chan: result_chans[p],
                },
            };
            rt.start_native(p, Box::new(logic));
        }
        let final_node = rt.alloc_placeholder(0);
        rt.pin_root(0, final_node);
        rt.start_native(
            0,
            Box::new(Collector {
                inputs: result_nodes,
                result: final_node,
            }),
        );
        let out = rt.run(final_node)?;
        let value = rt.heap(0).expect_value(out.result).expect_int();
        Ok(Measured {
            value,
            elapsed: out.elapsed,
            tracer: out.tracer,
            gph_stats: None,
            eden_stats: Some(out.stats),
        })
    }
}

/// One Eden shard process: owns a location partition, runs the
/// [`EpiShard`] phases, and trades one mover batch per peer per phase
/// over its stream channels (an empty batch still travels — the round
/// barrier is the messages themselves).
struct ShardLogic {
    w: Episim,
    part: usize,
    parts: usize,
    shard: Option<EpiShard>,
    /// Next phase to run (0 ..= 2·rounds; the last value is the final
    /// absorb).
    step: usize,
    /// Per-peer incoming stream cursors (`None` at `self.part`).
    cursors: Vec<Option<NodeRef>>,
    /// Arrival batches collected for the current step.
    got: Vec<Option<Vec<(u32, Agent)>>>,
    /// Per-peer outgoing endpoints.
    outs: Vec<Option<Endpoint>>,
    result_dest: Endpoint,
}

impl ShardLogic {
    /// Encode one batch as a heap list of movers.
    fn encode_batch(heap: &mut Heap, movers: &[(u32, Agent)]) -> NodeRef {
        let nodes: Vec<NodeRef> = movers
            .iter()
            .map(|(dest, a)| {
                let cell = alloc_agent(heap, a);
                alloc_mover(heap, *dest, cell)
            })
            .collect();
        list_of(heap, &nodes)
    }

    fn decode_batch(heap: &Heap, node: NodeRef) -> Vec<(u32, Agent)> {
        walk_list(heap, node)
            .into_iter()
            .map(|mv| {
                let (dest, cell) = heap_mover(heap, mv);
                (dest, heap_agent(heap, cell))
            })
            .collect()
    }
}

impl NativeLogic for ShardLogic {
    fn step(&mut self, ctx: &mut NativeCtx<'_>) -> Result<NativeStep, String> {
        loop {
            // Collect the current step's missing arrival batches.
            let mut waits = Vec::new();
            for src in 0..self.parts {
                if src == self.part || self.got[src].is_some() {
                    continue;
                }
                let cur = self.cursors[src].expect("peer cursor");
                match ctx.heap.whnf(cur).cloned() {
                    Some(Value::Cons(h, t)) => {
                        let batch = Self::decode_batch(ctx.heap, h);
                        ctx.cost += GATHER_COST * batch.len() as u64 + 20;
                        self.got[src] = Some(batch);
                        self.cursors[src] = Some(t);
                    }
                    Some(Value::Nil) => {
                        return Err(format!(
                            "episim shard {}: peer {src} stream ended at step {}",
                            self.part, self.step
                        ));
                    }
                    Some(other) => {
                        return Err(format!(
                            "episim shard {}: bad stream item {other:?}",
                            self.part
                        ))
                    }
                    None => waits.push(cur),
                }
            }
            if !waits.is_empty() {
                return Ok(NativeStep::Wait(waits));
            }
            let arrivals: Vec<(u32, Agent)> = self
                .got
                .iter_mut()
                .filter_map(|g| g.take())
                .flatten()
                .collect();
            if self.step == 2 * self.w.rounds {
                // Final absorb: checksum this partition's residents
                // and report to the collector.
                let shard = self.shard.take().expect("final step runs once");
                let residents = shard.residents(arrivals);
                ctx.cost += 6 * residents.len() as u64 + 20;
                let mut sum = 0u64;
                for a in &residents {
                    sum = sum.wrapping_add(a.hash());
                }
                let node = ctx.heap.alloc_value(Value::Int(sum as i64));
                ctx.send_single(self.result_dest, node)?;
                for ep in self.outs.iter().flatten() {
                    ctx.send_stream_end(*ep);
                }
                return Ok(NativeStep::Done);
            }
            let shard = self.shard.as_mut().expect("shard live until final step");
            let grouped = shard.step(&self.w, self.parts, self.step, arrivals);
            let phase_cost = if self.step.is_multiple_of(2) {
                VISIT_COST
            } else {
                INTERACT_COST
            };
            let processed: usize = grouped.iter().map(|g| g.len()).sum();
            ctx.cost += phase_cost * processed as u64 + 50;
            for (dst, movers) in grouped.into_iter().enumerate() {
                if dst == self.part {
                    // The self-batch never leaves the PE.
                    self.got[dst] = Some(movers);
                } else {
                    let node = Self::encode_batch(ctx.heap, &movers);
                    ctx.send_stream_item(self.outs[dst].expect("peer endpoint"), node)?;
                }
            }
            self.step += 1;
        }
    }

    fn push_roots(&self, out: &mut Vec<NodeRef>) {
        out.extend(self.cursors.iter().flatten().copied());
    }
}

/// PE 0's collector: folds the shard partials (wrapping, so grouping
/// is irrelevant) into the run's result placeholder.
struct Collector {
    inputs: Vec<NodeRef>,
    result: NodeRef,
}

impl NativeLogic for Collector {
    fn step(&mut self, ctx: &mut NativeCtx<'_>) -> Result<NativeStep, String> {
        let mut total = 0u64;
        let mut waits = Vec::new();
        for &n in &self.inputs {
            match ctx.heap.whnf(n) {
                Some(Value::Int(i)) => total = total.wrapping_add(*i as u64),
                Some(other) => return Err(format!("episim collector: bad partial {other:?}")),
                None => waits.push(n),
            }
        }
        if !waits.is_empty() {
            return Ok(NativeStep::Wait(waits));
        }
        ctx.cost += 2 * self.inputs.len() as u64 + 10;
        let node = ctx.heap.alloc_value(Value::Int(total as i64));
        let rep = ctx.heap.update(self.result, node);
        ctx.woken.extend(rep.woken);
        Ok(NativeStep::Done)
    }

    fn push_roots(&self, out: &mut Vec<NodeRef>) {
        out.extend_from_slice(&self.inputs);
        out.push(self.result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(dist: VisitDist) -> Episim {
        Episim::new(240, 48, 4, 0x5EED, dist)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let e = small(VisitDist::Skewed);
        for a in e.init_agents() {
            assert_eq!(Agent::decode(a.encode()), a);
        }
        let odd = Agent {
            id: u32::MAX,
            state: Seir::Recovered,
            timer: 12345,
            home: 999_999,
            rng: u64::MAX,
        };
        assert_eq!(Agent::decode(odd.encode()), odd);
    }

    #[test]
    fn checksum_is_order_independent() {
        let e = small(VisitDist::Skewed);
        let agents = e.run_seq();
        let fwd = checksum(&agents);
        let rev: Vec<Agent> = agents.iter().rev().copied().collect();
        assert_eq!(fwd, checksum(&rev));
    }

    #[test]
    fn simulation_actually_spreads() {
        // The oracle dynamics must be non-trivial: infections happen,
        // recoveries happen, agents migrate.
        for dist in [VisitDist::Uniform, VisitDist::Skewed] {
            let e = Episim::new(2000, 100, 8, 42, dist);
            let t0 = seir_tally(&e.init_agents());
            let t = e.expected_tally();
            assert_eq!(t.iter().sum::<u64>(), 2000, "{dist:?}: conservation");
            assert!(t[3] > 0, "{dist:?}: someone must have recovered: {t:?}");
            assert!(
                t[1] + t[2] + t[3] > t0[2],
                "{dist:?}: the epidemic must have spread beyond the seed: {t:?}"
            );
            let moved = e.run_seq().iter().filter(|a| a.home != a.id % 100).count();
            assert!(moved > 0, "{dist:?}: nobody migrated");
        }
    }

    #[test]
    fn skew_concentrates_occupancy() {
        // Zipf far-visits must load the head locations measurably more
        // than the uniform distribution does.
        let occupancy = |dist| {
            let e = Episim::new(4000, 64, 1, 7, dist);
            let mut agents = e.init_agents();
            let mut occ = vec![0usize; 64];
            for a in agents.iter_mut() {
                occ[e.visit_of(a) as usize] += 1;
            }
            occ
        };
        let uni = occupancy(VisitDist::Uniform);
        let zipf = occupancy(VisitDist::Skewed);
        let head = |occ: &[usize]| occ.iter().take(4).sum::<usize>();
        assert!(
            head(&zipf) > head(&uni) * 3 / 2,
            "zipf head {} vs uniform head {}",
            head(&zipf),
            head(&uni)
        );
    }

    #[test]
    fn seeds_change_the_answer() {
        let a = Episim::new(240, 48, 4, 1, VisitDist::Skewed).expected();
        let b = Episim::new(240, 48, 4, 2, VisitDist::Skewed).expected();
        assert_ne!(a, b);
    }

    #[test]
    fn block_range_partitions_exactly() {
        for n in [0usize, 1, 7, 48, 100] {
            for parts in [1usize, 2, 3, 7, 100] {
                let mut covered = 0;
                for p in 0..parts {
                    let (lo, hi) = block_range(n, parts, p);
                    assert!(lo <= hi && hi <= n);
                    covered += hi - lo;
                }
                assert_eq!(covered, n, "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn steal_backend_is_bit_identical_to_oracle() {
        for dist in [VisitDist::Uniform, VisitDist::Skewed] {
            let e = small(dist);
            let want = e.expected();
            for workers in [1usize, 2, 3, 4, 8] {
                let cfg = NativeConfig::steal(workers);
                let got = e.run_on(&cfg).unwrap();
                assert_eq!(got.value, want, "{dist:?} workers={workers}");
            }
        }
    }

    #[test]
    fn eden_backend_is_bit_identical_and_tally_conserves_population() {
        for dist in [VisitDist::Uniform, VisitDist::Skewed] {
            let e = small(dist);
            let want = e.expected();
            let want_tally = e.expected_tally();
            for workers in [1usize, 2, 3, 4, 8] {
                let cfg = NativeConfig::steal(workers)
                    .with_backend(rph_native::BackendKind::Eden)
                    .with_chan_cap(2);
                let (m, tally) = e.run_eden_native(&cfg).unwrap();
                assert_eq!(m.value, want, "{dist:?} workers={workers}");
                assert_eq!(tally, want_tally, "{dist:?} workers={workers}");
                assert_eq!(
                    tally.iter().sum::<u64>() as usize,
                    e.agents,
                    "{dist:?} workers={workers}: shard migration must conserve agents"
                );
            }
        }
    }

    #[test]
    fn eden_messages_carry_the_migration_traffic() {
        // With more than one PE under a sharded topology, cross-shard
        // agent movement must show up in `remote_words` — the whole
        // point of this workload's Eden form.
        let e = small(VisitDist::Skewed);
        let cfg = NativeConfig::steal(4)
            .with_backend(rph_native::BackendKind::Eden)
            .with_topology(2, 2);
        let (m, _) = e.run_eden_native(&cfg).unwrap();
        assert!(m.stats.remote_words > 0, "stats: {:?}", m.stats);
        assert!(m.stats.words_sent > m.stats.remote_words);
    }

    #[test]
    fn all_four_backends_are_bit_identical() {
        // The differential suite: sim-GpH, sim-Eden, native-steal and
        // native-Eden all reproduce the sequential oracle bit-for-bit
        // at every worker count, both seeds, both visit distributions.
        for seed in [1u64, 0x5EED] {
            for dist in [VisitDist::Uniform, VisitDist::Skewed] {
                let e = Episim::new(240, 48, 4, seed, dist);
                let want = e.expected();
                for wkrs in [1usize, 2, 3, 4, 8] {
                    let ctx = format!("seed={seed} {dist:?} workers={wkrs}");
                    let steal = e.run_on(&NativeConfig::steal(wkrs)).unwrap();
                    assert_eq!(steal.value, want, "native-steal {ctx}");
                    let ecfg =
                        NativeConfig::steal(wkrs).with_backend(rph_native::BackendKind::Eden);
                    assert_eq!(e.run_on(&ecfg).unwrap().value, want, "native-eden {ctx}");
                    let gph = e
                        .run_gph(GphConfig::ghc69_plain(wkrs).without_trace())
                        .unwrap();
                    assert_eq!(gph.value, want, "sim-gph {ctx}");
                    let esim = e
                        .run_eden(EdenConfig::new(wkrs).without_trace(), Placement::Contiguous)
                        .unwrap();
                    assert_eq!(esim.value, want, "sim-eden {ctx}");
                }
            }
        }
    }

    #[test]
    fn eden_sim_scatter_placement_is_bit_identical_too() {
        let e = small(VisitDist::Skewed);
        let want = e.expected();
        for pes in [1usize, 3, 4] {
            let m = e
                .run_eden(EdenConfig::new(pes).without_trace(), Placement::Scatter)
                .unwrap();
            assert_eq!(m.value, want, "pes={pes}");
        }
    }

    #[test]
    fn hierarchical_placement_cuts_remote_words() {
        // The topology ablation: on a 2-node × 4-PE cluster, placing
        // contiguous location blocks (so the home window stays on one
        // shard, and adjacent shards share a node) must move fewer
        // words over the inter-node links than scattering locations
        // round-robin across shards.
        let e = Episim::new(2000, 64, 6, 0x5EED, VisitDist::Skewed);
        let run = |placement| {
            let cfg = EdenConfig::new(8).with_topology(2, 4).without_trace();
            let m = e.run_eden(cfg, placement).unwrap();
            (m.value, m.eden_stats.unwrap())
        };
        let (v_hier, s_hier) = run(Placement::Contiguous);
        let (v_flat, s_flat) = run(Placement::Scatter);
        assert_eq!(v_hier, e.expected());
        assert_eq!(v_flat, e.expected());
        assert!(s_hier.remote_words > 0, "cluster runs must cross nodes");
        assert!(
            s_hier.remote_words < s_flat.remote_words,
            "hierarchical placement must cut inter-node traffic: {} vs {}",
            s_hier.remote_words,
            s_flat.remote_words
        );
        // And the messages really carry the population: total words
        // scale with agents in flight, not just envelopes.
        assert!(s_flat.message_words > s_flat.remote_words);
    }

    #[test]
    fn zero_round_runs_degenerate_to_the_initial_population() {
        let e = Episim::new(100, 10, 0, 7, VisitDist::Uniform);
        let want = checksum(&e.init_agents());
        assert_eq!(e.expected(), want);
        assert_eq!(e.run_on(&NativeConfig::steal(3)).unwrap().value, want);
        let cfg = NativeConfig::steal(3).with_backend(rph_native::BackendKind::Eden);
        let (m, tally) = e.run_eden_native(&cfg).unwrap();
        assert_eq!(m.value, want);
        assert_eq!(tally.iter().sum::<u64>(), 100);
    }
}
