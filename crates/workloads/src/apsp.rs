//! All-pairs shortest paths (§V, "a genuine parallel algorithm") —
//! Fig. 5.
//!
//! The algorithm is pipelined Floyd–Warshall (adapted from Plasmeijer &
//! van Eekelen): row `k` is *final* once relaxed by pivots `1..k-1`
//! (row `k` does not change at its own pivot step), so final rows can
//! be produced and consumed in pivot order, pipelined.
//!
//! * **Eden**: each ring process owns a contiguous block of rows,
//!   "computes the minimum distances … by updating its row continuously
//!   using the other rows received from, and forwarded to, the ring".
//!   Finalised rows circulate the ring exactly once.
//! * **GpH**: the program "sparks an evaluation for each row in
//!   advance and relies on the runtime system efficiently synchronising
//!   concurrent evaluations": a grid of n² row-step thunks where step
//!   `(i,k)` depends on `(i,k-1)` and on the *shared* pivot thunk
//!   `(k,k-1)`. Those shared pivots are exactly what makes lazy
//!   black-holing catastrophic here (duplicate evaluation of whole
//!   relaxation chains) and eager black-holing essential — the paper's
//!   headline Fig. 5 effect.

use crate::kernels;
use crate::sum_euler::list_of;
use crate::Measured;
use rph_eden::{skeletons, EdenConfig, EdenRuntime};
use rph_gph::{GphConfig, GphRuntime};
use rph_heap::{Heap, NodeRef, ScId, Value};
use rph_machine::ir::*;
use rph_machine::prelude::{self, Prelude};
use rph_machine::program::{KernelOut, Program, ProgramBuilder};
use rph_machine::reference;
use rph_sim::DetRng;
use std::sync::Arc;

/// "Infinity" surrogate: far larger than any real path (≤ n·20) but
/// exactly representable so checksums stay integer-exact.
pub const BIG: f64 = 1.0e6;

/// The APSP benchmark.
#[derive(Debug, Clone)]
pub struct Apsp {
    /// Number of graph nodes (the paper uses 400).
    pub n: usize,
    /// Edge probability (per ordered pair), ×1000.
    pub density_millis: u64,
    pub seed: u64,
}

struct Prog {
    program: Arc<Program>,
    support: rph_eden::EdenSupport,
    #[allow(dead_code)]
    pre: Prelude,
    /// Kernel: one min-plus relaxation of a row by a pivot row.
    update_row: ScId,
    /// Kernel: relax *every* row in a list by a pivot row.
    #[allow(dead_code)] // referenced via the IR bodies that close over it
    update_rows: ScId,
    /// Kernel: index into a row list.
    #[allow(dead_code)]
    get_row: ScId,
    /// Kernel: Σ of one row (integer-exact).
    row_sum: ScId,
    /// Kernel: Σ over a list of rows.
    #[allow(dead_code)]
    rows_sum: ScId,
    /// GpH driver: sparkList finals `seq` sum (map rowSum finals).
    gph_main: ScId,
    /// Eden ring worker.
    apsp_node: ScId,
    /// Eden parent checksum over per-process row lists.
    eden_checksum: ScId,
}

impl Apsp {
    pub fn new(n: usize) -> Self {
        Apsp {
            n,
            density_millis: 300,
            seed: 7,
        }
    }

    /// The adjacency/distance matrix, flat row-major `n×n` (one
    /// allocation; the oracle kernels run on this directly).
    pub fn input_flat(&self) -> Vec<f64> {
        let mut rng = DetRng::new(self.seed);
        let n = self.n;
        let mut dist = vec![BIG; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    dist[i * n + j] = 0.0;
                } else if rng.gen_range(1000) < self.density_millis {
                    dist[i * n + j] = 1.0 + rng.gen_range(20) as f64;
                }
            }
        }
        dist
    }

    /// The adjacency/distance matrix as per-row vectors (the shape the
    /// row-structured runtimes consume).
    pub fn input_rows(&self) -> Vec<Vec<f64>> {
        self.input_flat()
            .chunks_exact(self.n)
            .map(|r| r.to_vec())
            .collect()
    }

    /// Plain-Rust Floyd–Warshall oracle checksum.
    pub fn expected(&self) -> i64 {
        let mut dist = self.input_flat();
        kernels::floyd_warshall(&mut dist, self.n);
        dist.iter().sum::<f64>() as i64
    }

    fn program(&self) -> Prog {
        let n = self.n as i64;
        let mut b = ProgramBuilder::new();
        let pre = prelude::install(&mut b);
        let support = rph_eden::install_support(&mut b);
        let sub2 = b.def("sub2", 2, prim(rph_machine::PrimOp::Sub, vec![v(0), v(1)]));

        // updateRow row_i row_k k: one relaxation (k is 1-based).
        let update_row = b.kernel("updateRow", 3, |heap, args| {
            let row_i = heap.expect_value(args[0]).expect_darray().to_vec();
            let row_k = heap.expect_value(args[1]).expect_darray().to_vec();
            let k = heap.expect_value(args[2]).expect_int() as usize - 1;
            let (out, cost) = kernels::min_plus_update(&row_i, &row_k, k);
            let words = out.len() as u64;
            KernelOut {
                result: heap.alloc_value(Value::DArray(out.into())),
                cost,
                transient_words: words,
            }
        });
        // updateRows rows row_k k: relax every row in the (NF) list.
        let update_rows = b.kernel("updateRows", 3, |heap, args| {
            let rows = read_rows(heap, args[0]);
            let row_k = heap.expect_value(args[1]).expect_darray().to_vec();
            let k = heap.expect_value(args[2]).expect_int() as usize - 1;
            let mut cost = 0u64;
            let mut out_nodes = Vec::with_capacity(rows.len());
            let mut words = 0u64;
            for row in &rows {
                let (out, c) = kernels::min_plus_update(row, &row_k, k);
                cost += c;
                words += out.len() as u64;
                out_nodes.push(heap.alloc_value(Value::DArray(out.into())));
            }
            KernelOut {
                result: list_of(heap, &out_nodes),
                cost,
                transient_words: words,
            }
        });
        let get_row = b.kernel("getRow", 2, |heap, args| {
            let idx = heap.expect_value(args[1]).expect_int() as usize;
            let mut r = heap.resolve(args[0]);
            for _ in 0..idx {
                match heap.expect_value(r) {
                    Value::Cons(_, t) => r = heap.resolve(*t),
                    other => panic!("getRow: ran off the list at {other:?}"),
                }
            }
            let head = match heap.expect_value(r) {
                Value::Cons(h, _) => *h,
                other => panic!("getRow: index out of range at {other:?}"),
            };
            KernelOut {
                result: head,
                cost: 5 * (idx as u64 + 1),
                transient_words: 0,
            }
        });
        let row_sum = b.kernel("rowSum", 1, |heap, args| {
            let xs = heap.expect_value(args[0]).expect_darray();
            let total: f64 = xs.iter().sum();
            let len = xs.len() as u64;
            KernelOut {
                result: heap.alloc_value(Value::Int(total as i64)),
                cost: len,
                transient_words: 0,
            }
        });
        let rows_sum = b.kernel("rowsSum", 1, |heap, args| {
            let rows = read_rows(heap, args[0]);
            let total: f64 = rows.iter().flatten().sum();
            let cost = rows.iter().map(|r| r.len() as u64).sum();
            KernelOut {
                result: heap.alloc_value(Value::Int(total as i64)),
                cost,
                transient_words: 0,
            }
        });

        // gphMain finals = sparkList finals `seq` sum (map rowSum finals)
        let gph_main = b.def(
            "gphApspMain",
            1,
            seq(
                app(pre.spark_list, vec![v(0)]),
                let_(
                    vec![
                        pap(row_sum, vec![]),             // [1]
                        thunk(pre.map, vec![v(1), v(0)]), // [2]
                    ],
                    app(pre.sum, vec![v(2)]),
                ),
            ),
        );

        // ---- Eden ring worker --------------------------------------
        // apspGo lo hi sLo sHi k n ownRows stream
        //        0  1  2   3   4 5  6      7
        let apsp_go = b.declare("apspGo", 8);
        let all8 = || vec![v(0), v(1), v(2), v(3), v(4), v(5), v(6), v(7)];

        // Own pivot: emit my row (relaxed by 1..k-1), relax my rows by
        // it, recurse.
        // The relaxations are forced *at the pivot's turn* (strict, like
        // the Eden original): deferring them lazily would batch all
        // updates into the next emission and serialise the pipeline.
        let apsp_own = b.def(
            "apspOwn",
            8,
            let_(
                vec![
                    thunk(sub2, vec![v(4), v(0)]),              // [8]  idx = k - lo
                    thunk(get_row, vec![v(6), v(8)]),           // [9]  myRow
                    thunk(update_rows, vec![v(6), v(9), v(4)]), // [10] rows'
                    thunk(pre.inc, vec![v(4)]),                 // [11] k+1
                ],
                let_(
                    vec![
                        thunk(
                            apsp_go,
                            vec![v(0), v(1), v(2), v(3), v(11), v(5), v(10), v(7)],
                        ), // [12]
                        LetRhs::Thunk {
                            sc: support.selector(2, 0),
                            args: vec![v(12)],
                        }, // [13]
                        LetRhs::Thunk {
                            sc: support.selector(2, 1),
                            args: vec![v(12)],
                        }, // [14]
                        LetRhs::Cons(v(9), v(14)), // [15] out = myRow : recOut
                        LetRhs::Tuple(vec![v(13), v(15)]), // [16]
                    ],
                    atom(v(16)),
                ),
            ),
        );

        // Foreign pivot: receive it, relax, forward unless the
        // successor owns it (then its circulation is complete).
        let apsp_foreign = b.def(
            "apspForeign",
            8,
            case_list(
                atom(v(7)),
                prim(rph_machine::PrimOp::Div, vec![int(1), int(0)]), // ring protocol violation
                // frame +[rowK(8), stream'(9)]
                let_(
                    vec![
                        thunk(update_rows, vec![v(6), v(8), v(4)]), // [10]
                        thunk(pre.inc, vec![v(4)]),                 // [11]
                        thunk(
                            apsp_go,
                            vec![v(0), v(1), v(2), v(3), v(11), v(5), v(10), v(9)],
                        ), // [12]
                        LetRhs::Thunk {
                            sc: support.selector(2, 0),
                            args: vec![v(12)],
                        }, // [13]
                        LetRhs::Thunk {
                            sc: support.selector(2, 1),
                            args: vec![v(12)],
                        }, // [14]
                        LetRhs::Cons(v(8), v(14)),                  // [15] forwarded
                        LetRhs::Tuple(vec![v(13), v(15)]),          // [16] with forward
                        LetRhs::Tuple(vec![v(13), v(14)]),          // [17] without
                    ],
                    if_(
                        prim(rph_machine::PrimOp::Lt, vec![v(4), v(2)]),
                        atom(v(16)),
                        if_(
                            prim(rph_machine::PrimOp::Gt, vec![v(4), v(3)]),
                            atom(v(16)),
                            atom(v(17)),
                        ),
                    ),
                ),
            ),
        );

        b.define(
            apsp_go,
            // Force the pending relaxation burst *now* — after the
            // previous pivot has been forwarded, before blocking on the
            // next one. This keeps updates strict (pipelined) while
            // letting forwards overtake local compute.
            seq(
                atom(v(6)),
                if_(
                    prim(rph_machine::PrimOp::Gt, vec![v(4), v(5)]),
                    // k > n: done — final rows, end of ring output.
                    let_(
                        vec![LetRhs::Nil, LetRhs::Tuple(vec![v(6), v(8)])],
                        atom(v(9)),
                    ),
                    if_(
                        prim(rph_machine::PrimOp::Lt, vec![v(4), v(0)]),
                        app(apsp_foreign, all8()),
                        if_(
                            prim(rph_machine::PrimOp::Gt, vec![v(4), v(1)]),
                            app(apsp_foreign, all8()),
                            app(apsp_own, all8()),
                        ),
                    ),
                ),
            ),
        );

        // apspNode init ringIn, init = ((lo,hi,sLo,sHi), rows)
        let apsp_node = b.def(
            "apspNode",
            2,
            case_tuple(
                atom(v(0)),
                2,
                // frame [init, ringIn, bounds(2), rows(3)]
                case_tuple(
                    atom(v(2)),
                    4,
                    // frame + [lo(4), hi(5), sLo(6), sHi(7)]
                    app(
                        apsp_go,
                        vec![v(4), v(5), v(6), v(7), int(1), int(n), v(3), v(1)],
                    ),
                ),
            ),
        );

        // edenChecksum outs = sum (map rowsSum outs)
        let eden_checksum = b.def(
            "edenChecksum",
            1,
            let_(
                vec![
                    pap(rows_sum, vec![]),            // [1]
                    thunk(pre.map, vec![v(1), v(0)]), // [2]
                ],
                app(pre.sum, vec![v(2)]),
            ),
        );

        Prog {
            program: b.build(),
            support,
            pre,
            update_row,
            update_rows,
            get_row,
            row_sum,
            rows_sum,
            gph_main,
            apsp_node,
            eden_checksum,
        }
    }

    /// Shared-heap GpH run: the n² row-step thunk grid, one spark per
    /// final row.
    pub fn run_gph(&self, config: GphConfig) -> Result<Measured, String> {
        let p = self.program();
        let rows = self.input_rows();
        let n = self.n;
        let mut rt = GphRuntime::new(p.program.clone(), config);
        let out = rt.run(|heap| {
            // step[i] holds row i after pivots 1..k, rolled in place.
            let mut step: Vec<NodeRef> = rows
                .iter()
                .map(|r| heap.alloc_value(Value::DArray(r.clone().into())))
                .collect();
            for k in 1..=n {
                let kn = heap.int(k as i64);
                // The shared pivot: row k after pivots 1..k-1.
                let pivot = step[k - 1];
                for (i, slot) in step.iter_mut().enumerate() {
                    if i == k - 1 {
                        continue; // a row is unchanged at its own pivot
                    }
                    *slot = heap.alloc_thunk(p.update_row, vec![*slot, pivot, kn]);
                }
            }
            let finals = list_of(heap, &step);
            heap.alloc_thunk(p.gph_main, vec![finals])
        })?;
        let value = rt.heap().expect_value(out.result).expect_int();
        Ok(Measured {
            value,
            elapsed: out.elapsed,
            tracer: out.tracer,
            gph_stats: Some(out.stats),
            eden_stats: None,
        })
    }

    /// Row-block bounds (1-based, inclusive) for `p` ring processes.
    fn blocks(&self, p: usize) -> Vec<(i64, i64)> {
        let n = self.n as i64;
        let p = p as i64;
        (0..p)
            .map(|j| {
                let lo = j * n / p + 1;
                let hi = (j + 1) * n / p;
                (lo, hi)
            })
            .collect()
    }

    /// Distributed-heap Eden run: `p` ring processes (one per PE).
    pub fn run_eden(&self, config: EdenConfig) -> Result<Measured, String> {
        let p = self.program();
        let rows = self.input_rows();
        let nprocs = config.pes.min(self.n);
        let blocks = self.blocks(nprocs);
        let mut rt = EdenRuntime::new(p.program.clone(), p.support, config);
        let mut inits = Vec::with_capacity(nprocs);
        for (j, &(lo, hi)) in blocks.iter().enumerate() {
            let (slo, shi) = blocks[(j + 1) % nprocs];
            let heap = rt.heap_mut(0);
            let row_nodes: Vec<NodeRef> = (lo..=hi)
                .map(|i| heap.alloc_value(Value::DArray(rows[i as usize - 1].clone().into())))
                .collect();
            let rows_list = list_of(heap, &row_nodes);
            let lo_n = heap.int(lo);
            let hi_n = heap.int(hi);
            let slo_n = heap.int(slo);
            let shi_n = heap.int(shi);
            let bounds = heap.alloc_value(Value::Tuple(vec![lo_n, hi_n, slo_n, shi_n].into()));
            inits.push(heap.alloc_value(Value::Tuple(vec![bounds, rows_list].into())));
        }
        let outs = skeletons::ring(&mut rt, p.apsp_node, &inits);
        let heap = rt.heap_mut(0);
        let list = list_of(heap, &outs);
        let entry = heap.alloc_thunk(p.eden_checksum, vec![list]);
        let out = rt.run(entry)?;
        let value = rt.heap(0).expect_value(out.result).expect_int();
        Ok(Measured {
            value,
            elapsed: out.elapsed,
            tracer: out.tracer,
            gph_stats: None,
            eden_stats: Some(out.stats),
        })
    }

    /// Sequential baseline on the abstract machine.
    pub fn run_seq(&self) -> Measured {
        let p = self.program();
        let rows = self.input_rows();
        let n = self.n;
        let mut heap = Heap::new();
        let mut step: Vec<NodeRef> = rows
            .iter()
            .map(|r| heap.alloc_value(Value::DArray(r.clone().into())))
            .collect();
        for k in 1..=n {
            let kn = heap.int(k as i64);
            let pivot = step[k - 1];
            for (i, slot) in step.iter_mut().enumerate() {
                if i == k - 1 {
                    continue;
                }
                *slot = heap.alloc_thunk(p.update_row, vec![*slot, pivot, kn]);
            }
        }
        let finals = list_of(&mut heap, &step);
        let entry = {
            let pap_node = heap.alloc_value(Value::Pap {
                sc: p.row_sum,
                args: Box::new([]),
            });
            let pre_map = p.program.lookup("map").expect("prelude installed");
            let pre_sum = p.program.lookup("sum").expect("prelude installed");
            let mapped = heap.alloc_thunk(pre_map, vec![pap_node, finals]);
            heap.alloc_thunk(pre_sum, vec![mapped])
        };
        let (r, cost) = reference::run_seq(&p.program, &mut heap, entry);
        Measured {
            value: heap.expect_value(r).expect_int(),
            elapsed: cost,
            tracer: rph_trace::Tracer::disabled(0),
            gph_stats: None,
            eden_stats: None,
        }
    }
}

fn read_rows(heap: &Heap, mut r: NodeRef) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    loop {
        match heap.expect_value(r) {
            Value::Nil => return out,
            Value::Cons(h, t) => {
                out.push(heap.expect_value(*h).expect_darray().to_vec());
                r = *t;
            }
            other => panic!("row list expected, found {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 24;

    #[test]
    fn gph_matches_oracle_lazy_and_eager() {
        let w = Apsp::new(N);
        let expect = w.expected();
        for eager in [false, true] {
            let mut cfg = GphConfig::ghc69_plain(4)
                .with_work_stealing()
                .without_trace();
            if eager {
                cfg = cfg.with_eager_blackholing();
            }
            let m = w.run_gph(cfg).unwrap();
            assert_eq!(m.value, expect, "eager={eager}");
        }
    }

    #[test]
    fn eden_ring_matches_oracle_various_sizes() {
        let w = Apsp::new(N);
        let expect = w.expected();
        for pes in [1, 2, 3, 4] {
            let m = w.run_eden(EdenConfig::new(pes).without_trace()).unwrap();
            assert_eq!(m.value, expect, "pes={pes}");
        }
    }

    #[test]
    fn seq_matches_oracle() {
        let w = Apsp::new(N);
        assert_eq!(w.run_seq().value, w.expected());
    }

    #[test]
    fn lazy_blackholing_duplicates_shared_pivots() {
        // Needs enough pivot-chain depth for duplication to outweigh
        // synchronisation overhead (the paper's 400-node graph is deep
        // in that regime; the crossover here is near n = 96).
        let w = Apsp::new(128);
        let lazy = w
            .run_gph(
                GphConfig::ghc69_plain(8)
                    .with_big_alloc_area()
                    .with_work_stealing()
                    .without_trace(),
            )
            .unwrap();
        let eager = w
            .run_gph(
                GphConfig::ghc69_plain(8)
                    .with_big_alloc_area()
                    .with_work_stealing()
                    .with_eager_blackholing()
                    .without_trace(),
            )
            .unwrap();
        assert_eq!(lazy.value, eager.value);
        let ls = lazy.gph_stats.unwrap();
        let es = eager.gph_stats.unwrap();
        assert!(
            ls.duplicate_evals > 0,
            "lazy black-holing must duplicate pivot relaxations"
        );
        assert_eq!(es.duplicate_evals, 0);
        assert!(es.blackhole_blocks > 0);
        assert!(
            eager.elapsed < lazy.elapsed,
            "eager {} !< lazy {} (Fig. 5 effect)",
            eager.elapsed,
            lazy.elapsed
        );
    }

    #[test]
    fn blocks_partition_rows() {
        let w = Apsp::new(10);
        let bs = w.blocks(3);
        assert_eq!(bs, vec![(1, 3), (4, 6), (7, 10)]);
        let total: i64 = bs.iter().map(|(lo, hi)| hi - lo + 1).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn update_row_kernel_relaxes() {
        // Self-contained check of the Eden update path vs the oracle.
        let w = Apsp::new(12);
        let mut oracle = w.input_flat();
        kernels::floyd_warshall(&mut oracle, w.n);
        let m = w.run_eden(EdenConfig::new(2).without_trace()).unwrap();
        assert_eq!(m.value, oracle.iter().sum::<f64>() as i64);
    }
}
