//! Dense matrix multiplication (§V) — Fig. 3 right (speedups) and
//! Fig. 4 (traces).
//!
//! * **GpH**: "regular blocks of the result are turned into sparks.
//!   The block size, i.e. the spark granularity, is tunable by a
//!   parameter." Each result block depends only on a row of A-blocks
//!   and a column of B-blocks (the reduced data dependence the paper
//!   credits block-sparking for).
//! * **Eden**: Cannon's algorithm on the `torus` skeleton: b×b
//!   processes, blocks pre-aligned, then b multiply–shift steps with
//!   blocks "exchanged in sequence with computing subresults.
//!   Communication is reduced to a minimum."
//!
//! Matrices are generated with small integer entries so every f64
//! operation is exact and checksums compare exactly against the
//! plain-Rust oracle.
use crate::kernels;
use crate::sum_euler::list_of;
use crate::Measured;
use rph_eden::{skeletons, EdenConfig, EdenRuntime};
use rph_gph::{GphConfig, GphRuntime};
use rph_heap::{Heap, NodeRef, ScId, Value};
use rph_machine::ir::*;
use rph_machine::prelude::{self, Prelude};
use rph_machine::program::{KernelOut, Program, ProgramBuilder};
use rph_machine::reference;
use rph_sim::DetRng;
use std::sync::Arc;

/// The matrix-multiplication benchmark.
#[derive(Debug, Clone)]
pub struct MatMul {
    /// Matrix dimension (n×n).
    pub n: usize,
    /// Blocks per side (the grid is `grid × grid`; block size
    /// `n/grid` — the paper's tunable spark granularity).
    pub grid: usize,
    /// Input generator seed.
    pub seed: u64,
}

struct Prog {
    program: Arc<Program>,
    support: rph_eden::EdenSupport,
    #[allow(dead_code)]
    pre: Prelude,
    /// Kernel: product of a row of A-blocks with a column of B-blocks.
    block_row_col: ScId,
    /// Kernel: sum of a block's elements (exact integer-valued).
    #[allow(dead_code)] // referenced via the IR bodies that close over it
    block_sum: ScId,
    /// GpH driver: sparkList blocks `seq` sum (map blockSum blocks).
    gph_main: ScId,
    /// Eden torus worker (Cannon node).
    cannon_node: ScId,
    /// Checksum driver for a list of blocks.
    checksum: ScId,
}

impl MatMul {
    pub fn new(n: usize, grid: usize) -> Self {
        assert!(grid >= 1 && n.is_multiple_of(grid), "grid must divide n");
        MatMul { n, grid, seed: 42 }
    }

    /// Block edge length.
    pub fn block_size(&self) -> usize {
        self.n / self.grid
    }

    /// Deterministic input matrices with small integer entries.
    pub fn inputs(&self) -> (Vec<f64>, Vec<f64>) {
        let mut rng = DetRng::new(self.seed);
        let gen = |rng: &mut DetRng| -> Vec<f64> {
            (0..self.n * self.n)
                .map(|_| rng.gen_range(10) as f64)
                .collect()
        };
        let a = gen(&mut rng);
        let b = gen(&mut rng);
        (a, b)
    }

    /// Oracle checksum: ΣC where C = A·B (exact in f64).
    pub fn expected(&self) -> i64 {
        let (a, b) = self.inputs();
        let c = kernels::matmul_oracle(&a, &b, self.n);
        c.iter().sum::<f64>() as i64
    }

    /// Extract block (bi, bj) of a row-major matrix.
    pub(crate) fn block(&self, m: &[f64], bi: usize, bj: usize) -> Vec<f64> {
        let s = self.block_size();
        let n = self.n;
        let mut out = Vec::with_capacity(s * s);
        for r in 0..s {
            let base = (bi * s + r) * n + bj * s;
            out.extend_from_slice(&m[base..base + s]);
        }
        out
    }

    fn program(&self) -> Prog {
        let mut b = ProgramBuilder::new();
        let pre = prelude::install(&mut b);
        let support = rph_eden::install_support(&mut b);
        // blockRowCol aBlocks bBlocks: Σ_k aBlocks[k]·bBlocks[k].
        // Both lists are in normal form by construction (input blocks).
        let block_row_col = b.kernel("blockRowCol", 2, |heap, args| {
            let mut cost = 0u64;
            let a_blocks = read_block_list(heap, args[0]);
            let b_blocks = read_block_list(heap, args[1]);
            assert_eq!(a_blocks.len(), b_blocks.len());
            let s = (a_blocks[0].len() as f64).sqrt() as usize;
            let mut acc = vec![0.0; s * s];
            for (ab, bb) in a_blocks.iter().zip(&b_blocks) {
                let (next, c) = kernels::block_mul_acc(&acc, ab, bb, s);
                acc = next;
                cost += c;
            }
            // A Haskell block product allocates intermediates per
            // multiply (zipWith spines, boxed doubles); partial fusion
            // leaves about a word per four flops.
            let churn = (s * s * s / 4) as u64 * a_blocks.len() as u64;
            KernelOut {
                result: heap.alloc_value(Value::DArray(acc.into())),
                cost,
                transient_words: churn,
            }
        });
        // blockMulAcc acc a b (Cannon's per-step kernel).
        let block_mul_acc = b.kernel("blockMulAcc", 3, |heap, args| {
            let acc = heap.expect_value(args[0]).expect_darray().to_vec();
            let a = heap.expect_value(args[1]).expect_darray().to_vec();
            let bb = heap.expect_value(args[2]).expect_darray().to_vec();
            let s = (acc.len() as f64).sqrt() as usize;
            let (out, cost) = kernels::block_mul_acc(&acc, &a, &bb, s);
            KernelOut {
                result: heap.alloc_value(Value::DArray(out.into())),
                cost,
                // Same per-flop churn as the GpH block kernel.
                transient_words: (s * s * s / 4) as u64,
            }
        });
        let block_sum = b.kernel("blockSum", 1, |heap, args| {
            let xs = heap.expect_value(args[0]).expect_darray();
            let total: f64 = xs.iter().sum();
            let len = xs.len() as u64;
            KernelOut {
                result: heap.alloc_value(Value::Int(total as i64)),
                cost: len,
                transient_words: 0,
            }
        });
        // checksum blocks = sum (map blockSum blocks)
        let checksum = b.def(
            "checksum",
            1,
            let_(
                vec![
                    pap(block_sum, vec![]),           // [1]
                    thunk(pre.map, vec![v(1), v(0)]), // [2]
                ],
                app(pre.sum, vec![v(2)]),
            ),
        );
        // gphMain blocks = sparkList blocks `seq` checksum blocks
        let gph_main = b.def(
            "gphMain",
            1,
            seq(app(pre.spark_list, vec![v(0)]), app(checksum, vec![v(0)])),
        );
        // --- Cannon worker ----------------------------------------
        // cannonNext steps rowIn colIn acc: force the next blocks off
        // the torus streams, then continue.          frame [st,ri,ci,acc]
        let cannon_go = b.declare("cannonGo", 6);
        let cannon_next = b.def(
            "cannonNext",
            4,
            case_list(
                atom(v(1)),
                prim(rph_machine::PrimOp::Div, vec![int(1), int(0)]), // protocol violation
                // frame [st, ri, ci, acc, a', ri']
                case_list(
                    atom(v(2)),
                    prim(rph_machine::PrimOp::Div, vec![int(1), int(0)]),
                    // frame [st, ri, ci, acc, a', ri', b', ci']
                    app(cannon_go, vec![v(0), v(4), v(6), v(5), v(7), v(3)]),
                ),
            ),
        );
        // cannonGo steps a b rowIn colIn acc:       frame [st,a,b,ri,ci,acc]
        //   the output tuple is built *before* touching the input
        //   streams, so every node emits its block first (no startup
        //   deadlock) and the pipeline flows.
        b.define(
            cannon_go,
            let_(
                vec![thunk(block_mul_acc, vec![v(5), v(1), v(2)])], // [6] acc'
                if_(
                    prim(rph_machine::PrimOp::Le, vec![v(0), int(1)]),
                    let_(
                        vec![LetRhs::Nil, LetRhs::Tuple(vec![v(6), v(7), v(7)])],
                        atom(v(8)),
                    ),
                    let_(
                        vec![
                            thunk(pre_dec(&pre), vec![v(0)]),                 // [7] steps-1
                            thunk(cannon_next, vec![v(7), v(3), v(4), v(6)]), // [8] rec
                            sel_thunk(&support, 3, 0, v(8)),                  // [9] c
                            sel_thunk(&support, 3, 1, v(8)),                  // [10] ro
                            sel_thunk(&support, 3, 2, v(8)),                  // [11] co
                            LetRhs::Cons(v(1), v(10)), // [12] rowOut = a : ro
                            LetRhs::Cons(v(2), v(11)), // [13] colOut = b : co
                            LetRhs::Tuple(vec![v(9), v(12), v(13)]), // [14]
                        ],
                        atom(v(14)),
                    ),
                ),
            ),
        );
        // cannonNode init rowIn colIn:
        //   init = (a0, b0, zeroBlock, steps)
        let cannon_node = b.def(
            "cannonNode",
            3,
            case_tuple(
                atom(v(0)),
                4,
                // frame [init, rowIn, colIn, a0, b0, zero, steps]
                app(cannon_go, vec![v(6), v(3), v(4), v(1), v(2), v(5)]),
            ),
        );
        Prog {
            program: b.build(),
            support,
            pre,
            block_row_col,
            block_sum,
            gph_main,
            cannon_node,
            checksum,
        }
    }

    /// Shared-heap GpH run: spark one thunk per result block.
    pub fn run_gph(&self, config: GphConfig) -> Result<Measured, String> {
        let p = self.program();
        let (a, bm) = self.inputs();
        let g = self.grid;
        let mut rt = GphRuntime::new(p.program.clone(), config);
        let this = self.clone();
        let out = rt.run(move |heap| {
            // A-block rows and B-block columns as NF lists.
            let a_blocks: Vec<Vec<NodeRef>> = (0..g)
                .map(|i| {
                    (0..g)
                        .map(|k| {
                            let blk = this.block(&a, i, k);
                            heap.alloc_value(Value::DArray(blk.into()))
                        })
                        .collect()
                })
                .collect();
            let b_blocks: Vec<Vec<NodeRef>> = (0..g)
                .map(|k| {
                    (0..g)
                        .map(|j| {
                            let blk = this.block(&bm, k, j);
                            heap.alloc_value(Value::DArray(blk.into()))
                        })
                        .collect()
                })
                .collect();
            let mut result_blocks = Vec::with_capacity(g * g);
            #[allow(clippy::needless_range_loop)] // i/j index rows and columns of two grids
            for i in 0..g {
                let row: Vec<NodeRef> = (0..g).map(|k| a_blocks[i][k]).collect();
                let row_list = list_of(heap, &row);
                for j in 0..g {
                    let col: Vec<NodeRef> = (0..g).map(|k| b_blocks[k][j]).collect();
                    let col_list = list_of(heap, &col);
                    result_blocks.push(heap.alloc_thunk(p.block_row_col, vec![row_list, col_list]));
                }
            }
            let blocks = list_of(heap, &result_blocks);
            heap.alloc_thunk(p.gph_main, vec![blocks])
        })?;
        let value = rt.heap().expect_value(out.result).expect_int();
        Ok(Measured {
            value,
            elapsed: out.elapsed,
            tracer: out.tracer,
            gph_stats: Some(out.stats),
            eden_stats: None,
        })
    }

    /// Distributed-heap Eden run: Cannon's algorithm on a torus of
    /// `grid × grid` processes.
    pub fn run_eden(&self, config: EdenConfig) -> Result<Measured, String> {
        let p = self.program();
        let (a, bm) = self.inputs();
        let g = self.grid;
        let s = self.block_size();
        let mut rt = EdenRuntime::new(p.program.clone(), p.support, config);
        // Cannon pre-alignment: A(i,j) <- A(i, j+i), B(i,j) <- B(i+j, j).
        let mut inits = Vec::with_capacity(g * g);
        for i in 0..g {
            for j in 0..g {
                let ablk = self.block(&a, i, (j + i) % g);
                let bblk = self.block(&bm, (i + j) % g, j);
                let heap = rt.heap_mut(0);
                let an = heap.alloc_value(Value::DArray(ablk.into()));
                let bn = heap.alloc_value(Value::DArray(bblk.into()));
                let zn = heap.alloc_value(Value::DArray(vec![0.0; s * s].into()));
                let st = heap.int(g as i64);
                inits.push(heap.alloc_value(Value::Tuple(vec![an, bn, zn, st].into())));
            }
        }
        let outs = skeletons::torus(&mut rt, p.cannon_node, g, &inits);
        let heap = rt.heap_mut(0);
        let list = list_of(heap, &outs);
        let entry = heap.alloc_thunk(p.checksum, vec![list]);
        let out = rt.run(entry)?;
        let value = rt.heap(0).expect_value(out.result).expect_int();
        Ok(Measured {
            value,
            elapsed: out.elapsed,
            tracer: out.tracer,
            gph_stats: None,
            eden_stats: Some(out.stats),
        })
    }

    /// Sequential baseline: one blockRowCol per result block, no
    /// parallelism, no GC.
    pub fn run_seq(&self) -> Measured {
        let p = self.program();
        let (a, bm) = self.inputs();
        let g = self.grid;
        let mut heap = Heap::new();
        let mut result_blocks = Vec::new();
        for i in 0..g {
            let row: Vec<NodeRef> = (0..g)
                .map(|k| {
                    let blk = self.block(&a, i, k);
                    heap.alloc_value(Value::DArray(blk.into()))
                })
                .collect();
            let row_list = list_of(&mut heap, &row);
            for j in 0..g {
                let col: Vec<NodeRef> = (0..g)
                    .map(|k| {
                        let blk = self.block(&bm, k, j);
                        heap.alloc_value(Value::DArray(blk.into()))
                    })
                    .collect();
                let col_list = list_of(&mut heap, &col);
                result_blocks.push(heap.alloc_thunk(p.block_row_col, vec![row_list, col_list]));
            }
        }
        let blocks = list_of(&mut heap, &result_blocks);
        let entry = heap.alloc_thunk(p.checksum, vec![blocks]);
        let (r, cost) = reference::run_seq(&p.program, &mut heap, entry);
        Measured {
            value: heap.expect_value(r).expect_int(),
            elapsed: cost,
            tracer: rph_trace::Tracer::disabled(0),
            gph_stats: None,
            eden_stats: None,
        }
    }
}

/// Read a normal-form list of DArray blocks.
fn read_block_list(heap: &Heap, mut r: NodeRef) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    loop {
        match heap.expect_value(r) {
            Value::Nil => return out,
            Value::Cons(h, t) => {
                out.push(heap.expect_value(*h).expect_darray().to_vec());
                r = *t;
            }
            other => panic!("block list expected, found {other:?}"),
        }
    }
}

/// Helper: `dec` from the prelude (distinct fn to keep builder tidy).
fn pre_dec(pre: &Prelude) -> ScId {
    pre.dec
}

/// Helper: a `LetRhs` thunk selecting component `k` of an `n`-tuple.
fn sel_thunk(support: &rph_eden::EdenSupport, n: usize, k: usize, t: Atom) -> LetRhs {
    LetRhs::Thunk {
        sc: support.selector(n, k),
        args: vec![t],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gph_matches_oracle() {
        for grid in [1, 2, 4] {
            let w = MatMul::new(40, grid);
            let m = w
                .run_gph(
                    GphConfig::ghc69_plain(4)
                        .with_work_stealing()
                        .without_trace(),
                )
                .unwrap();
            assert_eq!(m.value, w.expected(), "grid {grid}");
        }
    }

    #[test]
    fn eden_cannon_matches_oracle() {
        for grid in [1, 2, 4] {
            let w = MatMul::new(40, grid);
            let m = w.run_eden(EdenConfig::new(4).without_trace()).unwrap();
            assert_eq!(m.value, w.expected(), "grid {grid}");
            assert_eq!(m.eden_stats.unwrap().processes, (grid * grid) as u64);
        }
    }

    #[test]
    fn seq_matches_and_parallel_is_faster() {
        let w = MatMul::new(48, 4);
        let seq = w.run_seq();
        assert_eq!(seq.value, w.expected());
        let par = w
            .run_gph(
                GphConfig::ghc69_plain(8)
                    .with_work_stealing()
                    .without_trace(),
            )
            .unwrap();
        assert!(par.elapsed < seq.elapsed);
    }

    #[test]
    fn eden_oversubscribed_matches() {
        // Fig. 4 e: 4×4 torus = 16+1 virtual PEs on 8 cores.
        let w = MatMul::new(32, 4);
        let m = w
            .run_eden(EdenConfig::oversubscribed(17, 8).without_trace())
            .unwrap();
        assert_eq!(m.value, w.expected());
    }

    #[test]
    fn block_extraction_roundtrip() {
        let w = MatMul::new(6, 3);
        let (a, _) = w.inputs();
        let mut rebuilt = vec![0.0; 36];
        let s = w.block_size();
        for bi in 0..3 {
            for bj in 0..3 {
                let blk = w.block(&a, bi, bj);
                for r in 0..s {
                    for c in 0..s {
                        rebuilt[(bi * s + r) * 6 + bj * s + c] = blk[r * s + c];
                    }
                }
            }
        }
        assert_eq!(rebuilt, a);
    }

    #[test]
    #[should_panic(expected = "grid must divide n")]
    fn bad_grid_rejected() {
        MatMul::new(10, 3);
    }
}
