//! Explicit-SIMD layer for the hot kernels: `f64×4` / `u64×4` lane
//! types over `core::arch::x86_64` AVX2 intrinsics, a portable scalar
//! fallback, and a one-shot runtime dispatch.
//!
//! Three kernels are built on top of it (the per-element cost of the
//! scalar inner loops is the residual ~2× Haskell-vs-C gap SNIPPETS.md
//! Snippet 1 measures, and on a 1-core bench host per-element
//! throughput is the only wall-clock lever):
//!
//! * [`micro_mrxnr`] — the `4×8` register micro-kernel of
//!   `kernels::matmul_tiled_into`, with `_mm256_fmadd_pd` replacing
//!   the scalar mul+add chains (2 FLOPs/instruction, 8 independent
//!   accumulator vectors).
//! * [`floyd_warshall_blocked`] — blocked Floyd–Warshall whose
//!   min-plus tiles run `min(d_ik + d_kj, d_ij)` lane-wise
//!   (`vaddpd`+`vminpd`); phase-3 tiles (disjoint from the pivot
//!   panels) additionally keep the whole C row in registers across the
//!   k sweep, eliminating a load+store per element per k.
//! * [`sum_u64`] — `u64×4`-lane accumulation for the segmented totient
//!   sieve (`kernels::sum_phi_range_sieve`).
//!
//! ## Dispatch strategy
//!
//! No nightly `std::simd`. The vector bodies are compiled with
//! `#[target_feature(enable = …)]` — present in the binary on *any*
//! x86-64 build, regardless of `-C target-cpu` — and selected at
//! runtime by a one-shot `is_x86_feature_detected!` probe, so a
//! release binary built on a newer machine still runs (on its scalar
//! path) on an older one. The ladder is `avx512` → `avx2` → `scalar`:
//! the AVX-512 tier exists because an AVX2 micro-kernel already
//! saturates 256-bit FMA ports, so doubling over the autovectorised
//! baseline takes zmm registers on hosts that have them. The `simd`
//! cargo feature (default on) gates the whole layer:
//! `--no-default-features` builds are forced-scalar by construction,
//! which is what the CI fallback job exercises. At runtime,
//! [`force_scalar`] (or `RPH_FORCE_SCALAR=1`) pins dispatch to the
//! scalar path for differential testing on vector hosts, and
//! `RPH_DISABLE_AVX512=1` caps the ladder at AVX2.
//!
//! ## Exactness
//!
//! Min-plus and the u64 sum are **bit-exact** with their scalar
//! oracles: both are element-wise maps (each output lane's operation
//! sequence is exactly the scalar one), and integer adds are
//! order-free. The matmul micro-kernel contracts mul+add into FMA,
//! which *removes* a rounding per FLOP — exact on the workloads'
//! small-integer inputs (every product and partial sum representable),
//! within a documented ulp envelope on arbitrary floats (see the
//! property tests and DESIGN.md §3.4.5).

use std::sync::atomic::{AtomicBool, Ordering};

/// Lanes in the 256-bit vector types (AVX2 tier).
pub const LANES: usize = 4;

/// Lanes in the 512-bit vector types (AVX-512 tier).
pub const LANES512: usize = 8;

/// Which kernel implementation dispatch selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// Portable scalar loops (any host, `--no-default-features`, or
    /// forced).
    Scalar,
    /// AVX2 (+FMA for matmul) 4-lane kernels.
    Avx2,
    /// AVX-512F 8-lane kernels (the matmul tier that doubles peak FMA
    /// width — an AVX2 micro-kernel already saturates the 256-bit FMA
    /// ports, so 2× over the autovectorised baseline needs zmm).
    Avx512,
}

impl KernelVariant {
    /// Stable label recorded in bench artifacts (`kernel_variant`).
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Avx2 => "avx2",
            KernelVariant::Avx512 => "avx512",
        }
    }
}

/// Runtime override: when set, [`active`] reports
/// [`KernelVariant::Scalar`] even on an AVX2 host. Test-only in
/// spirit; flipping it mid-run is benign (both paths compute the same
/// values — that equivalence is exactly what the forced-scalar tests
/// assert).
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Force (or unforce) the scalar fallback at runtime.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::SeqCst);
}

#[cfg(all(target_arch = "x86_64", feature = "simd"))]
fn avx2_usable() -> bool {
    use std::sync::OnceLock;
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let forced_off = std::env::var_os("RPH_FORCE_SCALAR")
            .map(|v| v != "0" && !v.is_empty())
            .unwrap_or(false);
        !forced_off
            && std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
    })
}

#[cfg(all(target_arch = "x86_64", feature = "simd"))]
fn avx512_usable() -> bool {
    use std::sync::OnceLock;
    static DETECTED: OnceLock<bool> = OnceLock::new();
    // avx512f alone covers every zmm intrinsic the `avx512` module
    // uses; requiring the AVX2 tier too keeps the fallback ladder
    // strictly ordered (and lets the 512-tier borrow 256-bit helpers).
    *DETECTED.get_or_init(|| {
        avx2_usable()
            && std::env::var_os("RPH_DISABLE_AVX512").is_none()
            && std::arch::is_x86_feature_detected!("avx512f")
    })
}

/// The variant the kernel entry points in `kernels` dispatch to,
/// resolved once per process (plus the [`force_scalar`] override).
/// The ladder is strict: `Avx512` implies the `Avx2` tier is usable
/// too. `RPH_DISABLE_AVX512=1` caps dispatch at AVX2 (differential
/// testing of the 256-bit tier on a 512-bit host).
pub fn active() -> KernelVariant {
    #[cfg(all(target_arch = "x86_64", feature = "simd"))]
    {
        if !FORCE_SCALAR.load(Ordering::Relaxed) {
            if avx512_usable() {
                return KernelVariant::Avx512;
            }
            if avx2_usable() {
                return KernelVariant::Avx2;
            }
        }
    }
    KernelVariant::Scalar
}

/// CPU features detected at runtime that matter to this layer —
/// recorded in bench artifacts so a scalar-fallback run can never be
/// mistaken for a vectorised one (`target-cpu=native` binaries look
/// identical from the outside). Independent of the `simd` feature and
/// of [`force_scalar`]: this reports what the *host* has, while
/// `kernel_variant` reports what dispatch *used*.
pub fn cpu_features() -> Vec<&'static str> {
    #[cfg(target_arch = "x86_64")]
    {
        let mut out = Vec::new();
        if std::arch::is_x86_feature_detected!("sse4.2") {
            out.push("sse4.2");
        }
        if std::arch::is_x86_feature_detected!("avx") {
            out.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            out.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            out.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            out.push("avx512f");
        }
        out
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Vec::new()
    }
}

/// Sum `u64` values with 4-wide lane accumulation when available.
/// Integer addition is associative, so this is bit-exact with the
/// scalar fold at any dispatch.
pub fn sum_u64(xs: &[u64]) -> u64 {
    match active() {
        // The AVX-512 ladder implies AVX2; a 512-bit integer-sum tier
        // would not move the sieve (division-bound), so both vector
        // variants share the 256-bit reduction.
        #[cfg(all(target_arch = "x86_64", feature = "simd"))]
        KernelVariant::Avx2 | KernelVariant::Avx512 => unsafe { avx2::sum_u64(xs) },
        _ => sum_u64_scalar(xs),
    }
}

/// The portable scalar fallback for [`sum_u64`] (also the oracle the
/// lane version is property-tested against).
pub fn sum_u64_scalar(xs: &[u64]) -> u64 {
    xs.iter().fold(0u64, |acc, &x| acc.wrapping_add(x))
}

/// The AVX2 side: lane types and the kernels written on them. Every
/// `pub fn` here is `#[target_feature]`-compiled; callers outside an
/// AVX2 context must guard with [`active`] — the `kernels` module's
/// dispatch wrappers are the only intended call sites.
#[cfg(all(target_arch = "x86_64", feature = "simd"))]
// Safe `#[target_feature]` fns are unsafe-to-call from non-AVX2
// contexts; the contract is identical for every item here and stated
// once in the module doc above, so per-fn `# Safety` sections would
// just repeat "caller must have checked `active()`".
#[allow(clippy::missing_safety_doc)]
pub mod avx2 {
    use crate::kernels::{MR, TILE};
    use core::arch::x86_64::*;

    /// Four `f64` lanes in one AVX2 register.
    #[derive(Clone, Copy)]
    #[repr(transparent)]
    pub struct F64x4(__m256d);

    impl F64x4 {
        #[inline]
        #[target_feature(enable = "avx2")]
        pub fn zero() -> Self {
            F64x4(_mm256_setzero_pd())
        }

        #[inline]
        #[target_feature(enable = "avx2")]
        pub fn splat(x: f64) -> Self {
            F64x4(_mm256_set1_pd(x))
        }

        /// # Safety
        /// `p` must be valid for reading 4 consecutive `f64`s.
        #[inline]
        #[target_feature(enable = "avx2")]
        pub unsafe fn load(p: *const f64) -> Self {
            F64x4(_mm256_loadu_pd(p))
        }

        /// # Safety
        /// `p` must be valid for writing 4 consecutive `f64`s.
        #[inline]
        #[target_feature(enable = "avx2")]
        pub unsafe fn store(self, p: *mut f64) {
            _mm256_storeu_pd(p, self.0)
        }

        #[inline]
        #[target_feature(enable = "avx2")]
        pub fn add(self, o: Self) -> Self {
            F64x4(_mm256_add_pd(self.0, o.0))
        }

        /// Lane-wise `self < o ? self : o` — `vminpd` returns the
        /// *second* operand on ties (and NaNs, which the min-plus
        /// kernels never produce), so `via.min(cur)` is exactly the
        /// scalar `if via < cur { via } else { cur }`.
        #[inline]
        #[target_feature(enable = "avx2")]
        pub fn min(self, o: Self) -> Self {
            F64x4(_mm256_min_pd(self.0, o.0))
        }

        /// Fused `self * m + a` (one rounding instead of two).
        #[inline]
        #[target_feature(enable = "avx2", enable = "fma")]
        pub fn mul_add(self, m: Self, a: Self) -> Self {
            F64x4(_mm256_fmadd_pd(self.0, m.0, a.0))
        }
    }

    /// Four `u64` lanes in one AVX2 register (wrapping adds).
    #[derive(Clone, Copy)]
    #[repr(transparent)]
    pub struct U64x4(__m256i);

    impl U64x4 {
        #[inline]
        #[target_feature(enable = "avx2")]
        pub fn zero() -> Self {
            U64x4(_mm256_setzero_si256())
        }

        /// # Safety
        /// `p` must be valid for reading 4 consecutive `u64`s.
        #[inline]
        #[target_feature(enable = "avx2")]
        pub unsafe fn load(p: *const u64) -> Self {
            U64x4(_mm256_loadu_si256(p as *const __m256i))
        }

        #[inline]
        #[target_feature(enable = "avx2")]
        pub fn add(self, o: Self) -> Self {
            U64x4(_mm256_add_epi64(self.0, o.0))
        }

        /// Horizontal wrapping sum of the four lanes.
        #[inline]
        #[target_feature(enable = "avx2")]
        pub fn sum(self) -> u64 {
            let mut out = [0u64; 4];
            unsafe { _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, self.0) };
            out[0]
                .wrapping_add(out[1])
                .wrapping_add(out[2])
                .wrapping_add(out[3])
        }
    }

    /// `u64×4` reduction: four independent accumulator vectors hide
    /// the add latency, scalar tail for the remainder. Bit-exact with
    /// the scalar fold (integer adds commute).
    #[target_feature(enable = "avx2")]
    pub fn sum_u64(xs: &[u64]) -> u64 {
        let chunks = xs.len() / 16;
        let mut acc = [U64x4::zero(); 4];
        for c in 0..chunks {
            let base = unsafe { xs.as_ptr().add(c * 16) };
            for (v, a) in acc.iter_mut().enumerate() {
                *a = a.add(unsafe { U64x4::load(base.add(v * 4)) });
            }
        }
        let mut total = acc[0].add(acc[1]).add(acc[2].add(acc[3])).sum();
        for &x in &xs[chunks * 16..] {
            total = total.wrapping_add(x);
        }
        total
    }

    /// The `MR×NR = 4×8` register micro-kernel on FMA lanes: same
    /// packed-A strip layout and accumulation order as the scalar
    /// `kernels::micro_mrxnr`, but each row's 8 accumulators live in
    /// two `F64x4` registers and every mul+add pair contracts to one
    /// `vfmadd`. 8 accumulator registers + 2 B-row registers + 1
    /// broadcast fit comfortably in the 16 ymm registers.
    ///
    /// Caller contract (same as the scalar micro-kernel): the
    /// `MR×NR` C block at `(i, j)` and the B rows `kk..kk+kw` at
    /// column `j` are fully in bounds, and `ap` holds `kw` k-steps of
    /// `MR` packed A values.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn micro_mrxnr(
        c: &mut [f64],
        ap: &[f64],
        b: &[f64],
        n: usize,
        (i, j): (usize, usize),
        (kk, kw): (usize, usize),
    ) {
        let mut acc = [[F64x4::zero(); 2]; MR];
        for k in 0..kw {
            let brow = unsafe { b.as_ptr().add((kk + k) * n + j) };
            let b0 = unsafe { F64x4::load(brow) };
            let b1 = unsafe { F64x4::load(brow.add(4)) };
            let avals = &ap[k * MR..(k + 1) * MR];
            for (r, accr) in acc.iter_mut().enumerate() {
                let a = F64x4::splat(avals[r]);
                accr[0] = a.mul_add(b0, accr[0]);
                accr[1] = a.mul_add(b1, accr[1]);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let crow = unsafe { c.as_mut_ptr().add((i + r) * n + j) };
            unsafe {
                F64x4::load(crow).add(accr[0]).store(crow);
                F64x4::load(crow.add(4)).add(accr[1]).store(crow.add(4));
            }
        }
    }

    /// Lane min-plus tile relaxation, general form: identical loop
    /// structure to the scalar `kernels::min_plus_tile` (k outermost,
    /// per-k scratch copy of the k-row segment, write-back per row) so
    /// it is valid for the *self-dependent* phases of blocked
    /// Floyd–Warshall — and bit-exact with it, since each output
    /// element sees exactly the scalar candidate sequence.
    #[target_feature(enable = "avx2")]
    pub fn min_plus_tile_general(
        d: &mut [f64],
        n: usize,
        (ci, ch): (usize, usize),
        (cj, cw): (usize, usize),
        (kk, kw): (usize, usize),
        scratch: &mut Vec<f64>,
    ) {
        let vw = cw / 4 * 4;
        for k in kk..kk + kw {
            scratch.clear();
            scratch.extend_from_slice(&d[k * n + cj..k * n + cj + cw]);
            for i in ci..ci + ch {
                let dik = d[i * n + k];
                if !dik.is_finite() {
                    continue;
                }
                let bc = F64x4::splat(dik);
                let row = &mut d[i * n + cj..i * n + cj + cw];
                let mut j = 0;
                while j < vw {
                    unsafe {
                        let via = bc.add(F64x4::load(scratch.as_ptr().add(j)));
                        let cur = F64x4::load(row.as_ptr().add(j));
                        via.min(cur).store(row.as_mut_ptr().add(j));
                    }
                    j += 4;
                }
                for (cv, &bkj) in row[vw..].iter_mut().zip(&scratch[vw..]) {
                    let via = dik + bkj;
                    if via < *cv {
                        *cv = via;
                    }
                }
            }
        }
    }

    /// Lane min-plus tile relaxation, disjoint form: valid only when
    /// the C tile shares no row block with the pivot rows and no
    /// column block with the pivot columns (phase 3 of blocked
    /// Floyd–Warshall), so `d[i][k]` and `d[k][j]` are constant for
    /// the whole tile op. Then the k-loop can run with the entire C
    /// row held in registers — up to `TILE/4 = 8` accumulator vectors
    /// — turning the scalar path's load+store of C per (k, element)
    /// into a single load and store per element for the whole sweep.
    /// Still bit-exact: per element, the candidate `min` sequence is
    /// the same k-ascending order, just accumulated in a register.
    #[target_feature(enable = "avx2")]
    pub fn min_plus_tile_disjoint(
        d: &mut [f64],
        n: usize,
        (ci, ch): (usize, usize),
        (cj, cw): (usize, usize),
        (kk, kw): (usize, usize),
    ) {
        debug_assert!(cw <= TILE);
        if cw == TILE {
            // Full-width tile: compile-time lane count, so the
            // accumulator array unrolls into registers instead of a
            // runtime-indexed stack array (which would re-introduce
            // the per-k load/store this kernel exists to remove).
            min_plus_tile_disjoint_full(d, n, (ci, ch), cj, (kk, kw));
            return;
        }
        let q = cw / 4;
        let rem = cw % 4;
        for i in ci..ci + ch {
            let mut acc = [F64x4::zero(); TILE / 4];
            let mut tail = [0.0f64; 4];
            unsafe {
                let base = d.as_ptr().add(i * n + cj);
                for (v, a) in acc.iter_mut().take(q).enumerate() {
                    *a = F64x4::load(base.add(4 * v));
                }
                for (t, tv) in tail.iter_mut().take(rem).enumerate() {
                    *tv = *base.add(4 * q + t);
                }
            }
            for k in kk..kk + kw {
                let dik = d[i * n + k];
                if !dik.is_finite() {
                    continue;
                }
                let bc = F64x4::splat(dik);
                unsafe {
                    let krow = d.as_ptr().add(k * n + cj);
                    for (v, a) in acc.iter_mut().take(q).enumerate() {
                        let via = bc.add(F64x4::load(krow.add(4 * v)));
                        *a = via.min(*a);
                    }
                    for (t, tv) in tail.iter_mut().take(rem).enumerate() {
                        let via = dik + *krow.add(4 * q + t);
                        if via < *tv {
                            *tv = via;
                        }
                    }
                }
            }
            unsafe {
                let out = d.as_mut_ptr().add(i * n + cj);
                for (v, a) in acc.iter().take(q).enumerate() {
                    a.store(out.add(4 * v));
                }
                for (t, &tv) in tail.iter().take(rem).enumerate() {
                    *out.add(4 * q + t) = tv;
                }
            }
        }
    }

    /// [`min_plus_tile_disjoint`] specialised to `cw == TILE`: the
    /// row lives in `TILE/4 = 8` named registers for the whole k
    /// sweep (constant loop bounds → full unroll, no stack array).
    #[target_feature(enable = "avx2")]
    fn min_plus_tile_disjoint_full(
        d: &mut [f64],
        n: usize,
        (ci, ch): (usize, usize),
        cj: usize,
        (kk, kw): (usize, usize),
    ) {
        const Q: usize = TILE / 4;
        for i in ci..ci + ch {
            let mut acc = [F64x4::zero(); Q];
            unsafe {
                let base = d.as_ptr().add(i * n + cj);
                for (v, a) in acc.iter_mut().enumerate() {
                    *a = F64x4::load(base.add(4 * v));
                }
            }
            for k in kk..kk + kw {
                let dik = d[i * n + k];
                if !dik.is_finite() {
                    continue;
                }
                let bc = F64x4::splat(dik);
                unsafe {
                    let krow = d.as_ptr().add(k * n + cj);
                    for (v, a) in acc.iter_mut().enumerate() {
                        let via = bc.add(F64x4::load(krow.add(4 * v)));
                        *a = via.min(*a);
                    }
                }
            }
            unsafe {
                let out = d.as_mut_ptr().add(i * n + cj);
                for (v, a) in acc.iter().enumerate() {
                    a.store(out.add(4 * v));
                }
            }
        }
    }

    /// Blocked Floyd–Warshall on lane min-plus tiles: the same
    /// three-phase tile schedule as the scalar
    /// `kernels::floyd_warshall_blocked` (pivot tile, pivot panels,
    /// remainder), with the self-dependent phases on
    /// [`min_plus_tile_general`] and the disjoint phase-3 tiles on the
    /// register-blocked [`min_plus_tile_disjoint`]. Results are
    /// bit-identical to the scalar blocked kernel (and hence to plain
    /// `floyd_warshall`).
    #[target_feature(enable = "avx2")]
    pub fn floyd_warshall_blocked(dist: &mut [f64], n: usize) {
        assert_eq!(dist.len(), n * n);
        let mut scratch = Vec::with_capacity(TILE);
        let ext = |tile: usize| {
            let lo = tile * TILE;
            (lo, TILE.min(n - lo))
        };
        let tiles = n.div_ceil(TILE);
        for kb in 0..tiles {
            let kx = ext(kb);
            min_plus_tile_general(dist, n, kx, kx, kx, &mut scratch);
            for jb in 0..tiles {
                if jb != kb {
                    min_plus_tile_general(dist, n, kx, ext(jb), kx, &mut scratch);
                }
            }
            for ib in 0..tiles {
                if ib != kb {
                    min_plus_tile_general(dist, n, ext(ib), kx, kx, &mut scratch);
                }
            }
            for ib in 0..tiles {
                if ib == kb {
                    continue;
                }
                for jb in 0..tiles {
                    if jb != kb {
                        min_plus_tile_disjoint(dist, n, ext(ib), ext(jb), kx);
                    }
                }
            }
        }
    }
}

/// The AVX-512F side: 8-lane `f64` kernels. Same shape as [`avx2`],
/// double the vector width — the tier that matters on hosts with
/// 512-bit FMA ports, where a 256-bit micro-kernel already saturating
/// its ports leaves a further 2× of peak on the table. Same caller
/// contract as [`avx2`]: only the `kernels` dispatch wrappers (after
/// an `active() == Avx512` resolution) may call in.
#[cfg(all(target_arch = "x86_64", feature = "simd"))]
#[allow(clippy::missing_safety_doc)] // same blanket contract as `avx2`
pub mod avx512 {
    use crate::kernels::TILE;
    use core::arch::x86_64::*;

    /// The micro-kernel's C-row footprint on this tier: 8 rows × two
    /// zmm vectors per row = 16 independent FMA chains (covers FMA
    /// latency on two 512-bit ports twice over) and half the B-panel
    /// traffic per C element of a 4-row kernel. 16 accumulators + 2
    /// B vectors + 1 broadcast = 19 of the 32 zmm registers.
    pub const MR512: usize = 8;
    /// The micro-kernel's C-column footprint (two zmm per row).
    pub const NR512: usize = 16;

    /// Eight `f64` lanes in one AVX-512 register.
    #[derive(Clone, Copy)]
    #[repr(transparent)]
    pub struct F64x8(__m512d);

    impl F64x8 {
        #[inline]
        #[target_feature(enable = "avx512f")]
        pub fn zero() -> Self {
            F64x8(_mm512_setzero_pd())
        }

        #[inline]
        #[target_feature(enable = "avx512f")]
        pub fn splat(x: f64) -> Self {
            F64x8(_mm512_set1_pd(x))
        }

        /// # Safety
        /// `p` must be valid for reading 8 consecutive `f64`s.
        #[inline]
        #[target_feature(enable = "avx512f")]
        pub unsafe fn load(p: *const f64) -> Self {
            F64x8(_mm512_loadu_pd(p))
        }

        /// # Safety
        /// `p` must be valid for writing 8 consecutive `f64`s.
        #[inline]
        #[target_feature(enable = "avx512f")]
        pub unsafe fn store(self, p: *mut f64) {
            _mm512_storeu_pd(p, self.0)
        }

        #[inline]
        #[target_feature(enable = "avx512f")]
        pub fn add(self, o: Self) -> Self {
            F64x8(_mm512_add_pd(self.0, o.0))
        }

        /// Lane-wise minimum. Like `vminpd` on the 256-bit tier this
        /// returns the *second* operand on ties, so `via.min(cur)`
        /// reproduces the scalar `if via < cur { via } else { cur }`.
        #[inline]
        #[target_feature(enable = "avx512f")]
        pub fn min(self, o: Self) -> Self {
            F64x8(_mm512_min_pd(self.0, o.0))
        }

        /// `self * a + b`, one rounding (FMA is part of AVX-512F).
        #[inline]
        #[target_feature(enable = "avx512f")]
        pub fn mul_add(self, a: Self, b: Self) -> Self {
            F64x8(_mm512_fmadd_pd(self.0, a.0, b.0))
        }
    }

    /// The `MR512×NR512 = 8×16` register micro-kernel on zmm lanes:
    /// structurally the [`super::avx2::micro_mrxnr`] kernel with each
    /// row's 16 accumulators in two `F64x8` registers and twice the
    /// row count. The driver's j-loop steps by [`NR512`] and its A
    /// packing switches to [`MR512`]-deep strips when this tier is
    /// active (the strip layout stays k-major; C width never enters
    /// it).
    ///
    /// Caller contract: the `MR512×NR512` C block at `(i, j)` and the
    /// B rows `kk..kk+kw` at column `j` are fully in bounds, and `ap`
    /// holds `kw` k-steps of `MR512` packed A values.
    #[target_feature(enable = "avx512f")]
    pub fn micro_mrxnr(
        c: &mut [f64],
        ap: &[f64],
        b: &[f64],
        n: usize,
        (i, j): (usize, usize),
        (kk, kw): (usize, usize),
    ) {
        let mut acc = [[F64x8::zero(); 2]; MR512];
        for k in 0..kw {
            let brow = unsafe { b.as_ptr().add((kk + k) * n + j) };
            let b0 = unsafe { F64x8::load(brow) };
            let b1 = unsafe { F64x8::load(brow.add(8)) };
            let avals = &ap[k * MR512..(k + 1) * MR512];
            for (r, accr) in acc.iter_mut().enumerate() {
                let a = F64x8::splat(avals[r]);
                accr[0] = a.mul_add(b0, accr[0]);
                accr[1] = a.mul_add(b1, accr[1]);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let crow = unsafe { c.as_mut_ptr().add((i + r) * n + j) };
            unsafe {
                F64x8::load(crow).add(accr[0]).store(crow);
                F64x8::load(crow.add(8)).add(accr[1]).store(crow.add(8));
            }
        }
    }

    /// Lane min-plus tile relaxation, general (self-dependent) form on
    /// zmm lanes; loop structure identical to the scalar
    /// `kernels::min_plus_tile`, so bit-exact with it — see
    /// [`super::avx2::min_plus_tile_general`] for the argument.
    #[target_feature(enable = "avx512f")]
    pub fn min_plus_tile_general(
        d: &mut [f64],
        n: usize,
        (ci, ch): (usize, usize),
        (cj, cw): (usize, usize),
        (kk, kw): (usize, usize),
        scratch: &mut Vec<f64>,
    ) {
        let vw = cw / 8 * 8;
        for k in kk..kk + kw {
            scratch.clear();
            scratch.extend_from_slice(&d[k * n + cj..k * n + cj + cw]);
            for i in ci..ci + ch {
                let dik = d[i * n + k];
                if !dik.is_finite() {
                    continue;
                }
                let bc = F64x8::splat(dik);
                let row = &mut d[i * n + cj..i * n + cj + cw];
                let mut j = 0;
                while j < vw {
                    unsafe {
                        let via = bc.add(F64x8::load(scratch.as_ptr().add(j)));
                        let cur = F64x8::load(row.as_ptr().add(j));
                        via.min(cur).store(row.as_mut_ptr().add(j));
                    }
                    j += 8;
                }
                for (cv, &bkj) in row[vw..].iter_mut().zip(&scratch[vw..]) {
                    let via = dik + bkj;
                    if via < *cv {
                        *cv = via;
                    }
                }
            }
        }
    }

    /// Lane min-plus tile relaxation, disjoint (phase-3) form on zmm
    /// lanes: whole C row in `TILE/8 = 4` accumulator vectors across
    /// the k sweep. Validity and bit-exactness arguments as for
    /// [`super::avx2::min_plus_tile_disjoint`].
    #[target_feature(enable = "avx512f")]
    pub fn min_plus_tile_disjoint(
        d: &mut [f64],
        n: usize,
        (ci, ch): (usize, usize),
        (cj, cw): (usize, usize),
        (kk, kw): (usize, usize),
    ) {
        debug_assert!(cw <= TILE);
        if cw == TILE {
            // Compile-time lane count — see the AVX2 twin for why.
            min_plus_tile_disjoint_full(d, n, (ci, ch), cj, (kk, kw));
            return;
        }
        let q = cw / 8;
        let rem = cw % 8;
        for i in ci..ci + ch {
            let mut acc = [F64x8::zero(); TILE / 8];
            let mut tail = [0.0f64; 8];
            unsafe {
                let base = d.as_ptr().add(i * n + cj);
                for (v, a) in acc.iter_mut().take(q).enumerate() {
                    *a = F64x8::load(base.add(8 * v));
                }
                for (t, tv) in tail.iter_mut().take(rem).enumerate() {
                    *tv = *base.add(8 * q + t);
                }
            }
            for k in kk..kk + kw {
                let dik = d[i * n + k];
                if !dik.is_finite() {
                    continue;
                }
                let bc = F64x8::splat(dik);
                unsafe {
                    let krow = d.as_ptr().add(k * n + cj);
                    for (v, a) in acc.iter_mut().take(q).enumerate() {
                        let via = bc.add(F64x8::load(krow.add(8 * v)));
                        *a = via.min(*a);
                    }
                    for (t, tv) in tail.iter_mut().take(rem).enumerate() {
                        let via = dik + *krow.add(8 * q + t);
                        if via < *tv {
                            *tv = via;
                        }
                    }
                }
            }
            unsafe {
                let out = d.as_mut_ptr().add(i * n + cj);
                for (v, a) in acc.iter().take(q).enumerate() {
                    a.store(out.add(8 * v));
                }
                for (t, &tv) in tail.iter().take(rem).enumerate() {
                    *out.add(8 * q + t) = tv;
                }
            }
        }
    }

    /// [`min_plus_tile_disjoint`] specialised to `cw == TILE`,
    /// processing `RB = 4` C rows per k sweep: 4 rows × `TILE/8 = 4`
    /// zmm accumulators = 16 independent min chains (a single row's 4
    /// chains leave the loop bound by vminpd *latency*), and each
    /// pivot-row vector `d[k][cj..cj+TILE]` is loaded once per 4 rows
    /// instead of once per row. The `dik` non-finite skip is dropped
    /// in favour of letting `+∞` candidates lose every `min`: with no
    /// `-∞` in a distance matrix `∞ + x = ∞` never beats a current
    /// value (and ties return the current operand), so the result is
    /// still bit-exact with the skipping scalar loop.
    #[target_feature(enable = "avx512f")]
    fn min_plus_tile_disjoint_full(
        d: &mut [f64],
        n: usize,
        (ci, ch): (usize, usize),
        cj: usize,
        (kk, kw): (usize, usize),
    ) {
        const Q: usize = TILE / 8;
        const RB: usize = 4;
        let mut i = ci;
        while i + RB <= ci + ch {
            let mut acc = [[F64x8::zero(); Q]; RB];
            unsafe {
                for (r, accr) in acc.iter_mut().enumerate() {
                    let base = d.as_ptr().add((i + r) * n + cj);
                    for (v, a) in accr.iter_mut().enumerate() {
                        *a = F64x8::load(base.add(8 * v));
                    }
                }
            }
            for k in kk..kk + kw {
                unsafe {
                    let krow = d.as_ptr().add(k * n + cj);
                    let bk = [
                        F64x8::load(krow),
                        F64x8::load(krow.add(8)),
                        F64x8::load(krow.add(16)),
                        F64x8::load(krow.add(24)),
                    ];
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let bc = F64x8::splat(*d.as_ptr().add((i + r) * n + k));
                        for (v, a) in accr.iter_mut().enumerate() {
                            *a = bc.add(bk[v]).min(*a);
                        }
                    }
                }
            }
            unsafe {
                for (r, accr) in acc.iter().enumerate() {
                    let out = d.as_mut_ptr().add((i + r) * n + cj);
                    for (v, a) in accr.iter().enumerate() {
                        a.store(out.add(8 * v));
                    }
                }
            }
            i += RB;
        }
        // Short row remainder (edge tiles where ch < TILE): one row at
        // a time, same branchless candidate stream.
        for i in i..ci + ch {
            let mut acc = [F64x8::zero(); Q];
            unsafe {
                let base = d.as_ptr().add(i * n + cj);
                for (v, a) in acc.iter_mut().enumerate() {
                    *a = F64x8::load(base.add(8 * v));
                }
            }
            for k in kk..kk + kw {
                let bc = F64x8::splat(d[i * n + k]);
                unsafe {
                    let krow = d.as_ptr().add(k * n + cj);
                    for (v, a) in acc.iter_mut().enumerate() {
                        let via = bc.add(F64x8::load(krow.add(8 * v)));
                        *a = via.min(*a);
                    }
                }
            }
            unsafe {
                let out = d.as_mut_ptr().add(i * n + cj);
                for (v, a) in acc.iter().enumerate() {
                    a.store(out.add(8 * v));
                }
            }
        }
    }

    /// Blocked Floyd–Warshall on zmm min-plus tiles; same three-phase
    /// schedule as the scalar and AVX2 versions, bit-identical output.
    #[target_feature(enable = "avx512f")]
    pub fn floyd_warshall_blocked(dist: &mut [f64], n: usize) {
        assert_eq!(dist.len(), n * n);
        let mut scratch = Vec::with_capacity(TILE);
        let ext = |tile: usize| {
            let lo = tile * TILE;
            (lo, TILE.min(n - lo))
        };
        let tiles = n.div_ceil(TILE);
        for kb in 0..tiles {
            let kx = ext(kb);
            min_plus_tile_general(dist, n, kx, kx, kx, &mut scratch);
            for jb in 0..tiles {
                if jb != kb {
                    min_plus_tile_general(dist, n, kx, ext(jb), kx, &mut scratch);
                }
            }
            for ib in 0..tiles {
                if ib != kb {
                    min_plus_tile_general(dist, n, ext(ib), kx, kx, &mut scratch);
                }
            }
            for ib in 0..tiles {
                if ib == kb {
                    continue;
                }
                for jb in 0..tiles {
                    if jb != kb {
                        min_plus_tile_disjoint(dist, n, ext(ib), ext(jb), kx);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_are_stable() {
        assert_eq!(KernelVariant::Scalar.name(), "scalar");
        assert_eq!(KernelVariant::Avx2.name(), "avx2");
        assert_eq!(KernelVariant::Avx512.name(), "avx512");
    }

    #[test]
    fn force_scalar_pins_dispatch() {
        force_scalar(true);
        assert_eq!(active(), KernelVariant::Scalar);
        force_scalar(false);
        // Whatever the host, dispatch must resolve to *something*
        // deterministic and sum_u64 must agree with the scalar fold.
        let xs: Vec<u64> = (0..103).map(|i| i * i + 7).collect();
        assert_eq!(sum_u64(&xs), sum_u64_scalar(&xs));
    }

    #[test]
    fn sum_u64_handles_remainders_and_wrapping() {
        for len in [0usize, 1, 3, 4, 5, 15, 16, 17, 63, 64, 65] {
            let xs: Vec<u64> = (0..len as u64).map(|i| u64::MAX / 2 + i * 31).collect();
            assert_eq!(sum_u64(&xs), sum_u64_scalar(&xs), "len={len}");
        }
    }

    #[cfg(all(target_arch = "x86_64", feature = "simd"))]
    #[test]
    fn lane_sum_matches_scalar_when_avx2_present() {
        if active() == KernelVariant::Scalar {
            return; // scalar-only host: nothing to differentiate
        }
        let xs: Vec<u64> = (0..1000).map(|i| i * 2654435761).collect();
        assert_eq!(unsafe { avx2::sum_u64(&xs) }, sum_u64_scalar(&xs));
    }

    #[test]
    fn dispatch_ladder_is_consistent_with_host_features() {
        // active() must never claim a tier the host lacks.
        let feats = cpu_features();
        match active() {
            KernelVariant::Avx512 => {
                assert!(feats.contains(&"avx512f"));
                assert!(feats.contains(&"avx2") && feats.contains(&"fma"));
            }
            KernelVariant::Avx2 => {
                assert!(feats.contains(&"avx2") && feats.contains(&"fma"));
            }
            KernelVariant::Scalar => {}
        }
    }
}
