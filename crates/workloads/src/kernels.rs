//! Native compute kernels shared by the workloads.
//!
//! Kernels really compute (gcd-based totients, floating block products,
//! min-plus row relaxations) and report costs derived from their actual
//! operation counts, plus the transient allocation the equivalent
//! Haskell inner loop would have produced (list spines and boxed
//! intermediates that a copying collector never pays to copy but that
//! fill the allocation area).

/// Cost of one gcd loop iteration (one Euclidean `mod` step).
pub const C_GCD_ITER: u64 = 22;
/// Per-candidate loop overhead in `phi` (list element, filter test).
pub const C_PHI_CANDIDATE: u64 = 12;
/// Transient words a Haskell `phi` allocates per candidate
/// (enumeration cons + filter machinery).
pub const W_PHI_CANDIDATE: u64 = 5;
/// Cost of one fused multiply-add in the block product.
pub const C_FMA: u64 = 1;
/// Cost of one min-plus relaxation step (add + compare + select).
pub const C_MINPLUS: u64 = 3;

/// gcd with an iteration count (Euclidean algorithm, the inner loop of
/// the naïve `relprime`).
#[inline]
pub fn gcd_counted(mut a: i64, mut b: i64, iters: &mut u64) -> i64 {
    while b != 0 {
        *iters += 1;
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Euler's totient, computed naïvely exactly like the paper's
/// `phi n = length (filter (relprime n) [1..n-1])`.
/// Returns `(phi(k), cost, transient_words)`.
pub fn phi_counted(k: i64) -> (i64, u64, u64) {
    let mut iters = 0u64;
    let mut count = 0i64;
    for j in 1..k {
        if gcd_counted(j, k, &mut iters) == 1 {
            count += 1;
        }
    }
    let candidates = (k - 1).max(0) as u64;
    (
        count,
        iters * C_GCD_ITER + candidates * C_PHI_CANDIDATE,
        candidates * W_PHI_CANDIDATE,
    )
}

/// Memoised [`phi_counted`]: benchmark sweeps evaluate the same
/// totients across dozens of configurations; the value (and its true
/// cost accounting) is computed honestly once per `k` and cached for
/// the life of the process.
pub fn phi_cached(k: i64) -> (i64, u64, u64) {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type Cache = Mutex<HashMap<i64, (i64, u64, u64)>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&k) {
        return *hit;
    }
    let computed = phi_counted(k);
    cache.lock().unwrap().insert(k, computed);
    computed
}

/// `sum (map phi [lo..hi])` with cost accounting.
pub fn sum_phi_range(lo: i64, hi: i64) -> (i64, u64, u64) {
    let mut total = 0i64;
    let mut cost = 0u64;
    let mut words = 0u64;
    for k in lo..=hi {
        let (p, c, w) = phi_cached(k);
        total += p;
        cost += c;
        words += w;
    }
    (total, cost, words)
}

/// Dense `s×s` block multiply-accumulate: `acc + a·b` (row-major).
/// Returns the new block and the flop count ×[`C_FMA`].
pub fn block_mul_acc(acc: &[f64], a: &[f64], b: &[f64], s: usize) -> (Vec<f64>, u64) {
    assert_eq!(acc.len(), s * s);
    assert_eq!(a.len(), s * s);
    assert_eq!(b.len(), s * s);
    let mut out = acc.to_vec();
    for i in 0..s {
        for k in 0..s {
            let aik = a[i * s + k];
            let row = &b[k * s..(k + 1) * s];
            let orow = &mut out[i * s..(i + 1) * s];
            for j in 0..s {
                orow[j] += aik * row[j];
            }
        }
    }
    (out, (s * s * s) as u64 * 2 * C_FMA)
}

/// One Floyd–Warshall relaxation of `row_i` by pivot row `row_k`
/// (pivot index `k`, 0-based): `d[t] = min(d[t], d[k] + row_k[t])`.
/// Returns the new row and the cost.
pub fn min_plus_update(row_i: &[f64], row_k: &[f64], k: usize) -> (Vec<f64>, u64) {
    assert_eq!(row_i.len(), row_k.len());
    let dik = row_i[k];
    let mut out = Vec::with_capacity(row_i.len());
    for (t, &d) in row_i.iter().enumerate() {
        let via = dik + row_k[t];
        out.push(if via < d { via } else { d });
    }
    (out, row_i.len() as u64 * C_MINPLUS)
}

/// Plain-Rust Floyd–Warshall: the APSP oracle.
#[allow(clippy::needless_range_loop)] // i/k/j index two rows of `dist` at once
pub fn floyd_warshall(dist: &mut [Vec<f64>]) {
    let n = dist.len();
    for k in 0..n {
        for i in 0..n {
            let dik = dist[i][k];
            if !dik.is_finite() {
                continue;
            }
            for j in 0..n {
                let via = dik + dist[k][j];
                if via < dist[i][j] {
                    dist[i][j] = via;
                }
            }
        }
    }
}

/// Plain-Rust dense matmul oracle (row-major `n×n`).
pub fn matmul_oracle(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Plain-Rust sumEuler oracle.
pub fn sum_euler_oracle(n: i64) -> i64 {
    (1..=n).map(|k| phi_counted(k).0).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_small_values() {
        // φ(1)=0 (by the paper's definition: |{j < 1}| = 0),
        // φ(2)=1, φ(6)=2, φ(10)=4, φ(12)=4.
        assert_eq!(phi_counted(1).0, 0);
        assert_eq!(phi_counted(2).0, 1);
        assert_eq!(phi_counted(6).0, 2);
        assert_eq!(phi_counted(10).0, 4);
        assert_eq!(phi_counted(12).0, 4);
    }

    #[test]
    fn phi_of_prime_is_p_minus_1() {
        for p in [2i64, 3, 5, 7, 11, 13, 97] {
            assert_eq!(phi_counted(p).0, p - 1);
        }
    }

    #[test]
    fn phi_costs_grow_with_k() {
        let (_, c1, w1) = phi_counted(100);
        let (_, c2, w2) = phi_counted(1000);
        assert!(c2 > c1 * 5);
        assert!(w2 > w1 * 5);
    }

    #[test]
    fn sum_phi_range_splits_consistently() {
        let (whole, _, _) = sum_phi_range(1, 100);
        let (a, _, _) = sum_phi_range(1, 40);
        let (b, _, _) = sum_phi_range(41, 100);
        assert_eq!(whole, a + b);
        assert_eq!(whole, sum_euler_oracle(100));
    }

    #[test]
    fn block_mul_matches_oracle() {
        let s = 4;
        let a: Vec<f64> = (0..s * s).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..s * s).map(|i| (i % 5) as f64 - 2.0).collect();
        let zero = vec![0.0; s * s];
        let (c, cost) = block_mul_acc(&zero, &a, &b, s);
        assert_eq!(c, matmul_oracle(&a, &b, s));
        assert_eq!(cost, (s * s * s) as u64 * 2 * C_FMA);
        // Accumulation: acc + a·b.
        let (c2, _) = block_mul_acc(&c, &a, &b, s);
        let double: Vec<f64> = c.iter().map(|x| x * 2.0).collect();
        assert_eq!(c2, double);
    }

    #[test]
    fn min_plus_matches_floyd_warshall_step() {
        let inf = f64::INFINITY;
        let mut d = vec![
            vec![0.0, 3.0, inf],
            vec![3.0, 0.0, 1.0],
            vec![inf, 1.0, 0.0],
        ];
        // Relax row 0 by pivot row 1.
        let (r0, _) = min_plus_update(&d[0], &d[1], 1);
        assert_eq!(r0, vec![0.0, 3.0, 4.0]);
        floyd_warshall(&mut d);
        assert_eq!(d[0], vec![0.0, 3.0, 4.0]);
        assert_eq!(d[2], vec![4.0, 1.0, 0.0]);
    }

    #[test]
    fn gcd_counts_iterations() {
        let mut it = 0;
        assert_eq!(gcd_counted(48, 18, &mut it), 6);
        assert!(it >= 2);
    }
}
