//! Native compute kernels shared by the workloads.
//!
//! Kernels really compute (gcd-based totients, floating block products,
//! min-plus row relaxations) and report costs derived from their actual
//! operation counts, plus the transient allocation the equivalent
//! Haskell inner loop would have produced (list spines and boxed
//! intermediates that a copying collector never pays to copy but that
//! fill the allocation area).

/// Cost of one gcd loop iteration (one Euclidean `mod` step).
pub const C_GCD_ITER: u64 = 22;
/// Per-candidate loop overhead in `phi` (list element, filter test).
pub const C_PHI_CANDIDATE: u64 = 12;
/// Transient words a Haskell `phi` allocates per candidate
/// (enumeration cons + filter machinery).
pub const W_PHI_CANDIDATE: u64 = 5;
/// Cost of one fused multiply-add in the block product.
pub const C_FMA: u64 = 1;
/// Cost of one min-plus relaxation step (add + compare + select).
pub const C_MINPLUS: u64 = 3;

/// gcd with an iteration count (Euclidean algorithm, the inner loop of
/// the naïve `relprime`).
#[inline]
pub fn gcd_counted(mut a: i64, mut b: i64, iters: &mut u64) -> i64 {
    while b != 0 {
        *iters += 1;
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Euler's totient, computed naïvely exactly like the paper's
/// `phi n = length (filter (relprime n) [1..n-1])`.
/// Returns `(phi(k), cost, transient_words)`.
pub fn phi_counted(k: i64) -> (i64, u64, u64) {
    let mut iters = 0u64;
    let mut count = 0i64;
    for j in 1..k {
        if gcd_counted(j, k, &mut iters) == 1 {
            count += 1;
        }
    }
    let candidates = (k - 1).max(0) as u64;
    (
        count,
        iters * C_GCD_ITER + candidates * C_PHI_CANDIDATE,
        candidates * W_PHI_CANDIDATE,
    )
}

/// Memoised [`phi_counted`]: benchmark sweeps evaluate the same
/// totients across dozens of configurations; the value (and its true
/// cost accounting) is computed honestly once per `k` and cached for
/// the life of the process.
pub fn phi_cached(k: i64) -> (i64, u64, u64) {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type Cache = Mutex<HashMap<i64, (i64, u64, u64)>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&k) {
        return *hit;
    }
    let computed = phi_counted(k);
    cache.lock().unwrap().insert(k, computed);
    computed
}

/// `sum (map phi [lo..hi])` with cost accounting.
///
/// This is the **simulator's** kernel: its cost/word numbers model the
/// paper's naïve Haskell `phi` (gcd loop per candidate), so they must
/// keep coming from [`phi_counted`]'s real iteration counts. The
/// native backends and the job server, which charge wall-clock time
/// instead of modelled cost, use [`sum_phi_range_sieve`] — same
/// values, bit-for-bit, at a fraction of the per-element cost.
pub fn sum_phi_range(lo: i64, hi: i64) -> (i64, u64, u64) {
    let mut total = 0i64;
    let mut cost = 0u64;
    let mut words = 0u64;
    for k in lo..=hi {
        let (p, c, w) = phi_cached(k);
        total += p;
        cost += c;
        words += w;
    }
    (total, cost, words)
}

/// Primes `<= limit` by a plain sieve of Eratosthenes (the seed primes
/// for the segmented totient sieve; `limit` is `isqrt(hi)`, so this is
/// tiny next to the segment work).
fn small_primes(limit: u64) -> Vec<u64> {
    if limit < 2 {
        return Vec::new();
    }
    let limit = limit as usize;
    let mut composite = vec![false; limit + 1];
    let mut primes = Vec::new();
    for p in 2..=limit {
        if composite[p] {
            continue;
        }
        primes.push(p as u64);
        let mut m = p * p;
        while m <= limit {
            composite[m] = true;
            m += p;
        }
    }
    primes
}

/// Numbers per segment of the totient sieve: 2 × 16 KiB of u64 per
/// live segment (`phi` + `rem`) keeps both arrays L1/L2-resident while
/// still amortising the prime loop.
const SIEVE_SEG: u64 = 1 << 11;

/// `sum (map phi [lo..hi])` by a segmented smallest-prime-factor
/// sieve — the native/server totient kernel behind the same `(lo, hi)`
/// packed-range signature the executor tasks use, so lazy splitting
/// and the sim-vs-native differentials see identical task shapes and
/// **bit-identical values** ([`phi_counted`] is the oracle; the paper
/// defines φ(1) = 0 and the sieve honours that).
///
/// Per segment: `phi[i] = rem[i] = k`; for every seed prime `p ≤
/// √hi`, each multiple applies `phi ← phi/p·(p−1)` once and strips
/// `p` from `rem`; a leftover `rem > 1` is the single prime factor
/// `> √hi` and applies the same factor step. Both divisions are exact
/// at every step (the untouched prime powers still divide `phi`). The
/// final accumulation runs on `u64×4` lanes via [`crate::simd::sum_u64`]
/// — integer adds, so lane order changes nothing.
///
/// Replaces a per-`k` Euclidean gcd scan (`O(k log k)` *per totient*)
/// with `O(seg · log log hi)` per segment — the algorithmic half of
/// closing the per-element gap; the lane accumulation is the SIMD
/// half.
///
/// Requires `lo ≥ 1` whenever the range is non-empty: the paper's φ is
/// only defined on positive `k`, and [`sum_phi_range`] would iterate
/// from the original `lo` while the sieve clamps to 1, so the
/// bit-identical contract holds only on that shared domain.
pub fn sum_phi_range_sieve(lo: i64, hi: i64) -> i64 {
    if hi < lo {
        return 0;
    }
    debug_assert!(lo >= 1, "sum_phi_range_sieve requires lo >= 1, got {lo}");
    let lo = lo.max(1) as u64;
    let hi = hi as u64;
    let primes = small_primes(hi.isqrt());
    let mut phi: Vec<u64> = Vec::with_capacity(SIEVE_SEG as usize);
    let mut rem: Vec<u64> = Vec::with_capacity(SIEVE_SEG as usize);
    let mut total = 0u64;
    let mut seg_lo = lo;
    while seg_lo <= hi {
        let seg_hi = (seg_lo + SIEVE_SEG - 1).min(hi);
        let len = (seg_hi - seg_lo + 1) as usize;
        phi.clear();
        phi.extend(seg_lo..=seg_hi);
        rem.clear();
        rem.extend(seg_lo..=seg_hi);
        for &p in &primes {
            let mut m = seg_lo.div_ceil(p) * p;
            while m <= seg_hi {
                let idx = (m - seg_lo) as usize;
                phi[idx] = phi[idx] / p * (p - 1);
                while rem[idx].is_multiple_of(p) {
                    rem[idx] /= p;
                }
                m += p;
            }
        }
        for (pv, &rv) in phi.iter_mut().zip(rem.iter()) {
            if rv > 1 {
                *pv = *pv / rv * (rv - 1);
            }
        }
        if seg_lo == 1 {
            // The paper's φ(1) = |{j < 1 : gcd(j,1)=1}| = 0, not the
            // number-theory convention φ(1) = 1.
            phi[0] = 0;
        }
        total = total.wrapping_add(crate::simd::sum_u64(&phi[..len]));
        seg_lo = seg_hi + 1;
    }
    total as i64
}

/// Dense `s×s` block multiply-accumulate: `acc + a·b` (row-major),
/// naïve `i,k,j` triple loop. Kept as the **oracle** for
/// [`block_mul_acc`]: its per-element accumulation order is the
/// reference the tiled kernel's property tests compare against.
/// Returns the new block and the flop count ×[`C_FMA`].
pub fn block_mul_acc_naive(acc: &[f64], a: &[f64], b: &[f64], s: usize) -> (Vec<f64>, u64) {
    assert_eq!(acc.len(), s * s);
    assert_eq!(a.len(), s * s);
    assert_eq!(b.len(), s * s);
    let mut out = acc.to_vec();
    for i in 0..s {
        for k in 0..s {
            let aik = a[i * s + k];
            let row = &b[k * s..(k + 1) * s];
            let orow = &mut out[i * s..(i + 1) * s];
            for j in 0..s {
                orow[j] += aik * row[j];
            }
        }
    }
    (out, (s * s * s) as u64 * 2 * C_FMA)
}

/// Edge length of one cache tile in the blocked kernels. Three `T×T`
/// f64 tiles (an A tile, a B tile, a C tile) occupy 3·32²·8 = 24 KiB —
/// inside every L1d this code will meet — so the inner loops hit L1
/// instead of streaming the whole matrix through it per output row.
pub const TILE: usize = 32;

/// Rows of C the register micro-kernel holds at once.
pub(crate) const MR: usize = 4;
/// Columns of C the register micro-kernel holds at once.
pub(crate) const NR: usize = 8;

/// The register micro-kernel: accumulate the `MR×NR` C sub-block at
/// `(i, j)` over a packed A strip of `kw` k-steps entirely in
/// registers (one add into memory per C element at the end, instead of
/// a load/add/store per FLOP), with `NR` independent accumulator
/// chains per row so the FP-add latency chain never serialises.
///
/// `ap` is the strip's slice of the packed A tile (see
/// [`matmul_tiled_into`]): `MR` row values per k-step, contiguous — so
/// the k-loop reads A forward through one stream instead of striding
/// `MR` rows of the source matrix in parallel.
#[inline]
fn micro_mrxnr(
    c: &mut [f64],
    ap: &[f64],
    b: &[f64],
    n: usize,
    (i, j): (usize, usize),
    (kk, kw): (usize, usize),
) {
    let mut acc = [[0.0f64; NR]; MR];
    for k in 0..kw {
        let brow = &b[(kk + k) * n + j..(kk + k) * n + j + NR];
        let avals = &ap[k * MR..(k + 1) * MR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let aik = avals[r];
            for (av, &bv) in accr.iter_mut().zip(brow) {
                *av += aik * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let crow = &mut c[(i + r) * n + j..(i + r) * n + j + NR];
        for (cv, &av) in crow.iter_mut().zip(accr) {
            *cv += av;
        }
    }
}

/// Scalar fallback for edge regions the micro-kernel's `MR×NR`
/// footprint does not cover: `c[i0..i1][j0..j1] += a[·][k0..k1]·b`.
#[inline]
fn scalar_edge(
    c: &mut [f64],
    a: &[f64],
    b: &[f64],
    n: usize,
    (i0, i1): (usize, usize),
    (k0, k1): (usize, usize),
    (j0, j1): (usize, usize),
) {
    for i in i0..i1 {
        for k in k0..k1 {
            let aik = a[i * n + k];
            let brow = &b[k * n + j0..k * n + j1];
            let crow = &mut c[i * n + j0..i * n + j1];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
}

/// Cache-blocked `c += a·b` over row-major `n×n` matrices: `TILE`-deep
/// k-panels (so the B panel a sweep reuses stays cache-resident), each
/// A tile **packed** into `MR`-interleaved strips (the micro-kernel's
/// k-loop then reads A as one forward stream instead of `MR` strided
/// row cursors), the `MR×NR` register micro-kernel inside, and scalar
/// edge loops for the rows/columns a non-divisible `n` leaves over.
///
/// The micro-kernel dispatches through [`crate::simd::active`]: on an
/// AVX2+FMA host it is the lane kernel ([`crate::simd::avx2::micro_mrxnr`],
/// FMA-contracted), otherwise the scalar one. All workload inputs are
/// small integers, so every product and every partial sum is exactly
/// representable and the result is **exactly** the naïve kernel's on
/// either path — regrouping (and FMA-contracting) the additions loses
/// nothing there. For general floats the paths differ by reassociation
/// and contraction only, within the ulp envelope the property tests
/// gate (DESIGN.md §3.4.5).
pub fn matmul_tiled_into(c: &mut [f64], a: &[f64], b: &[f64], n: usize) {
    matmul_tiled_driver(c, a, b, n, crate::simd::active());
}

/// [`matmul_tiled_into`] pinned to the scalar micro-kernel: the
/// dispatch-independent baseline the bench gates and the forced-scalar
/// tests measure against.
pub fn matmul_tiled_into_scalar(c: &mut [f64], a: &[f64], b: &[f64], n: usize) {
    matmul_tiled_driver(c, a, b, n, crate::simd::KernelVariant::Scalar);
}

fn matmul_tiled_driver(
    c: &mut [f64],
    a: &[f64],
    b: &[f64],
    n: usize,
    variant: crate::simd::KernelVariant,
) {
    assert_eq!(c.len(), n * n);
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    // Micro-kernel footprint per variant: the AVX-512 tier covers
    // 8×16 of C per call (twice the rows and columns — the extra rows
    // halve B-panel traffic per C element), the others MR×NR. The A
    // packing below is mr-deep to match; layout stays k-major.
    let (mr, nr) = match variant {
        #[cfg(all(target_arch = "x86_64", feature = "simd"))]
        crate::simd::KernelVariant::Avx512 => {
            (crate::simd::avx512::MR512, crate::simd::avx512::NR512)
        }
        _ => (MR, NR),
    };
    // Packed A tile: strip s holds rows [ii + s·mr, ii + (s+1)·mr) of
    // the tile, laid out k-major — apack[s·mr·kw + k·mr + r].
    let mut apack = vec![0.0f64; TILE * TILE];
    for ii in (0..n).step_by(TILE) {
        let i_end = (ii + TILE).min(n);
        for kk in (0..n).step_by(TILE) {
            let k_end = (kk + TILE).min(n);
            let kw = k_end - kk;
            let mut strips = 0;
            let mut i = ii;
            while i + mr <= i_end {
                let base = strips * mr * kw;
                for (dk, k) in (kk..k_end).enumerate() {
                    for r in 0..mr {
                        apack[base + dk * mr + r] = a[(i + r) * n + k];
                    }
                }
                strips += 1;
                i += mr;
            }
            let mut strip = 0;
            let mut i = ii;
            while i + mr <= i_end {
                let ap = &apack[strip * mr * kw..(strip + 1) * mr * kw];
                let mut j = 0;
                while j + nr <= n {
                    match variant {
                        // Safety (both arms): dispatch resolved this
                        // tier, so the host has the features.
                        #[cfg(all(target_arch = "x86_64", feature = "simd"))]
                        crate::simd::KernelVariant::Avx512 => unsafe {
                            crate::simd::avx512::micro_mrxnr(c, ap, b, n, (i, j), (kk, kw))
                        },
                        #[cfg(all(target_arch = "x86_64", feature = "simd"))]
                        crate::simd::KernelVariant::Avx2 => unsafe {
                            crate::simd::avx2::micro_mrxnr(c, ap, b, n, (i, j), (kk, kw))
                        },
                        _ => micro_mrxnr(c, ap, b, n, (i, j), (kk, kw)),
                    }
                    j += nr;
                }
                if j < n {
                    scalar_edge(c, a, b, n, (i, i + mr), (kk, k_end), (j, n));
                }
                strip += 1;
                i += mr;
            }
            if i < i_end {
                scalar_edge(c, a, b, n, (i, i_end), (kk, k_end), (0, n));
            }
        }
    }
}

/// Dense `s×s` block multiply-accumulate: `acc + a·b` (row-major),
/// cache-blocked ([`matmul_tiled_into`]). This is the kernel the
/// workloads run; [`block_mul_acc_naive`] is its oracle. Returns the
/// new block and the flop count ×[`C_FMA`] (the tiling changes the
/// schedule, not the arithmetic, so the cost model is unchanged).
pub fn block_mul_acc(acc: &[f64], a: &[f64], b: &[f64], s: usize) -> (Vec<f64>, u64) {
    assert_eq!(acc.len(), s * s);
    let mut out = acc.to_vec();
    matmul_tiled_into(&mut out, a, b, s);
    (out, (s * s * s) as u64 * 2 * C_FMA)
}

/// One Floyd–Warshall relaxation of `row_i` by pivot row `row_k`
/// (pivot index `k`, 0-based): `d[t] = min(d[t], d[k] + row_k[t])`.
/// Returns the new row and the cost.
pub fn min_plus_update(row_i: &[f64], row_k: &[f64], k: usize) -> (Vec<f64>, u64) {
    assert_eq!(row_i.len(), row_k.len());
    let dik = row_i[k];
    let mut out = Vec::with_capacity(row_i.len());
    for (t, &d) in row_i.iter().enumerate() {
        let via = dik + row_k[t];
        out.push(if via < d { via } else { d });
    }
    (out, row_i.len() as u64 * C_MINPLUS)
}

/// Plain-Rust Floyd–Warshall over a row-major `n×n` distance matrix:
/// the APSP oracle. (Flat storage — one allocation, contiguous rows —
/// not the former `Vec<Vec<f64>>`, whose per-row allocations cost a
/// pointer chase per row access in every oracle check.)
pub fn floyd_warshall(dist: &mut [f64], n: usize) {
    assert_eq!(dist.len(), n * n);
    for k in 0..n {
        for i in 0..n {
            let dik = dist[i * n + k];
            if !dik.is_finite() {
                continue;
            }
            // The k-row is read while the i-row is written; at i == k
            // the relaxation is the identity (d[k][k] = 0 on a valid
            // distance matrix), so reading the row being written is
            // benign — but split indexing keeps the borrows disjoint.
            for j in 0..n {
                let via = dik + dist[k * n + j];
                if via < dist[i * n + j] {
                    dist[i * n + j] = via;
                }
            }
        }
    }
}

/// One blocked min-plus tile relaxation: relax the `ch×cw` tile of `d`
/// at `(ci, cj)` through intermediate vertices `k ∈ [kk, kk+kw)`, i.e.
/// `d[i][j] = min(d[i][j], d[i][k] + d[k][j])` with the k-loop
/// *outermost* (so in the self-dependent phases of blocked
/// Floyd–Warshall every relaxation sees the updates of smaller k, as
/// the classical algorithm requires).
///
/// `scratch` holds a copy of the k-row segment for the inner sweep:
/// within one k iteration the k-row and k-column are fixed points of
/// the relaxation (`d[k][k] = 0`), so the pre-iteration copy is exact,
/// and copying decouples the write row from the read row — the inner
/// loop is a straight-line min/add over two disjoint slices.
fn min_plus_tile(
    d: &mut [f64],
    n: usize,
    (ci, ch): (usize, usize),
    (cj, cw): (usize, usize),
    (kk, kw): (usize, usize),
    scratch: &mut Vec<f64>,
) {
    for k in kk..kk + kw {
        scratch.clear();
        scratch.extend_from_slice(&d[k * n + cj..k * n + cj + cw]);
        for i in ci..ci + ch {
            let dik = d[i * n + k];
            if !dik.is_finite() {
                continue;
            }
            let row = &mut d[i * n + cj..i * n + cj + cw];
            for (c, &bkj) in row.iter_mut().zip(scratch.iter()) {
                let via = dik + bkj;
                if via < *c {
                    *c = via;
                }
            }
        }
    }
}

/// Cache-blocked Floyd–Warshall (Venkataraman et al.'s tiled APSP) on
/// a row-major `n×n` matrix, [`TILE`]-sized tiles: for each pivot tile
/// on the diagonal, (1) close the pivot tile over its own vertices,
/// (2) relax its row and column panels through it, (3) relax every
/// remaining tile through its row/column panel pair. Each phase only
/// reads tiles the previous phase finished, which is what makes the
/// reordering exact — every tile still sees intermediate vertices in
/// ascending order. The working set per tile op is ≤ 3 tiles (24 KiB)
/// instead of three full `n×n` sweeps, and results are **identical**
/// to [`floyd_warshall`] (min-plus relaxation: min is exact, and both
/// kernels take min over the same candidate path sums — kept as the
/// oracle in the property tests).
///
/// Dispatches through [`crate::simd::active`]: on an AVX2 host the
/// tiles run the lane min-plus kernels
/// ([`crate::simd::avx2::floyd_warshall_blocked`]), which stay
/// **bit-exact** — min and add are element-wise, so each output cell
/// sees exactly the scalar candidate sequence.
pub fn floyd_warshall_blocked(dist: &mut [f64], n: usize) {
    match crate::simd::active() {
        // Safety (both arms): dispatch resolved this tier, so the
        // host has the features.
        #[cfg(all(target_arch = "x86_64", feature = "simd"))]
        crate::simd::KernelVariant::Avx512 => unsafe {
            crate::simd::avx512::floyd_warshall_blocked(dist, n)
        },
        #[cfg(all(target_arch = "x86_64", feature = "simd"))]
        crate::simd::KernelVariant::Avx2 => unsafe {
            crate::simd::avx2::floyd_warshall_blocked(dist, n)
        },
        _ => floyd_warshall_blocked_scalar(dist, n),
    }
}

/// [`floyd_warshall_blocked`] pinned to the scalar min-plus tiles: the
/// dispatch-independent baseline for the bench gates and the
/// forced-scalar tests.
pub fn floyd_warshall_blocked_scalar(dist: &mut [f64], n: usize) {
    assert_eq!(dist.len(), n * n);
    let mut scratch = Vec::with_capacity(TILE);
    // (start, len) of tile `b`.
    let ext = |tile: usize| {
        let lo = tile * TILE;
        (lo, TILE.min(n - lo))
    };
    let tiles = n.div_ceil(TILE);
    for kb in 0..tiles {
        let kx = ext(kb);
        // Phase 1: the pivot tile, closed over its own vertices.
        min_plus_tile(dist, n, kx, kx, kx, &mut scratch);
        // Phase 2: the pivot's row and column panels.
        for jb in 0..tiles {
            if jb != kb {
                min_plus_tile(dist, n, kx, ext(jb), kx, &mut scratch);
            }
        }
        for ib in 0..tiles {
            if ib != kb {
                min_plus_tile(dist, n, ext(ib), kx, kx, &mut scratch);
            }
        }
        // Phase 3: everything else, through the finished panels.
        for ib in 0..tiles {
            if ib == kb {
                continue;
            }
            for jb in 0..tiles {
                if jb != kb {
                    min_plus_tile(dist, n, ext(ib), ext(jb), kx, &mut scratch);
                }
            }
        }
    }
}

/// Plain-Rust dense matmul oracle (row-major `n×n`).
pub fn matmul_oracle(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Plain-Rust sumEuler oracle.
pub fn sum_euler_oracle(n: i64) -> i64 {
    (1..=n).map(|k| phi_counted(k).0).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_small_values() {
        // φ(1)=0 (by the paper's definition: |{j < 1}| = 0),
        // φ(2)=1, φ(6)=2, φ(10)=4, φ(12)=4.
        assert_eq!(phi_counted(1).0, 0);
        assert_eq!(phi_counted(2).0, 1);
        assert_eq!(phi_counted(6).0, 2);
        assert_eq!(phi_counted(10).0, 4);
        assert_eq!(phi_counted(12).0, 4);
    }

    #[test]
    fn phi_of_prime_is_p_minus_1() {
        for p in [2i64, 3, 5, 7, 11, 13, 97] {
            assert_eq!(phi_counted(p).0, p - 1);
        }
    }

    #[test]
    fn phi_costs_grow_with_k() {
        let (_, c1, w1) = phi_counted(100);
        let (_, c2, w2) = phi_counted(1000);
        assert!(c2 > c1 * 5);
        assert!(w2 > w1 * 5);
    }

    #[test]
    fn sum_phi_range_splits_consistently() {
        let (whole, _, _) = sum_phi_range(1, 100);
        let (a, _, _) = sum_phi_range(1, 40);
        let (b, _, _) = sum_phi_range(41, 100);
        assert_eq!(whole, a + b);
        assert_eq!(whole, sum_euler_oracle(100));
    }

    #[test]
    fn block_mul_matches_oracle() {
        for s in [1usize, 2, 4, 7, 31, 33] {
            let a: Vec<f64> = (0..s * s).map(|i| (i % 7) as f64).collect();
            let b: Vec<f64> = (0..s * s).map(|i| (i % 5) as f64 - 2.0).collect();
            let zero = vec![0.0; s * s];
            let (c, cost) = block_mul_acc(&zero, &a, &b, s);
            assert_eq!(c, matmul_oracle(&a, &b, s), "s={s}");
            assert_eq!(cost, (s * s * s) as u64 * 2 * C_FMA);
            let (c_naive, cost_naive) = block_mul_acc_naive(&zero, &a, &b, s);
            assert_eq!(c, c_naive, "s={s}");
            assert_eq!(cost, cost_naive);
            // Accumulation: acc + a·b.
            let (c2, _) = block_mul_acc(&c, &a, &b, s);
            let double: Vec<f64> = c.iter().map(|x| x * 2.0).collect();
            assert_eq!(c2, double, "s={s}");
        }
    }

    #[test]
    fn min_plus_matches_floyd_warshall_step() {
        let inf = f64::INFINITY;
        #[rustfmt::skip]
        let mut d = vec![
            0.0, 3.0, inf,
            3.0, 0.0, 1.0,
            inf, 1.0, 0.0,
        ];
        // Relax row 0 by pivot row 1.
        let (r0, _) = min_plus_update(&d[0..3], &d[3..6], 1);
        assert_eq!(r0, vec![0.0, 3.0, 4.0]);
        floyd_warshall(&mut d, 3);
        assert_eq!(&d[0..3], &[0.0, 3.0, 4.0]);
        assert_eq!(&d[6..9], &[4.0, 1.0, 0.0]);
    }

    #[test]
    fn blocked_floyd_warshall_matches_plain_small() {
        // Hand-checkable 4-node line graph: 0-1-2-3 with unit edges.
        let inf = f64::INFINITY;
        let mut d = vec![inf; 16];
        for i in 0..4 {
            d[i * 4 + i] = 0.0;
        }
        for (a, b) in [(0usize, 1usize), (1, 2), (2, 3)] {
            d[a * 4 + b] = 1.0;
            d[b * 4 + a] = 1.0;
        }
        let mut plain = d.clone();
        floyd_warshall(&mut plain, 4);
        floyd_warshall_blocked(&mut d, 4);
        assert_eq!(d, plain);
        assert_eq!(d[3], 3.0, "0→3 via two hops");
    }

    #[test]
    fn sieve_matches_gcd_totients() {
        // Whole range from 1 (hits the paper's φ(1)=0 convention),
        // interior ranges (primes > √hi left over), degenerate and
        // empty ranges, and a range crossing a segment boundary.
        assert_eq!(sum_phi_range_sieve(1, 500), sum_phi_range(1, 500).0);
        assert_eq!(sum_phi_range_sieve(37, 213), sum_phi_range(37, 213).0);
        assert_eq!(sum_phi_range_sieve(97, 97), 96);
        assert_eq!(sum_phi_range_sieve(1, 1), 0, "paper's φ(1)");
        assert_eq!(sum_phi_range_sieve(10, 9), 0, "empty range");
        let lo = SIEVE_SEG as i64 - 3;
        let hi = SIEVE_SEG as i64 + 3;
        assert_eq!(
            sum_phi_range_sieve(lo, hi),
            (lo..=hi).map(|k| phi_counted(k).0).sum::<i64>(),
            "segment-boundary range"
        );
    }

    #[test]
    fn sieve_splits_like_the_packed_range_tasks() {
        // Lazy splitting cuts (lo, hi) anywhere; every cut must sum
        // back to the whole.
        let whole = sum_phi_range_sieve(1, 400);
        for cut in [1i64, 2, 200, 398, 399] {
            assert_eq!(
                whole,
                sum_phi_range_sieve(1, cut) + sum_phi_range_sieve(cut + 1, 400),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn scalar_kernel_pins_match_dispatched_kernels() {
        // The *_scalar entry points are the bench baselines; whatever
        // dispatch selects, values must agree (bit-exactly for
        // min-plus; exactly here for matmul too — small ints).
        let n = 40;
        let a: Vec<f64> = (0..n * n).map(|i| (i % 9) as f64).collect();
        let b: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut c0 = vec![0.0; n * n];
        let mut c1 = vec![0.0; n * n];
        matmul_tiled_into(&mut c0, &a, &b, n);
        matmul_tiled_into_scalar(&mut c1, &a, &b, n);
        assert_eq!(c0, c1);

        let mut d0: Vec<f64> = (0..n * n)
            .map(|i| {
                if i % 5 == 0 {
                    f64::INFINITY
                } else {
                    (i % 11) as f64
                }
            })
            .collect();
        for i in 0..n {
            d0[i * n + i] = 0.0;
        }
        let mut d1 = d0.clone();
        floyd_warshall_blocked(&mut d0, n);
        floyd_warshall_blocked_scalar(&mut d1, n);
        assert_eq!(d0, d1);
    }

    #[test]
    fn gcd_counts_iterations() {
        let mut it = 0;
        assert_eq!(gcd_counted(48, 18, &mut it), 6);
        assert!(it >= 2);
    }
}
