//! # rph-workloads — the paper's three benchmark applications
//!
//! Section V of the paper measures three programs "which represent
//! typical parallelisation problems":
//!
//! * [`sum_euler`] — *transformation and reduction*: `sumEuler n =
//!   sum (map phi [1..n])` with a naïve totient. GpH splits the input
//!   into sublists and sparks chunk sums (`parList rnf`); Eden uses the
//!   `parMapReduce` skeleton. (Fig. 1 table, Fig. 2 traces, Fig. 3
//!   left.)
//! * [`matmul`] — *a regular problem*: dense matrix multiplication.
//!   GpH sparks regular blocks of the result (block size tunable);
//!   Eden implements Cannon's algorithm on a `torus` skeleton with
//!   blocks exchanged stepwise. (Fig. 3 right, Fig. 4 traces.)
//! * [`apsp`] — *a genuinely parallel algorithm*: all-pairs shortest
//!   paths, pipelined Floyd–Warshall on a process `ring` (adapted from
//!   Plasmeijer & van Eekelen). The GpH version builds the n² row-step
//!   thunk graph up front and "sparks an evaluation for each row in
//!   advance", relying on runtime synchronisation of the heavily
//!   shared row thunks — the workload that makes eager black-holing
//!   essential (Fig. 5).
//!
//! Every workload really computes its answer (totients via real gcd,
//! matrix products via real floating-point arithmetic, shortest paths
//! via real min-plus relaxation) and checks it against a plain-Rust
//! oracle; kernel costs are charged from the actual operation counts.

pub mod apsp;
pub mod episim;
pub mod kernels;
pub mod matmul;
pub mod native;
pub mod nqueens;
pub mod registry;
pub mod simd;
pub mod sum_euler;

pub use apsp::Apsp;
pub use episim::{Episim, VisitDist};
pub use matmul::MatMul;
pub use native::{
    run_flat, run_iter_on, run_iter_respawn, FlatNative, IterNative, NativeMeasured, NativeWorkload,
};
pub use nqueens::NQueens;
pub use registry::{registry, Scale};
pub use sum_euler::SumEuler;

/// Common result of one simulated run.
#[derive(Debug)]
pub struct Measured {
    /// The workload's checksum value (validated against the oracle by
    /// the harnesses).
    pub value: i64,
    /// Virtual makespan in work units (≈ ns).
    pub elapsed: rph_trace::Time,
    /// The event trace (empty if tracing was off).
    pub tracer: rph_trace::Tracer,
    /// GpH runtime counters, when run on the shared-heap runtime.
    pub gph_stats: Option<rph_gph::GphStats>,
    /// Eden runtime counters, when run on the distributed-heap runtime.
    pub eden_stats: Option<rph_eden::EdenStats>,
}

impl Measured {
    /// Elapsed virtual time in seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed as f64 / 1e9
    }
}
