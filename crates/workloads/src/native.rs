//! Native (real OS threads, wall-clock) runs of the workloads.
//!
//! The simulator backends (`run_gph` / `run_eden`) answer *how the
//! paper's runtimes behave*; this backend answers *how long the same
//! decomposition takes on this machine* — under either native
//! execution model:
//!
//! * [`BackendKind::Steal`] — each workload is flattened into its
//!   natural task set (the exact units the GpH version sparks) and
//!   handed to the Chase–Lev work-stealing executor: one-shot
//!   workloads through [`rph_native::execute`], the wave-structured
//!   APSP through a persistent [`rph_native::Pool`] reused across
//!   pivots.
//! * [`BackendKind::Eden`] — the *same* task set runs on the
//!   message-passing backend through the skeleton each workload's
//!   Eden program uses: `par_map` for the regular workloads
//!   (sumEuler, matMul), `master_worker` for irregular nqueens, and
//!   the `ring` skeleton for APSP's pivot waves.
//!
//! The entry point is one trait, [`NativeWorkload::run_on`], which
//! dispatches on [`NativeConfig::backend`] and returns a `Result`: a
//! panicking task (steal backend) or a dying PE (Eden backend)
//! surfaces as a typed [`RunError`] instead of unwinding the caller —
//! the contract the long-running job server in `rph-server` builds
//! on. (The per-workload `run_native` wrappers deprecated in PR 5 are
//! gone.) Flat (farm-shaped) workloads only implement
//! [`FlatNative`] — the task set, the checksum combine and a skeleton
//! choice — and inherit both backends through [`run_flat`]; APSP
//! implements [`NativeWorkload`] directly because its two backends
//! have genuinely different shapes (barrier waves vs. ring).
//!
//! Results are combined on the calling thread in task-index order, so
//! every value is bit-identical to the corresponding simulator
//! checksum regardless of worker count, backend, distribution policy
//! or skeleton: the workload inputs are small integers, all f64
//! arithmetic on them is exact, and integer sums are
//! order-independent. The differential tests in
//! `tests/integration.rs` assert exactly this, three ways (sim Eden
//! vs native Eden vs native steal).
//!
//! `sum_euler` deliberately avoids the process-global memo behind
//! [`kernels::phi_cached`] — it would make every run after the first
//! nearly free and fake any speedup measurement. Each task instead
//! runs the segmented totient sieve ([`kernels::sum_phi_range_sieve`]),
//! whose state is entirely task-local: recomputed from scratch per
//! task, bit-identical values to the per-k gcd totient the simulator
//! charges costs from.

use crate::{kernels, Apsp, MatMul, NQueens, SumEuler};
use rph_native::{
    try_execute, try_ring, BackendKind, Job, JobPanicked, NativeConfig, NativeOutcome, NativeStats,
    Pool, RingJob, RunError, Skeleton, Wordsize,
};
use rph_trace::Tracer;
use std::time::Duration;

/// Result of one native run: the workload checksum plus wall-clock
/// time, scheduling counters and (when `cfg.trace` is set) the
/// per-worker wall-clock event trace.
#[derive(Debug)]
pub struct NativeMeasured {
    /// The workload's checksum (same definition as the sim backends).
    pub value: i64,
    /// Wall-clock time of the parallel phase(s).
    pub wall: Duration,
    /// Executor counters, summed over all parallel phases.
    pub stats: NativeStats,
    /// Wall-clock event trace (`Some` iff tracing was configured).
    /// Wave-structured workloads stitch their per-wave traces
    /// back-to-back on the time axis.
    pub trace: Option<Tracer>,
    /// Events dropped for not fitting the per-worker trace buffers.
    pub trace_dropped: u64,
}

pub(crate) fn measured(value: i64, out: NativeOutcome<impl Send + Sync>) -> NativeMeasured {
    NativeMeasured {
        value,
        wall: out.wall,
        stats: out.stats,
        trace: out.trace,
        trace_dropped: out.trace_dropped,
    }
}

/// Append a wave's trace to the accumulated trace, shifted past
/// everything recorded so far so per-worker time stays monotonic.
pub(crate) fn merge_trace(acc: &mut Option<Tracer>, wave: Option<Tracer>) {
    match (acc.as_mut(), wave) {
        (Some(acc), Some(wave)) => {
            let dt = acc.end_time();
            acc.extend_shifted(&wave, dt);
        }
        (None, Some(wave)) => *acc = Some(wave),
        _ => {}
    }
}

// ------------------------------------------------------------- unified API

/// A workload that runs on the native executors: **the** entry point
/// for native measurements. `run_on` dispatches on
/// [`NativeConfig::backend`], so one call site serves both the
/// work-stealing and the message-passing model:
///
/// ```
/// use rph_native::{BackendKind, NativeConfig};
/// use rph_workloads::{NativeWorkload, SumEuler};
///
/// let w = SumEuler::new(100);
/// let steal = w.run_on(&NativeConfig::new(4)).unwrap();
/// let eden = w
///     .run_on(&NativeConfig::new(4).with_backend(BackendKind::Eden))
///     .unwrap();
/// assert_eq!(steal.value, eden.value);
/// assert_eq!(steal.value, w.expected_value());
/// ```
///
/// The trait is object-safe: benches sweep `&dyn NativeWorkload`
/// tables instead of duplicating per-workload loops.
pub trait NativeWorkload {
    /// Stable snake_case name (used by bench JSON and trace labels).
    fn name(&self) -> &'static str;

    /// Human-readable parameter string for bench JSON rows, trace CSV
    /// labels and test-matrix messages (e.g. `"n=6000"`). Together
    /// with [`Self::name`] this makes the registry entry the single
    /// source of workload identity — no consumer builds its own
    /// `(workload, params)` tuples.
    fn default_params(&self) -> String;

    /// The checksum every correct run must produce (the plain-Rust
    /// oracle, same definition as the sim backends).
    fn expected_value(&self) -> i64;

    /// Run natively under `cfg`, on whichever backend it selects.
    /// Execution failures — a panicking task, a dead PE — come back as
    /// a typed [`RunError`] rather than unwinding the caller.
    fn run_on(&self, cfg: &NativeConfig) -> Result<NativeMeasured, RunError>;
}

/// A workload whose native form is a flat bag of independent tasks —
/// everything except APSP. Implementors describe the task set once
/// and inherit both native backends via [`run_flat`]: the steal
/// executor runs the job over deques, the Eden backend runs the same
/// job under [`Self::skeleton`].
pub trait FlatNative: Sync {
    /// Per-task result (must be channel-framable for the Eden side).
    type Out: Send + Sync + Wordsize + 'static;

    /// The prepared job: built once per run, borrowed by every task.
    type Job<'a>: Job<Out = Self::Out>
    where
        Self: 'a;

    /// Stable snake_case name.
    fn name(&self) -> &'static str;

    /// The oracle checksum.
    fn expected_value(&self) -> i64;

    /// Materialise the task set (ranges, blocks, prefixes, …).
    fn job(&self) -> Self::Job<'_>;

    /// Fold per-task results (in task order) into the checksum.
    fn combine(&self, values: Vec<Self::Out>) -> i64;

    /// Which Eden skeleton suits this task set. Regular task sets
    /// keep the static-farm default; irregular ones override to
    /// demand-driven [`Skeleton::MasterWorker`].
    fn skeleton(&self) -> Skeleton {
        Skeleton::ParMap
    }
}

/// The one generic runner behind every flat workload's
/// [`NativeWorkload::run_on`]: materialise the job, execute it on the
/// configured backend, combine the values.
pub fn run_flat<W: FlatNative>(w: &W, cfg: &NativeConfig) -> Result<NativeMeasured, RunError> {
    let job = w.job();
    let out = match cfg.backend {
        BackendKind::Steal => try_execute(&job, cfg)?,
        BackendKind::Eden => w.skeleton().try_run(&job, cfg)?,
    };
    let NativeOutcome {
        values,
        wall,
        stats,
        trace,
        trace_dropped,
    } = out;
    Ok(NativeMeasured {
        value: w.combine(values),
        wall,
        stats,
        trace,
        trace_dropped,
    })
}

/// A workload whose native form is a *sequence of barrier-separated
/// rounds over carried state* — the iterated seam next to
/// [`FlatNative`]'s one-shot bag. APSP's pivot waves and episim's
/// visit/return phases both fit: each round materialises a [`Job`]
/// borrowing the current state, the executor runs it, and `absorb`
/// folds the round's outputs back into the state before the next
/// round starts. The runners ([`run_iter_on`] on a persistent pool,
/// [`run_iter_respawn`] as the spawn-per-round ablation baseline)
/// accumulate wall time, counters and traces across rounds exactly
/// like the former hand-rolled APSP loop did.
pub trait IterNative: Sync {
    /// State carried across rounds.
    type State: Send;

    /// Per-task output of a round's job (lifetime-free so `absorb`
    /// can receive it after the job is dropped).
    type Out: Send + Sync + 'static;

    /// The job for one round, borrowing the carried state.
    type RoundJob<'a>: Job<Out = Self::Out>
    where
        Self: 'a;

    /// Number of rounds (barriers) in the run.
    fn rounds(&self) -> usize;

    /// Build the initial carried state.
    fn init_state(&self) -> Self::State;

    /// Materialise round `round`'s task set over the current state.
    fn round_job<'a>(&'a self, round: usize, state: &'a Self::State) -> Self::RoundJob<'a>;

    /// Fold round `round`'s outputs (in task order) into the state.
    fn absorb(&self, round: usize, state: &mut Self::State, values: Vec<Self::Out>);

    /// Fold the final state into the workload checksum.
    fn finish(&self, state: Self::State) -> i64;
}

/// Run an iterated workload's rounds on a caller-supplied persistent
/// pool (reusable across repetitions as well as rounds). The barrier
/// between rounds replaces the thunk-graph synchronisation the GpH
/// runtime does dynamically — coarser, but the same data flow, hence
/// the same checksum. A panicking round surfaces as `Err(JobPanicked)`;
/// the pool survives for the caller's next run.
pub fn run_iter_on<W: IterNative>(w: &W, pool: &mut Pool) -> Result<NativeMeasured, JobPanicked> {
    let mut state = w.init_state();
    let mut wall = Duration::ZERO;
    let mut stats = NativeStats::default();
    let mut trace = None;
    let mut trace_dropped = 0;
    for round in 0..w.rounds() {
        let out = {
            let job = w.round_job(round, &state);
            pool.try_execute(&job)?
        };
        wall += out.wall;
        stats.merge(&out.stats);
        merge_trace(&mut trace, out.trace);
        trace_dropped += out.trace_dropped;
        w.absorb(round, &mut state, out.values);
    }
    Ok(NativeMeasured {
        value: w.finish(state),
        wall,
        stats,
        trace,
        trace_dropped,
    })
}

/// The PR 1 shape, kept as the pool-reuse ablation baseline: a fresh
/// thread pool is spawned and joined for every round.
pub fn run_iter_respawn<W: IterNative>(
    w: &W,
    cfg: &NativeConfig,
) -> Result<NativeMeasured, JobPanicked> {
    let mut state = w.init_state();
    let mut wall = Duration::ZERO;
    let mut stats = NativeStats::default();
    let mut trace = None;
    let mut trace_dropped = 0;
    for round in 0..w.rounds() {
        let out = {
            let job = w.round_job(round, &state);
            try_execute(&job, cfg)?
        };
        wall += out.wall;
        stats.merge(&out.stats);
        merge_trace(&mut trace, out.trace);
        trace_dropped += out.trace_dropped;
        w.absorb(round, &mut state, out.values);
    }
    Ok(NativeMeasured {
        value: w.finish(state),
        wall,
        stats,
        trace,
        trace_dropped,
    })
}

// ---------------------------------------------------------------- sumEuler

/// One task per GpH chunk: `sum (map phi [lo..hi])` via the segmented
/// totient sieve ([`kernels::sum_phi_range_sieve`]) — bit-identical
/// values to the per-k gcd totient, computed from scratch per task (no
/// memo — see module docs; the sieve's state is all task-local, so it
/// fakes no speedup either).
pub struct PhiRanges {
    ranges: Vec<(i64, i64)>,
}

impl Job for PhiRanges {
    type Out = i64;
    fn len(&self) -> usize {
        self.ranges.len()
    }
    fn run(&self, idx: usize) -> i64 {
        let (lo, hi) = self.ranges[idx];
        kernels::sum_phi_range_sieve(lo, hi)
    }
}

impl FlatNative for SumEuler {
    type Out = i64;
    type Job<'a> = PhiRanges;

    fn name(&self) -> &'static str {
        "sum_euler"
    }
    fn expected_value(&self) -> i64 {
        self.expected()
    }
    fn job(&self) -> PhiRanges {
        PhiRanges {
            ranges: self.ranges(self.chunk_size),
        }
    }
    fn combine(&self, values: Vec<i64>) -> i64 {
        values.iter().sum()
    }
}

impl NativeWorkload for SumEuler {
    fn name(&self) -> &'static str {
        FlatNative::name(self)
    }
    fn default_params(&self) -> String {
        format!("n={}", self.n)
    }
    fn expected_value(&self) -> i64 {
        FlatNative::expected_value(self)
    }
    fn run_on(&self, cfg: &NativeConfig) -> Result<NativeMeasured, RunError> {
        run_flat(self, cfg)
    }
}

// ---------------------------------------------------------------- matmul

/// One task per result block: Σ_k A(i,k)·B(k,j), then the block's
/// element sum as an exact integer — the same per-block value the sim's
/// `blockRowCol`/`blockSum` kernels produce.
pub struct BlockProducts<'a> {
    w: &'a MatMul,
    a: Vec<f64>,
    b: Vec<f64>,
}

impl Job for BlockProducts<'_> {
    type Out = i64;
    fn len(&self) -> usize {
        self.w.grid * self.w.grid
    }
    fn run(&self, idx: usize) -> i64 {
        let g = self.w.grid;
        let s = self.w.block_size();
        let (i, j) = (idx / g, idx % g);
        let mut acc = vec![0.0; s * s];
        for k in 0..g {
            let ab = self.w.block(&self.a, i, k);
            let bb = self.w.block(&self.b, k, j);
            let (next, _) = kernels::block_mul_acc(&acc, &ab, &bb, s);
            acc = next;
        }
        acc.iter().sum::<f64>() as i64
    }
}

impl FlatNative for MatMul {
    type Out = i64;
    type Job<'a> = BlockProducts<'a>;

    fn name(&self) -> &'static str {
        "matmul"
    }
    fn expected_value(&self) -> i64 {
        self.expected()
    }
    fn job(&self) -> BlockProducts<'_> {
        let (a, b) = self.inputs();
        BlockProducts { w: self, a, b }
    }
    fn combine(&self, values: Vec<i64>) -> i64 {
        values.iter().sum()
    }
}

impl NativeWorkload for MatMul {
    fn name(&self) -> &'static str {
        FlatNative::name(self)
    }
    fn default_params(&self) -> String {
        format!("n={} grid={}", self.n, self.grid)
    }
    fn expected_value(&self) -> i64 {
        FlatNative::expected_value(self)
    }
    fn run_on(&self, cfg: &NativeConfig) -> Result<NativeMeasured, RunError> {
        run_flat(self, cfg)
    }
}

// ---------------------------------------------------------------- apsp

/// One pivot wave: relax every row by the (final) pivot row. The pivot
/// row itself is unchanged at its own step, so its task is the
/// identity — keeping one task per row keeps indices aligned with the
/// state vector.
pub struct PivotWave<'a> {
    state: &'a [Vec<f64>],
    pivot: Vec<f64>,
    /// 0-based pivot index.
    k: usize,
}

impl Job for PivotWave<'_> {
    type Out = Vec<f64>;
    fn len(&self) -> usize {
        self.state.len()
    }
    fn run(&self, idx: usize) -> Vec<f64> {
        if idx == self.k {
            self.state[idx].clone()
        } else {
            kernels::min_plus_update(&self.state[idx], &self.pivot, self.k).0
        }
    }
}

/// APSP's steal-backend form through the iterated seam: the carried
/// state is the distance matrix, round `k`'s job is the pivot-`k`
/// wave, and `absorb` replaces the rows wholesale.
impl IterNative for Apsp {
    type State = Vec<Vec<f64>>;
    type Out = Vec<f64>;
    type RoundJob<'a> = PivotWave<'a>;

    fn rounds(&self) -> usize {
        self.n
    }
    fn init_state(&self) -> Vec<Vec<f64>> {
        self.input_rows()
    }
    fn round_job<'a>(&'a self, round: usize, state: &'a Vec<Vec<f64>>) -> PivotWave<'a> {
        PivotWave {
            state,
            pivot: state[round].clone(),
            k: round,
        }
    }
    fn absorb(&self, _round: usize, state: &mut Vec<Vec<f64>>, values: Vec<Vec<f64>>) {
        *state = values;
    }
    fn finish(&self, state: Vec<Vec<f64>>) -> i64 {
        apsp_checksum(&state)
    }
}

/// Floyd–Warshall as a [`RingJob`]: row `idx` is the item, wave `k`'s
/// pivot is row `k`'s pre-wave state, and the update is the same
/// [`kernels::min_plus_update`] the other backends apply — so the ring
/// result is bit-identical to theirs (identical per-row operation
/// sequences on exactly-representable values).
struct ApspRing {
    rows: Vec<Vec<f64>>,
}

impl RingJob for ApspRing {
    type Item = Vec<f64>;

    fn len(&self) -> usize {
        self.rows.len()
    }
    fn init(&self, idx: usize) -> Vec<f64> {
        self.rows[idx].clone()
    }
    fn step(&self, item: &Vec<f64>, _idx: usize, pivot: &Vec<f64>, k: usize) -> Vec<f64> {
        kernels::min_plus_update(item, pivot, k).0
    }
}

fn apsp_checksum(rows: &[Vec<f64>]) -> i64 {
    rows.iter().map(|row| row.iter().sum::<f64>() as i64).sum()
}

impl NativeWorkload for Apsp {
    fn name(&self) -> &'static str {
        "apsp"
    }
    fn default_params(&self) -> String {
        format!("n={}", self.n)
    }
    fn expected_value(&self) -> i64 {
        self.expected()
    }
    /// Steal backend: `n` barrier-separated pivot waves over one
    /// persistent worker pool. Eden backend: the ring skeleton — PEs
    /// own row blocks for the whole run and the pivot row travels the
    /// ring once per wave, replacing the barrier with point-to-point
    /// messages.
    fn run_on(&self, cfg: &NativeConfig) -> Result<NativeMeasured, RunError> {
        match cfg.backend {
            BackendKind::Steal => self
                .run_native_on(&mut Pool::new(cfg))
                .map_err(RunError::from),
            BackendKind::Eden => {
                let job = ApspRing {
                    rows: self.input_rows(),
                };
                let out = try_ring(&job, cfg)?;
                let value = apsp_checksum(&out.values);
                Ok(measured(value, out))
            }
        }
    }
}

impl Apsp {
    /// The pivot waves on a caller-supplied pool (reusable across
    /// repetitions as well as waves). The barrier between waves
    /// replaces the thunk-graph synchronisation the GpH runtime does
    /// dynamically — coarser, but the same data flow, hence the same
    /// checksum. A panicking wave surfaces as `Err(JobPanicked)`; the
    /// pool survives for the caller's next run.
    pub fn run_native_on(&self, pool: &mut Pool) -> Result<NativeMeasured, JobPanicked> {
        run_iter_on(self, pool)
    }

    /// The PR 1 shape, kept as the pool-reuse ablation baseline: a
    /// fresh thread pool is spawned and joined for every pivot wave.
    pub fn run_native_respawn(&self, cfg: &NativeConfig) -> Result<NativeMeasured, JobPanicked> {
        run_iter_respawn(self, cfg)
    }
}

// ---------------------------------------------------------------- nqueens

/// One task per depth-`spawn_depth` prefix: count the subtree's
/// solutions by sequential backtracking — the GpH spark unit.
pub struct Subtrees {
    prefixes: Vec<Vec<i64>>,
    n: usize,
}

impl Job for Subtrees {
    type Out = i64;
    fn len(&self) -> usize {
        self.prefixes.len()
    }
    fn run(&self, idx: usize) -> i64 {
        let mut placed = self.prefixes[idx].clone();
        let mut visited = 0u64;
        crate::nqueens::count_from(&mut placed, self.n, &mut visited) as i64
    }
}

impl FlatNative for NQueens {
    type Out = i64;
    type Job<'a> = Subtrees;

    fn name(&self) -> &'static str {
        "nqueens"
    }
    fn expected_value(&self) -> i64 {
        self.expected()
    }
    fn job(&self) -> Subtrees {
        Subtrees {
            prefixes: self.prefixes(),
            n: self.n,
        }
    }
    fn combine(&self, values: Vec<i64>) -> i64 {
        values.iter().sum()
    }
    /// Subtree sizes vary wildly — the irregular case the paper
    /// answers with a demand-driven master–worker farm.
    fn skeleton(&self) -> Skeleton {
        Skeleton::MasterWorker { prefetch: 2 }
    }
}

impl NativeWorkload for NQueens {
    fn name(&self) -> &'static str {
        FlatNative::name(self)
    }
    fn default_params(&self) -> String {
        format!("n={} depth={}", self.n, self.spawn_depth)
    }
    fn expected_value(&self) -> i64 {
        FlatNative::expected_value(self)
    }
    fn run_on(&self, cfg: &NativeConfig) -> Result<NativeMeasured, RunError> {
        run_flat(self, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rph_native::Granularity;

    fn configs() -> Vec<NativeConfig> {
        let mut out = Vec::new();
        for w in [1usize, 2, 3, 4, 5, 8] {
            for g in [Granularity::LazySplit, Granularity::Fixed] {
                out.push(NativeConfig::steal(w).with_granularity(g));
                out.push(NativeConfig::push(w).with_granularity(g));
            }
        }
        out
    }

    /// Eden-backend configs: the steal-side knobs don't apply, so the
    /// sweep is worker counts × channel depths.
    fn eden_configs() -> Vec<NativeConfig> {
        let mut out = Vec::new();
        for w in [1usize, 2, 3, 4, 5, 8] {
            for cap in [1usize, 8] {
                out.push(
                    NativeConfig::new(w)
                        .with_backend(BackendKind::Eden)
                        .with_chan_cap(cap),
                );
            }
        }
        out
    }

    #[test]
    fn sum_euler_matches_oracle_everywhere() {
        let w = SumEuler::new(300).with_chunk_size(20);
        let expect = w.expected();
        for cfg in configs() {
            let m = w.run_on(&cfg).unwrap();
            assert_eq!(m.value, expect, "{cfg:?}");
            assert_eq!(m.stats.tasks_run as usize, w.ranges(w.chunk_size).len());
        }
    }

    #[test]
    fn matmul_matches_oracle_everywhere() {
        let w = MatMul::new(40, 4);
        let expect = w.expected();
        for cfg in configs() {
            let m = w.run_on(&cfg).unwrap();
            assert_eq!(m.value, expect, "{cfg:?}");
            assert_eq!(m.stats.tasks_run, 16);
        }
    }

    #[test]
    fn apsp_matches_oracle_everywhere() {
        let w = Apsp::new(24);
        let expect = w.expected();
        for cfg in configs() {
            let m = w.run_on(&cfg).unwrap();
            assert_eq!(m.value, expect, "{cfg:?}");
            assert_eq!(m.stats.tasks_run as usize, 24 * 24);
        }
    }

    #[test]
    fn nqueens_matches_known_count() {
        let w = NQueens::new(8).with_spawn_depth(2);
        for cfg in configs() {
            let m = w.run_on(&cfg).unwrap();
            assert_eq!(m.value, 92, "{cfg:?}");
        }
    }

    #[test]
    fn eden_backend_matches_oracles_everywhere() {
        // All four workloads through run_on's Eden dispatch: par_map
        // (sum_euler, matmul), master_worker (nqueens), ring (apsp).
        let se = SumEuler::new(300).with_chunk_size(20);
        let mm = MatMul::new(40, 4);
        let ap = Apsp::new(24);
        let nq = NQueens::new(8).with_spawn_depth(2);
        let table: [&dyn NativeWorkload; 4] = [&se, &mm, &ap, &nq];
        for cfg in eden_configs() {
            for w in table {
                let m = w.run_on(&cfg).unwrap();
                assert_eq!(m.value, w.expected_value(), "{} {cfg:?}", w.name());
                // Message passing really happened (except the n=1
                // trivial cases none of these are).
                assert_eq!(m.stats.msgs_sent, m.stats.msgs_recv, "{}", w.name());
                assert!(m.stats.msgs_sent > 0, "{}", w.name());
                assert_eq!(m.stats.steal_ops, 0, "{}", w.name());
            }
        }
    }

    #[test]
    fn backends_agree_bit_for_bit() {
        let se = SumEuler::new(200).with_chunk_size(13);
        let mm = MatMul::new(32, 4);
        let ap = Apsp::new(16);
        let nq = NQueens::new(7).with_spawn_depth(2);
        let table: [&dyn NativeWorkload; 4] = [&se, &mm, &ap, &nq];
        for workers in [1usize, 2, 4, 8] {
            let steal = NativeConfig::new(workers);
            let eden = NativeConfig::new(workers).with_backend(BackendKind::Eden);
            for w in table {
                assert_eq!(
                    w.run_on(&steal).unwrap().value,
                    w.run_on(&eden).unwrap().value,
                    "{} workers={workers}",
                    w.name()
                );
            }
        }
    }

    #[test]
    fn run_on_replaces_the_removed_run_native_wrappers() {
        // The per-workload `run_native` wrappers (deprecated in PR 5)
        // are gone; the unified entry point must cover every registry
        // workload against its sequential oracle on the steal backend.
        let cfg = NativeConfig::steal(2);
        for w in crate::registry::registry(crate::registry::Scale::Test) {
            assert_eq!(
                w.run_on(&cfg).unwrap().value,
                w.expected_value(),
                "{}",
                w.name()
            );
        }
    }

    #[test]
    fn steal_policies_agree_and_conserve_tasks() {
        use rph_native::StealPolicy;
        // Same workload under randomized and round-robin victim
        // selection: identical checksums (victim order must never
        // change *what* runs) and conserved task counts (every task
        // runs exactly once, locally or stolen) at every worker count.
        let w = SumEuler::new(200).with_chunk_size(7);
        let expect = w.expected();
        let tasks = w.ranges(w.chunk_size).len() as u64;
        for workers in [1usize, 2, 4, 8] {
            for policy in [StealPolicy::RoundRobin, StealPolicy::Randomized] {
                let cfg = NativeConfig::steal(workers).with_steal_policy(policy);
                let m = w.run_on(&cfg).unwrap();
                assert_eq!(m.value, expect, "workers={workers} {policy:?}");
                assert_eq!(m.stats.tasks_run, tasks, "workers={workers} {policy:?}");
                assert_eq!(
                    m.stats.tasks_local + m.stats.tasks_stolen,
                    m.stats.tasks_run,
                    "workers={workers} {policy:?}"
                );
                assert_eq!(
                    m.stats.per_worker.iter().sum::<u64>(),
                    m.stats.tasks_run,
                    "workers={workers} {policy:?}"
                );
            }
        }
    }

    #[test]
    fn randomized_policy_is_deterministic_on_deterministic_schedules() {
        // With one worker the schedule itself is deterministic (no
        // races), so two runs of the same config — including the
        // victim-selection seed — must produce identical stats, not
        // just identical values.
        let w = MatMul::new(32, 4);
        for cfg in [
            NativeConfig::steal(1).with_seed(42),
            NativeConfig::push(1).with_seed(42),
        ] {
            let a = w.run_on(&cfg).unwrap();
            let b = w.run_on(&cfg).unwrap();
            assert_eq!(a.value, b.value, "{cfg:?}");
            assert_eq!(a.stats, b.stats, "{cfg:?}");
        }
    }

    #[test]
    fn apsp_wave_stats_accumulate() {
        let w = Apsp::new(12);
        let m = w.run_on(&NativeConfig::steal(2)).unwrap();
        // 12 waves × 12 row tasks.
        assert_eq!(m.stats.tasks_run, 144);
        assert_eq!(m.stats.per_worker.iter().sum::<u64>(), 144);
        assert_eq!(m.stats.tasks_local + m.stats.tasks_stolen, 144);
    }

    #[test]
    fn apsp_ring_stats_mirror_wave_stats() {
        let w = Apsp::new(12);
        let eden = NativeConfig::new(3).with_backend(BackendKind::Eden);
        let m = w.run_on(&eden).unwrap();
        // Same task accounting as the wave form: 12 waves × 12 rows
        // (the ring counts every owned row per wave, pivot included).
        assert_eq!(m.stats.tasks_run, 144);
        assert_eq!(m.stats.per_worker.iter().sum::<u64>(), 144);
        assert_eq!(m.stats.msgs_sent, m.stats.msgs_recv);
    }

    #[test]
    fn apsp_pooled_and_respawn_agree_with_oracle() {
        let w = Apsp::new(16);
        let expect = w.expected();
        for cfg in [NativeConfig::steal(3), NativeConfig::push(4)] {
            let pooled = w.run_on(&cfg).unwrap();
            let respawn = w.run_native_respawn(&cfg).unwrap();
            assert_eq!(pooled.value, expect, "{cfg:?}");
            assert_eq!(respawn.value, expect, "{cfg:?}");
            assert_eq!(pooled.stats.tasks_run, respawn.stats.tasks_run, "{cfg:?}");
        }
    }

    #[test]
    fn shared_pool_serves_repeated_apsp_runs() {
        let w = Apsp::new(10);
        let expect = w.expected();
        let mut pool = Pool::new(&NativeConfig::steal(4));
        for _ in 0..3 {
            let m = w.run_native_on(&mut pool).unwrap();
            assert_eq!(m.value, expect);
            assert_eq!(m.stats.tasks_run, 100);
        }
    }
}
