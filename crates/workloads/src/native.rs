//! Native (real OS threads, wall-clock) runs of the workloads.
//!
//! The simulator backends (`run_gph` / `run_eden`) answer *how the
//! paper's runtimes behave*; this backend answers *how long the same
//! decomposition takes on this machine*. Each workload is flattened
//! into its natural task set — the exact units the GpH version sparks —
//! and handed to the Chase–Lev work-stealing executor: one-shot
//! workloads through [`rph_native::execute`], the wave-structured APSP
//! through a persistent [`rph_native::Pool`] reused across pivots.
//!
//! Results are combined on the calling thread in task-index order, so
//! every `run_native` value is bit-identical to the corresponding
//! simulator checksum regardless of worker count or distribution
//! policy: the workload inputs are small integers, all f64 arithmetic
//! on them is exact, and integer sums are order-independent. The
//! differential tests in `tests/integration.rs` assert exactly this.
//!
//! `sum_euler` deliberately calls the *uncached* [`kernels::phi_counted`]:
//! the process-global memo behind [`kernels::phi_cached`] would make
//! every run after the first nearly free and fake any speedup
//! measurement.

use crate::{kernels, Apsp, MatMul, NQueens, SumEuler};
use rph_native::{execute, Job, NativeConfig, NativeOutcome, NativeStats, Pool};
use rph_trace::Tracer;
use std::time::Duration;

/// Result of one native run: the workload checksum plus wall-clock
/// time, scheduling counters and (when `cfg.trace` is set) the
/// per-worker wall-clock event trace.
#[derive(Debug)]
pub struct NativeMeasured {
    /// The workload's checksum (same definition as the sim backends).
    pub value: i64,
    /// Wall-clock time of the parallel phase(s).
    pub wall: Duration,
    /// Executor counters, summed over all parallel phases.
    pub stats: NativeStats,
    /// Wall-clock event trace (`Some` iff tracing was configured).
    /// Wave-structured workloads stitch their per-wave traces
    /// back-to-back on the time axis.
    pub trace: Option<Tracer>,
    /// Events dropped for not fitting the per-worker trace buffers.
    pub trace_dropped: u64,
}

fn measured(value: i64, out: NativeOutcome<impl Send + Sync>) -> NativeMeasured {
    NativeMeasured {
        value,
        wall: out.wall,
        stats: out.stats,
        trace: out.trace,
        trace_dropped: out.trace_dropped,
    }
}

/// Append a wave's trace to the accumulated trace, shifted past
/// everything recorded so far so per-worker time stays monotonic.
fn merge_trace(acc: &mut Option<Tracer>, wave: Option<Tracer>) {
    match (acc.as_mut(), wave) {
        (Some(acc), Some(wave)) => {
            let dt = acc.end_time();
            acc.extend_shifted(&wave, dt);
        }
        (None, Some(wave)) => *acc = Some(wave),
        _ => {}
    }
}

// ---------------------------------------------------------------- sumEuler

/// One task per GpH chunk: `sum (map phi [lo..hi])`, totients computed
/// from scratch (no memo — see module docs).
struct PhiRanges {
    ranges: Vec<(i64, i64)>,
}

impl Job for PhiRanges {
    type Out = i64;
    fn len(&self) -> usize {
        self.ranges.len()
    }
    fn run(&self, idx: usize) -> i64 {
        let (lo, hi) = self.ranges[idx];
        (lo..=hi).map(|k| kernels::phi_counted(k).0).sum()
    }
}

impl SumEuler {
    /// Native run: one task per chunk (the same decomposition
    /// `run_gph` sparks), combined by integer sum.
    pub fn run_native(&self, cfg: &NativeConfig) -> NativeMeasured {
        let job = PhiRanges {
            ranges: self.ranges(self.chunk_size),
        };
        let out = execute(&job, cfg);
        let value = out.values.iter().sum();
        measured(value, out)
    }
}

// ---------------------------------------------------------------- matmul

/// One task per result block: Σ_k A(i,k)·B(k,j), then the block's
/// element sum as an exact integer — the same per-block value the sim's
/// `blockRowCol`/`blockSum` kernels produce.
struct BlockProducts<'a> {
    w: &'a MatMul,
    a: Vec<f64>,
    b: Vec<f64>,
}

impl Job for BlockProducts<'_> {
    type Out = i64;
    fn len(&self) -> usize {
        self.w.grid * self.w.grid
    }
    fn run(&self, idx: usize) -> i64 {
        let g = self.w.grid;
        let s = self.w.block_size();
        let (i, j) = (idx / g, idx % g);
        let mut acc = vec![0.0; s * s];
        for k in 0..g {
            let ab = self.w.block(&self.a, i, k);
            let bb = self.w.block(&self.b, k, j);
            let (next, _) = kernels::block_mul_acc(&acc, &ab, &bb, s);
            acc = next;
        }
        acc.iter().sum::<f64>() as i64
    }
}

impl MatMul {
    /// Native run: one task per result block (the paper's tunable
    /// spark granularity), combined by integer sum of block checksums.
    pub fn run_native(&self, cfg: &NativeConfig) -> NativeMeasured {
        let (a, b) = self.inputs();
        let job = BlockProducts { w: self, a, b };
        let out = execute(&job, cfg);
        let value = out.values.iter().sum();
        measured(value, out)
    }
}

// ---------------------------------------------------------------- apsp

/// One pivot wave: relax every row by the (final) pivot row. The pivot
/// row itself is unchanged at its own step, so its task is the
/// identity — keeping one task per row keeps indices aligned with the
/// state vector.
struct PivotWave<'a> {
    state: &'a [Vec<f64>],
    pivot: &'a [f64],
    /// 0-based pivot index.
    k: usize,
}

impl Job for PivotWave<'_> {
    type Out = Vec<f64>;
    fn len(&self) -> usize {
        self.state.len()
    }
    fn run(&self, idx: usize) -> Vec<f64> {
        if idx == self.k {
            self.state[idx].clone()
        } else {
            kernels::min_plus_update(&self.state[idx], self.pivot, self.k).0
        }
    }
}

impl Apsp {
    /// Native run: Floyd–Warshall as `n` pivot waves over one
    /// **persistent worker pool** — the same threads and deques serve
    /// every wave, so the per-wave cost is a run hand-off, not a full
    /// thread spawn/join barrier. The barrier between waves replaces
    /// the thunk-graph synchronisation the GpH runtime does
    /// dynamically — coarser, but the same data flow, hence the same
    /// checksum.
    pub fn run_native(&self, cfg: &NativeConfig) -> NativeMeasured {
        let mut pool = Pool::new(cfg);
        self.run_native_on(&mut pool)
    }

    /// The pivot waves on a caller-supplied pool (reusable across
    /// repetitions as well as waves).
    pub fn run_native_on(&self, pool: &mut Pool) -> NativeMeasured {
        let mut state = self.input_rows();
        let mut wall = Duration::ZERO;
        let mut stats = NativeStats::default();
        let mut trace = None;
        let mut trace_dropped = 0;
        for k in 0..self.n {
            let pivot = state[k].clone();
            let wave = PivotWave {
                state: &state,
                pivot: &pivot,
                k,
            };
            let out = pool.execute(&wave);
            wall += out.wall;
            stats.merge(&out.stats);
            merge_trace(&mut trace, out.trace);
            trace_dropped += out.trace_dropped;
            state = out.values;
        }
        let value = state.iter().map(|row| row.iter().sum::<f64>() as i64).sum();
        NativeMeasured {
            value,
            wall,
            stats,
            trace,
            trace_dropped,
        }
    }

    /// The PR 1 shape, kept as the pool-reuse ablation baseline: a
    /// fresh thread pool is spawned and joined for every pivot wave.
    pub fn run_native_respawn(&self, cfg: &NativeConfig) -> NativeMeasured {
        let mut state = self.input_rows();
        let mut wall = Duration::ZERO;
        let mut stats = NativeStats::default();
        let mut trace = None;
        let mut trace_dropped = 0;
        for k in 0..self.n {
            let pivot = state[k].clone();
            let wave = PivotWave {
                state: &state,
                pivot: &pivot,
                k,
            };
            let out = execute(&wave, cfg);
            wall += out.wall;
            stats.merge(&out.stats);
            merge_trace(&mut trace, out.trace);
            trace_dropped += out.trace_dropped;
            state = out.values;
        }
        let value = state.iter().map(|row| row.iter().sum::<f64>() as i64).sum();
        NativeMeasured {
            value,
            wall,
            stats,
            trace,
            trace_dropped,
        }
    }
}

// ---------------------------------------------------------------- nqueens

/// One task per depth-`spawn_depth` prefix: count the subtree's
/// solutions by sequential backtracking — the GpH spark unit.
struct Subtrees {
    prefixes: Vec<Vec<i64>>,
    n: usize,
}

impl Job for Subtrees {
    type Out = i64;
    fn len(&self) -> usize {
        self.prefixes.len()
    }
    fn run(&self, idx: usize) -> i64 {
        let mut placed = self.prefixes[idx].clone();
        let mut visited = 0u64;
        crate::nqueens::count_from(&mut placed, self.n, &mut visited) as i64
    }
}

impl NQueens {
    /// Native run: one task per board prefix, combined by integer sum.
    pub fn run_native(&self, cfg: &NativeConfig) -> NativeMeasured {
        let job = Subtrees {
            prefixes: self.prefixes(),
            n: self.n,
        };
        let out = execute(&job, cfg);
        let value = out.values.iter().sum();
        measured(value, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rph_native::Granularity;

    fn configs() -> Vec<NativeConfig> {
        let mut out = Vec::new();
        for w in [1usize, 2, 3, 4, 5, 8] {
            for g in [Granularity::LazySplit, Granularity::Fixed] {
                out.push(NativeConfig::steal(w).with_granularity(g));
                out.push(NativeConfig::push(w).with_granularity(g));
            }
        }
        out
    }

    #[test]
    fn sum_euler_matches_oracle_everywhere() {
        let w = SumEuler::new(300).with_chunk_size(20);
        let expect = w.expected();
        for cfg in configs() {
            let m = w.run_native(&cfg);
            assert_eq!(m.value, expect, "{cfg:?}");
            assert_eq!(m.stats.tasks_run as usize, w.ranges(w.chunk_size).len());
        }
    }

    #[test]
    fn matmul_matches_oracle_everywhere() {
        let w = MatMul::new(40, 4);
        let expect = w.expected();
        for cfg in configs() {
            let m = w.run_native(&cfg);
            assert_eq!(m.value, expect, "{cfg:?}");
            assert_eq!(m.stats.tasks_run, 16);
        }
    }

    #[test]
    fn apsp_matches_oracle_everywhere() {
        let w = Apsp::new(24);
        let expect = w.expected();
        for cfg in configs() {
            let m = w.run_native(&cfg);
            assert_eq!(m.value, expect, "{cfg:?}");
            assert_eq!(m.stats.tasks_run as usize, 24 * 24);
        }
    }

    #[test]
    fn nqueens_matches_known_count() {
        let w = NQueens::new(8).with_spawn_depth(2);
        for cfg in configs() {
            let m = w.run_native(&cfg);
            assert_eq!(m.value, 92, "{cfg:?}");
        }
    }

    #[test]
    fn steal_policies_agree_and_conserve_tasks() {
        use rph_native::StealPolicy;
        // Same workload under randomized and round-robin victim
        // selection: identical checksums (victim order must never
        // change *what* runs) and conserved task counts (every task
        // runs exactly once, locally or stolen) at every worker count.
        let w = SumEuler::new(200).with_chunk_size(7);
        let expect = w.expected();
        let tasks = w.ranges(w.chunk_size).len() as u64;
        for workers in [1usize, 2, 4, 8] {
            for policy in [StealPolicy::RoundRobin, StealPolicy::Randomized] {
                let cfg = NativeConfig::steal(workers).with_steal_policy(policy);
                let m = w.run_native(&cfg);
                assert_eq!(m.value, expect, "workers={workers} {policy:?}");
                assert_eq!(m.stats.tasks_run, tasks, "workers={workers} {policy:?}");
                assert_eq!(
                    m.stats.tasks_local + m.stats.tasks_stolen,
                    m.stats.tasks_run,
                    "workers={workers} {policy:?}"
                );
                assert_eq!(
                    m.stats.per_worker.iter().sum::<u64>(),
                    m.stats.tasks_run,
                    "workers={workers} {policy:?}"
                );
            }
        }
    }

    #[test]
    fn randomized_policy_is_deterministic_on_deterministic_schedules() {
        // With one worker the schedule itself is deterministic (no
        // races), so two runs of the same config — including the
        // victim-selection seed — must produce identical stats, not
        // just identical values.
        let w = MatMul::new(32, 4);
        for cfg in [
            NativeConfig::steal(1).with_seed(42),
            NativeConfig::push(1).with_seed(42),
        ] {
            let a = w.run_native(&cfg);
            let b = w.run_native(&cfg);
            assert_eq!(a.value, b.value, "{cfg:?}");
            assert_eq!(a.stats, b.stats, "{cfg:?}");
        }
    }

    #[test]
    fn apsp_wave_stats_accumulate() {
        let w = Apsp::new(12);
        let m = w.run_native(&NativeConfig::steal(2));
        // 12 waves × 12 row tasks.
        assert_eq!(m.stats.tasks_run, 144);
        assert_eq!(m.stats.per_worker.iter().sum::<u64>(), 144);
        assert_eq!(m.stats.tasks_local + m.stats.tasks_stolen, 144);
    }

    #[test]
    fn apsp_pooled_and_respawn_agree_with_oracle() {
        let w = Apsp::new(16);
        let expect = w.expected();
        for cfg in [NativeConfig::steal(3), NativeConfig::push(4)] {
            let pooled = w.run_native(&cfg);
            let respawn = w.run_native_respawn(&cfg);
            assert_eq!(pooled.value, expect, "{cfg:?}");
            assert_eq!(respawn.value, expect, "{cfg:?}");
            assert_eq!(pooled.stats.tasks_run, respawn.stats.tasks_run, "{cfg:?}");
        }
    }

    #[test]
    fn shared_pool_serves_repeated_apsp_runs() {
        let w = Apsp::new(10);
        let expect = w.expected();
        let mut pool = Pool::new(&NativeConfig::steal(4));
        for _ in 0..3 {
            let m = w.run_native_on(&mut pool);
            assert_eq!(m.value, expect);
            assert_eq!(m.stats.tasks_run, 100);
        }
    }
}
