//! N-queens by distributed backtracking — the workload class the paper
//! names for its `masterWorker` skeleton: "a group of worker processes
//! that collectively process a large, and dynamically changing, set of
//! irregularly-sized tasks … It can implement a parallel map,
//! backtracking, and branch-and-bound".
//!
//! A task is a partial placement (columns of the queens placed so far,
//! most recent first). A worker *expands* a task: below the spawn
//! depth it emits one child task per safe column (and no result);
//! at the spawn depth it solves the remaining subtree sequentially and
//! returns its solution count. The master feeds generated tasks back
//! into the bag — the paper's full
//! `masterWorker :: (a -> ([a], b)) -> [a] -> [b]` shape.
//!
//! The GpH version sparks one subtree per depth-`spawn_depth` prefix
//! (`parList rnf` over subtree counts), the usual semi-explicit
//! formulation.

use crate::Measured;
use rph_eden::{skeletons, EdenConfig, EdenRuntime};
use rph_gph::{GphConfig, GphRuntime};
use rph_heap::{Heap, NodeRef, ScId, Value};
use rph_machine::ir::*;
use rph_machine::prelude::{self, Prelude};
use rph_machine::program::{KernelOut, Program, ProgramBuilder};
use rph_machine::reference;
use std::sync::Arc;

/// The N-queens benchmark.
#[derive(Debug, Clone)]
pub struct NQueens {
    /// Board size.
    pub n: usize,
    /// Depth at which subtrees are solved sequentially (tasks above it
    /// are expanded into child tasks).
    pub spawn_depth: usize,
}

struct Prog {
    program: Arc<Program>,
    support: rph_eden::EdenSupport,
    pre: Prelude,
    /// Kernel: expand a task into `(newTasks, count)`.
    #[allow(dead_code)] // referenced via the worker body that closes over it
    expand: ScId,
    /// Kernel: solve a whole subtree sequentially (GpH tasks).
    solve: ScId,
    /// Worker: `\tasks -> map expand tasks`.
    worker_map: ScId,
    /// GpH driver: spark every task, then fold.
    gph_drive: ScId,
}

/// Is placing a queen at `col` safe against `placed` (most recent
/// first)?
fn safe(placed: &[i64], col: i64) -> bool {
    for (i, &c) in placed.iter().enumerate() {
        let d = (i + 1) as i64;
        if c == col || (c - col).abs() == d {
            return false;
        }
    }
    true
}

/// Sequential backtracking count from a partial placement; also
/// returns the number of nodes visited (the kernel's true cost basis).
pub(crate) fn count_from(placed: &mut Vec<i64>, n: usize, visited: &mut u64) -> u64 {
    *visited += 1;
    if placed.len() == n {
        return 1;
    }
    let mut total = 0;
    for col in 0..n as i64 {
        if safe(placed, col) {
            placed.insert(0, col);
            total += count_from(placed, n, visited);
            placed.remove(0);
        }
    }
    total
}

fn read_placement(heap: &Heap, mut r: NodeRef) -> Vec<i64> {
    let mut out = Vec::new();
    loop {
        match heap.expect_value(heap.resolve(r)) {
            Value::Nil => return out,
            Value::Cons(h, t) => {
                out.push(heap.expect_value(heap.resolve(*h)).expect_int());
                r = *t;
            }
            other => panic!("placement list expected, got {other:?}"),
        }
    }
}

fn alloc_placement(heap: &mut Heap, placed: &[i64]) -> NodeRef {
    let mut tail = heap.alloc_value(Value::Nil);
    for &c in placed.iter().rev() {
        let h = heap.int(c);
        tail = heap.alloc_value(Value::Cons(h, tail));
    }
    tail
}

impl NQueens {
    pub fn new(n: usize) -> Self {
        NQueens {
            n,
            spawn_depth: 3.min(n),
        }
    }

    pub fn with_spawn_depth(mut self, d: usize) -> Self {
        self.spawn_depth = d.min(self.n);
        self
    }

    /// Plain-Rust oracle.
    pub fn expected(&self) -> i64 {
        let mut v = 0;
        count_from(&mut Vec::new(), self.n, &mut v) as i64
    }

    fn program(&self) -> Prog {
        let n = self.n;
        let depth = self.spawn_depth;
        let mut b = ProgramBuilder::new();
        let pre = prelude::install(&mut b);
        let support = rph_eden::install_support(&mut b);
        // expand task -> (newTasks, count)
        let expand = b.kernel("nqExpand", 1, move |heap, args| {
            let placed = read_placement(heap, args[0]);
            if placed.len() >= depth {
                // Solve the subtree sequentially.
                let mut p = placed.clone();
                let mut visited = 0u64;
                let total = count_from(&mut p, n, &mut visited);
                let nil = heap.alloc_value(Value::Nil);
                let cnt = heap.alloc_value(Value::Int(total as i64));
                KernelOut {
                    result: heap.alloc_value(Value::Tuple(vec![nil, cnt].into())),
                    cost: visited * 40,
                    transient_words: visited * 6,
                }
            } else {
                // Expand one level.
                let mut children = Vec::new();
                for col in 0..n as i64 {
                    if safe(&placed, col) {
                        let mut child = placed.clone();
                        child.insert(0, col);
                        children.push(alloc_placement(heap, &child));
                    }
                }
                let list = skeletons::list_of(heap, &children);
                let zero = heap.alloc_value(Value::Int(0));
                KernelOut {
                    result: heap.alloc_value(Value::Tuple(vec![list, zero].into())),
                    cost: (n as u64) * 30,
                    transient_words: (n as u64) * 4,
                }
            }
        });
        // solve task -> count (whole subtree; the GpH spark unit)
        let solve = b.kernel("nqSolve", 1, move |heap, args| {
            let mut placed = read_placement(heap, args[0]);
            let mut visited = 0u64;
            let total = count_from(&mut placed, n, &mut visited);
            KernelOut {
                result: heap.alloc_value(Value::Int(total as i64)),
                cost: visited * 40,
                transient_words: visited * 6,
            }
        });
        let worker_map = b.def(
            "nqWorker",
            1,
            let_(vec![pap(expand, vec![])], app(pre.map, vec![v(1), v(0)])),
        );
        // gphDrive tasks = sparkList tasks `seq` sum tasks
        let gph_drive = b.def(
            "nqGphDrive",
            1,
            seq(app(pre.spark_list, vec![v(0)]), app(pre.sum, vec![v(0)])),
        );
        Prog {
            program: b.build(),
            support,
            pre,
            expand,
            solve,
            worker_map,
            gph_drive,
        }
    }

    /// All depth-`spawn_depth` prefixes (the GpH spark units).
    pub(crate) fn prefixes(&self) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        let mut stack = vec![Vec::new()];
        while let Some(p) = stack.pop() {
            if p.len() == self.spawn_depth {
                out.push(p);
                continue;
            }
            for col in 0..self.n as i64 {
                if safe(&p, col) {
                    let mut child = p.clone();
                    child.insert(0, col);
                    stack.push(child);
                }
            }
        }
        out
    }

    /// Eden dynamic `masterWorker` run: start from the single empty
    /// placement, let the bag grow.
    pub fn run_eden_master_worker(
        &self,
        config: EdenConfig,
        prefetch: usize,
    ) -> Result<Measured, String> {
        let p = self.program();
        let workers = (config.pes - 1).max(1);
        let mut rt = EdenRuntime::new(p.program.clone(), p.support, config);
        let root = alloc_placement(rt.heap_mut(0), &[]);
        let results =
            skeletons::master_worker_dyn(&mut rt, p.worker_map, workers, prefetch, &[root]);
        let entry = rt.heap_mut(0).alloc_thunk(p.pre.sum, vec![results]);
        let out = rt.run(entry)?;
        let value = rt.heap(0).expect_value(out.result).expect_int();
        Ok(Measured {
            value,
            elapsed: out.elapsed,
            tracer: out.tracer,
            gph_stats: None,
            eden_stats: Some(out.stats),
        })
    }

    /// GpH run: spark one `nqSolve` per depth-`spawn_depth` prefix.
    pub fn run_gph(&self, config: GphConfig) -> Result<Measured, String> {
        let p = self.program();
        let prefixes = self.prefixes();
        let mut rt = GphRuntime::new(p.program.clone(), config);
        let (solve, gph_drive) = (p.solve, p.gph_drive);
        let out = rt.run(move |heap| {
            let tasks: Vec<NodeRef> = prefixes
                .iter()
                .map(|pf| {
                    let t = alloc_placement(heap, pf);
                    heap.alloc_thunk(solve, vec![t])
                })
                .collect();
            let list = crate::sum_euler::list_of(heap, &tasks);
            heap.alloc_thunk(gph_drive, vec![list])
        })?;
        let value = rt.heap().expect_value(out.result).expect_int();
        Ok(Measured {
            value,
            elapsed: out.elapsed,
            tracer: out.tracer,
            gph_stats: Some(out.stats),
            eden_stats: None,
        })
    }

    /// Sequential baseline.
    pub fn run_seq(&self) -> Measured {
        let p = self.program();
        let mut heap = Heap::new();
        let root = alloc_placement(&mut heap, &[]);
        let entry = heap.alloc_thunk(p.solve, vec![root]);
        let (r, cost) = reference::run_seq(&p.program, &mut heap, entry);
        Measured {
            value: heap.expect_value(r).expect_int(),
            elapsed: cost,
            tracer: rph_trace::Tracer::disabled(0),
            gph_stats: None,
            eden_stats: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_matches_known_counts() {
        // OEIS A000170.
        for (n, expect) in [(4usize, 2i64), (5, 10), (6, 4), (7, 40), (8, 92)] {
            assert_eq!(NQueens::new(n).expected(), expect, "n={n}");
        }
    }

    #[test]
    fn eden_dynamic_master_worker_counts_solutions() {
        let w = NQueens::new(8).with_spawn_depth(2);
        let m = w
            .run_eden_master_worker(EdenConfig::new(4).without_trace(), 2)
            .unwrap();
        assert_eq!(m.value, 92);
        assert!(
            m.eden_stats.as_ref().unwrap().messages > 20,
            "tasks flowed dynamically"
        );
    }

    #[test]
    fn gph_sparked_subtrees_count_solutions() {
        let w = NQueens::new(8).with_spawn_depth(2);
        let m = w
            .run_gph(
                GphConfig::ghc69_plain(4)
                    .with_work_stealing()
                    .without_trace(),
            )
            .unwrap();
        assert_eq!(m.value, 92);
        assert!(m.gph_stats.as_ref().unwrap().sparks_created > 10);
    }

    #[test]
    fn seq_matches_and_parallel_is_faster() {
        // n = 11 gives ~20 ms of virtual work — enough to dominate the
        // coordination overheads.
        let w = NQueens::new(11).with_spawn_depth(3);
        let seq = w.run_seq();
        assert_eq!(seq.value, 2680);
        let eden = w
            .run_eden_master_worker(EdenConfig::new(8).without_trace(), 2)
            .unwrap();
        assert_eq!(eden.value, 2680);
        assert!(
            eden.elapsed < seq.elapsed / 2,
            "eden {} !< seq/2 {}",
            eden.elapsed,
            seq.elapsed / 2
        );
        let gph = w
            .run_gph(
                GphConfig::ghc69_plain(8)
                    .with_work_stealing()
                    .without_trace(),
            )
            .unwrap();
        assert_eq!(gph.value, 2680);
        assert!(gph.elapsed < seq.elapsed / 2);
    }

    #[test]
    fn deeper_spawn_depth_means_more_smaller_tasks() {
        let shallow = NQueens::new(8).with_spawn_depth(1);
        let deep = NQueens::new(8).with_spawn_depth(3);
        assert!(deep.prefixes().len() > shallow.prefixes().len());
        // Both still correct.
        let m1 = shallow
            .run_eden_master_worker(EdenConfig::new(3).without_trace(), 1)
            .unwrap();
        let m2 = deep
            .run_eden_master_worker(EdenConfig::new(3).without_trace(), 1)
            .unwrap();
        assert_eq!(m1.value, 92);
        assert_eq!(m2.value, 92);
    }
}
