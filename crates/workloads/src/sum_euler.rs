//! sumEuler: `sum (map phi [1..n])` (§V, "a simple map-reduce
//! operation") — Fig. 1 (runtimes), Fig. 2 (traces), Fig. 3 left
//! (speedups).
//!
//! * **GpH**: the input range is split into chunks; a spark is created
//!   per chunk sum (`parList rnf` over the sublist sums); the main
//!   thread then folds the chunk sums.
//! * **Eden**: the ready-made `parMapReduce` skeleton with one process
//!   per PE. Elements are distributed round-robin (Eden's `unshuffle`,
//!   the standard static decomposition for `parMap`-style skeletons),
//!   which stripes the φ(k) ∝ k cost gradient evenly; the residual
//!   static imbalance is the paper's "sub-optimal static load
//!   balance".
//! * Optionally, the result is checked by "a second sequential
//!   computation, that is obvious at the end of each trace" (Fig. 2):
//!   a sequential naive recomputation of a *slice* of the work (the
//!   heaviest ~6 %: the top of the k-range for GpH, the last stripe
//!   for Eden), compared against the corresponding parallel partials.
//!   (A full sequential recomputation would take 8× the parallel phase
//!   and visibly does not in the paper's traces; the harnesses
//!   additionally validate every full result against a plain-Rust
//!   oracle.)

use crate::kernels;
use crate::Measured;
use rph_eden::{skeletons, EdenConfig, EdenRuntime};
use rph_gph::{GphConfig, GphRuntime};
use rph_heap::{Heap, NodeRef, ScId, Value};
use rph_machine::ir::*;
use rph_machine::prelude::{self, Prelude};
use rph_machine::program::{KernelOut, Program, ProgramBuilder};
use rph_machine::reference;
use std::sync::Arc;

/// The sumEuler benchmark.
#[derive(Debug, Clone)]
pub struct SumEuler {
    /// Upper limit: `sum (map phi [1..n])`.
    pub n: i64,
    /// GpH chunk size (spark granularity).
    pub chunk_size: i64,
    /// Append the sequential check phase (visible in Fig. 2 traces).
    pub check: bool,
}

struct Prog {
    program: Arc<Program>,
    support: rph_eden::EdenSupport,
    #[allow(dead_code)]
    pre: Prelude,
    /// Kernel `phiRange lo hi = sum (map phi [lo..hi])`.
    phi_range: ScId,
    /// `phiStrideT (start,stride,n)` — tupled stripe worker for the
    /// skeleton.
    phi_stride_t: ScId,
    /// `sumList xs = sum xs`.
    sum_list: ScId,
    /// masterWorker worker: `\tasks -> map phiStrideT tasks`.
    map_phi_ranges: ScId,
    /// GpH driver: `\chunks -> sparkList chunks `seq` sum chunks`.
    gph_main: ScId,
    /// GpH driver with the sequential check phase.
    gph_main_check: ScId,
    /// Check wrapper: `\res chk -> if res == chk then res else -1`.
    #[allow(dead_code)] // kept as a reusable helper for custom drivers
    check_eq: ScId,
    /// Eden check driver.
    eden_check: ScId,
}

impl SumEuler {
    pub fn new(n: i64) -> Self {
        SumEuler {
            n,
            chunk_size: (n / 150).max(1),
            check: false,
        }
    }

    pub fn with_check(mut self) -> Self {
        self.check = true;
        self
    }

    pub fn with_chunk_size(mut self, c: i64) -> Self {
        self.chunk_size = c.max(1);
        self
    }

    /// Direct Rust oracle.
    pub fn expected(&self) -> i64 {
        kernels::sum_euler_oracle(self.n)
    }

    fn program(&self) -> Prog {
        let mut b = ProgramBuilder::new();
        let pre = prelude::install(&mut b);
        let support = rph_eden::install_support(&mut b);
        let phi_range = b.kernel("phiRange", 2, |heap, args| {
            let lo = heap.expect_value(args[0]).expect_int();
            let hi = heap.expect_value(args[1]).expect_int();
            let (sum, cost, words) = kernels::sum_phi_range(lo, hi);
            KernelOut {
                result: heap.alloc_value(Value::Int(sum)),
                cost,
                transient_words: words,
            }
        });
        // phiStride kernel: sum phi(k) for k = start, start+stride ... <= n
        // (Eden's unshuffle decomposition: process j takes the stripe
        // k ≡ j (mod noPE)).
        let phi_stride = b.kernel("phiStride", 3, |heap, args| {
            let start = heap.expect_value(args[0]).expect_int();
            let stride = heap.expect_value(args[1]).expect_int();
            let n = heap.expect_value(args[2]).expect_int();
            let mut total = 0i64;
            let mut cost = 0u64;
            let mut words = 0u64;
            let mut k = start;
            while k <= n {
                let (p, c, w) = crate::kernels::phi_cached(k);
                total += p;
                cost += c;
                words += w;
                k += stride;
            }
            KernelOut {
                result: heap.alloc_value(Value::Int(total)),
                cost,
                transient_words: words,
            }
        });
        // phiStrideT p = case p of (start, stride, n) -> phiStride ...
        let phi_stride_t = b.def(
            "phiStrideT",
            1,
            case_tuple(atom(v(0)), 3, app(phi_stride, vec![v(1), v(2), v(3)])),
        );
        let sum_list = b.def("sumList", 1, app(pre.sum, vec![v(0)]));
        // mapPhiRanges ts = map phiStrideT ts — a masterWorker worker:
        // lazily maps the task stream, one result per arriving task.
        let map_phi_ranges = b.def(
            "mapPhiRanges",
            1,
            let_(
                vec![pap(phi_stride_t, vec![])],
                app(pre.map, vec![v(1), v(0)]),
            ),
        );
        // gphMain chunks = sparkList chunks `seq` sum chunks
        let gph_main = b.def(
            "gphMain",
            1,
            seq(app(pre.spark_list, vec![v(0)]), app(pre.sum, vec![v(0)])),
        );
        // gphMainCheck chunks tailChunks chk:
        //   the parallel sum, then the sequential check phase — the
        //   tail chunks' (already evaluated) values re-folded and
        //   compared against a fresh naive recomputation `chk` of the
        //   same range.                     frame: [chunks, tail, chk]
        let gph_main_check = b.def(
            "gphMainCheck",
            3,
            seq(
                app(pre.spark_list, vec![v(0)]),
                let_(
                    vec![thunk(pre.sum, vec![v(0)])], // [3] parallel sum
                    seq(
                        atom(v(3)),
                        let_(
                            vec![thunk(pre.sum, vec![v(1)])], // [4] tail re-fold
                            if_(
                                prim(rph_machine::PrimOp::Eq, vec![v(4), v(2)]),
                                atom(v(3)),
                                atom(int(-1)),
                            ),
                        ),
                    ),
                ),
            ),
        );
        // edenCheck merged last chk = merged `seq`
        //   (if last == chk then merged else -1)
        let eden_check = b.def(
            "edenCheck",
            3,
            seq(
                atom(v(0)),
                if_(
                    prim(rph_machine::PrimOp::Eq, vec![v(1), v(2)]),
                    atom(v(0)),
                    atom(int(-1)),
                ),
            ),
        );
        // checkEq res chk = if res == chk then res else -1
        let check_eq = b.def(
            "checkEq",
            2,
            if_(
                prim(rph_machine::PrimOp::Eq, vec![v(0), v(1)]),
                atom(v(0)),
                atom(int(-1)),
            ),
        );
        Prog {
            program: b.build(),
            support,
            pre,
            phi_range,
            phi_stride_t,
            sum_list,
            map_phi_ranges,
            gph_main,
            gph_main_check,
            check_eq,
            eden_check,
        }
    }

    /// The chunk ranges `[(lo, hi)]` for a given chunk size.
    pub(crate) fn ranges(&self, chunk: i64) -> Vec<(i64, i64)> {
        let mut out = Vec::new();
        let mut lo = 1;
        while lo <= self.n {
            let hi = (lo + chunk - 1).min(self.n);
            out.push((lo, hi));
            lo = hi + 1;
        }
        out
    }

    fn alloc_chunk_thunks(&self, p: &Prog, heap: &mut Heap, chunk: i64) -> Vec<NodeRef> {
        self.ranges(chunk)
            .into_iter()
            .map(|(lo, hi)| {
                let l = heap.int(lo);
                let h = heap.int(hi);
                heap.alloc_thunk(p.phi_range, vec![l, h])
            })
            .collect()
    }

    /// Shared-heap GpH run.
    pub fn run_gph(&self, config: GphConfig) -> Result<Measured, String> {
        let p = self.program();
        let mut rt = GphRuntime::new(p.program.clone(), config);
        let n = self.n;
        let check = self.check;
        let chunk = self.chunk_size;
        let this = self.clone();
        let out = rt.run(|heap| {
            let chunks = this.alloc_chunk_thunks(&p, heap, chunk);
            let list = list_of(heap, &chunks);
            if check {
                // The check range: the chunks whose lower bound is in
                // the top ~3 % of [1..n] — about 6 % of the total work
                // (φ(k) ∝ k), recomputed naively and sequentially.
                let cutoff = n - n * 3 / 100;
                let ranges = this.ranges(chunk);
                let first_tail = ranges
                    .iter()
                    .position(|(lo, _)| *lo > cutoff)
                    .unwrap_or(ranges.len() - 1);
                let tail_nodes = &chunks[first_tail..];
                let tail_list = list_of(heap, tail_nodes);
                let lo = heap.int(ranges[first_tail].0);
                let nn = heap.int(n);
                let chk = heap.alloc_thunk(p.phi_range, vec![lo, nn]);
                heap.alloc_thunk(p.gph_main_check, vec![list, tail_list, chk])
            } else {
                heap.alloc_thunk(p.gph_main, vec![list])
            }
        })?;
        let value = rt.heap().expect_value(out.result).expect_int();
        Ok(Measured {
            value,
            elapsed: out.elapsed,
            tracer: out.tracer,
            gph_stats: Some(out.stats),
            eden_stats: None,
        })
    }

    /// Distributed-heap Eden run: `parMapReduce` with one process per
    /// PE over contiguous ranges (static split, like `splitIntoN noPE`).
    pub fn run_eden(&self, config: EdenConfig) -> Result<Measured, String> {
        let p = self.program();
        let pes = config.pes;
        let mut rt = EdenRuntime::new(p.program.clone(), p.support, config);
        // unshuffle noPE: process j takes the stripe k ≡ j+1 (mod noPE).
        let stripes: Vec<NodeRef> = (0..pes as i64)
            .map(|j| {
                let heap = rt.heap_mut(0);
                let s = heap.int(j + 1);
                let st = heap.int(pes as i64);
                let nn = heap.int(self.n);
                heap.alloc_value(Value::Tuple(vec![s, st, nn].into()))
            })
            .collect();
        let entry = if self.check {
            // The stripes cover [1..cutoff] on the worker PEs; the
            // heaviest ~3 % of the range ([cutoff+1..n], about 6 % of
            // the work) is computed by the *parent* concurrently, and
            // the check phase re-verifies that slice with a fresh
            // sequential recomputation — the same shape as the GpH
            // check.
            let cutoff = self.n - self.n * 3 / 100;
            // With the parent computing the tail slice, the stripes go
            // to the other PEs only (round-robin placement starts at
            // PE 1, so `pes - 1` stripe processes leave PE 0 free for
            // the parent's share).
            let nstripes = (pes - 1).max(1) as i64;
            let tasks: Vec<NodeRef> = (0..nstripes)
                .map(|j| {
                    let heap = rt.heap_mut(0);
                    let s = heap.int(j + 1);
                    let st = heap.int(nstripes);
                    let nn = heap.int(cutoff);
                    heap.alloc_value(Value::Tuple(vec![s, st, nn].into()))
                })
                .collect();
            let outs = skeletons::par_map(&mut rt, p.phi_stride_t, &tasks);
            let heap = rt.heap_mut(0);
            let lo = heap.int(cutoff + 1);
            let nn = heap.int(self.n);
            // Parent-side tail: first in the fold, so the parent works
            // on it while the worker partials are still in flight.
            let tail_local = heap.alloc_thunk(p.phi_range, vec![lo, nn]);
            let mut all = vec![tail_local];
            all.extend(outs);
            let list = list_of(heap, &all);
            let merged = heap.alloc_thunk(p.sum_list, vec![list]);
            let lo2 = heap.int(cutoff + 1);
            let nn2 = heap.int(self.n);
            let chk = heap.alloc_thunk(p.phi_range, vec![lo2, nn2]);
            heap.alloc_thunk(p.eden_check, vec![merged, tail_local, chk])
        } else {
            skeletons::par_map_reduce(&mut rt, p.phi_stride_t, p.sum_list, &stripes)
        };
        let out = rt.run(entry)?;
        let value = rt.heap(0).expect_value(out.result).expect_int();
        Ok(Measured {
            value,
            elapsed: out.elapsed,
            tracer: out.tracer,
            gph_stats: None,
            eden_stats: Some(out.stats),
        })
    }

    /// Distributed-heap Eden run with the `masterWorker` skeleton
    /// (§II.A): the master feeds fine-grained range tasks to worker
    /// processes dynamically — the skeleton for "a large, and
    /// dynamically changing, set of irregularly-sized tasks" (φ(k)'s
    /// cost gradient makes sumEuler's chunks exactly that).
    pub fn run_eden_master_worker(
        &self,
        config: EdenConfig,
        prefetch: usize,
    ) -> Result<Measured, String> {
        let p = self.program();
        let workers = (config.pes - 1).max(1);
        let mut rt = EdenRuntime::new(p.program.clone(), p.support, config);
        // Fine-grained contiguous range tasks, like the GpH chunks;
        // tasks are (lo, stride=1, hi) triples in normal form.
        let tasks: Vec<NodeRef> = self
            .ranges(self.chunk_size)
            .into_iter()
            .map(|(lo, hi)| {
                let heap = rt.heap_mut(0);
                let l = heap.int(lo);
                let st = heap.int(1);
                let h = heap.int(hi);
                heap.alloc_value(Value::Tuple(vec![l, st, h].into()))
            })
            .collect();
        let results =
            skeletons::master_worker(&mut rt, p.map_phi_ranges, workers, prefetch, &tasks);
        let entry = rt.heap_mut(0).alloc_thunk(p.sum_list, vec![results]);
        let out = rt.run(entry)?;
        let value = rt.heap(0).expect_value(out.result).expect_int();
        Ok(Measured {
            value,
            elapsed: out.elapsed,
            tracer: out.tracer,
            gph_stats: None,
            eden_stats: Some(out.stats),
        })
    }

    /// Distributed-heap Eden run with a deliberately naive *contiguous*
    /// static split (`splitIntoN`): the "sub-optimal static load
    /// balance" the paper attributes to its Fig. 2(e) Eden run — the
    /// last PE gets the heaviest k's.
    pub fn run_eden_contiguous(&self, config: EdenConfig) -> Result<Measured, String> {
        let p = self.program();
        let pes = config.pes;
        let mut rt = EdenRuntime::new(p.program.clone(), p.support, config);
        let per = (self.n + pes as i64 - 1) / pes as i64;
        let tasks: Vec<NodeRef> = self
            .ranges(per.max(1))
            .into_iter()
            .map(|(lo, hi)| {
                let heap = rt.heap_mut(0);
                let l = heap.int(lo);
                let st = heap.int(1);
                let h = heap.int(hi);
                heap.alloc_value(Value::Tuple(vec![l, st, h].into()))
            })
            .collect();
        let merged = skeletons::par_map_reduce(&mut rt, p.phi_stride_t, p.sum_list, &tasks);
        let out = rt.run(merged)?;
        let value = rt.heap(0).expect_value(out.result).expect_int();
        Ok(Measured {
            value,
            elapsed: out.elapsed,
            tracer: out.tracer,
            gph_stats: None,
            eden_stats: Some(out.stats),
        })
    }

    /// Sequential baseline on the abstract machine (one core, no GC).
    pub fn run_seq(&self) -> Measured {
        let p = self.program();
        let mut heap = Heap::new();
        let one = heap.int(1);
        let nn = heap.int(self.n);
        let entry = heap.alloc_thunk(p.phi_range, vec![one, nn]);
        let (r, cost) = reference::run_seq(&p.program, &mut heap, entry);
        Measured {
            value: heap.expect_value(r).expect_int(),
            elapsed: cost,
            tracer: rph_trace::Tracer::disabled(0),
            gph_stats: None,
            eden_stats: None,
        }
    }
}

/// Build a cons list from nodes (shared helper).
pub(crate) fn list_of(heap: &mut Heap, nodes: &[NodeRef]) -> NodeRef {
    let mut tail = heap.alloc_value(Value::Nil);
    for &n in nodes.iter().rev() {
        tail = heap.alloc_value(Value::Cons(n, tail));
    }
    tail
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: i64 = 300; // keep debug-build tests quick

    #[test]
    fn gph_matches_oracle_across_ladder() {
        let w = SumEuler::new(N).with_chunk_size(20);
        let expect = w.expected();
        for (name, cfg) in GphConfig::fig1_ladder(4) {
            let m = w.run_gph(cfg.without_trace()).unwrap();
            assert_eq!(m.value, expect, "{name}");
            assert!(m.elapsed > 0);
        }
    }

    #[test]
    fn eden_matches_oracle() {
        let w = SumEuler::new(N);
        let m = w.run_eden(EdenConfig::new(4).without_trace()).unwrap();
        assert_eq!(m.value, w.expected());
        assert_eq!(m.eden_stats.unwrap().processes, 4);
    }

    #[test]
    fn seq_matches_oracle_and_is_slower_than_parallel() {
        let w = SumEuler::new(N).with_chunk_size(20);
        let seq = w.run_seq();
        assert_eq!(seq.value, w.expected());
        let par = w
            .run_gph(
                GphConfig::ghc69_plain(8)
                    .with_work_stealing()
                    .without_trace(),
            )
            .unwrap();
        assert!(
            par.elapsed < seq.elapsed,
            "8 caps {} !< seq {}",
            par.elapsed,
            seq.elapsed
        );
    }

    #[test]
    fn check_phase_detects_nothing_wrong_and_extends_trace() {
        let w = SumEuler::new(120).with_chunk_size(10).with_check();
        let m = w
            .run_gph(GphConfig::ghc69_plain(2).without_trace())
            .unwrap();
        assert_eq!(m.value, w.expected(), "check must agree");
        let plain = SumEuler::new(120).with_chunk_size(10);
        let m2 = plain
            .run_gph(GphConfig::ghc69_plain(2).without_trace())
            .unwrap();
        assert!(
            m.elapsed > m2.elapsed,
            "the check phase adds sequential time"
        );
    }

    #[test]
    fn eden_check_works_too() {
        let w = SumEuler::new(120).with_check();
        let m = w.run_eden(EdenConfig::new(2).without_trace()).unwrap();
        assert_eq!(m.value, w.expected());
    }

    #[test]
    fn ranges_cover_exactly() {
        let w = SumEuler::new(100).with_chunk_size(7);
        let rs = w.ranges(7);
        assert_eq!(rs.first().unwrap().0, 1);
        assert_eq!(rs.last().unwrap().1, 100);
        let total: i64 = rs.iter().map(|(lo, hi)| hi - lo + 1).sum();
        assert_eq!(total, 100);
        for w2 in rs.windows(2) {
            assert_eq!(w2[0].1 + 1, w2[1].0);
        }
    }
}

#[cfg(test)]
mod decomposition_tests {
    use super::*;

    #[test]
    fn master_worker_matches_oracle_and_balances() {
        let w = SumEuler::new(400).with_chunk_size(10);
        let m = w
            .run_eden_master_worker(EdenConfig::new(4).without_trace(), 2)
            .unwrap();
        assert_eq!(m.value, w.expected());
        assert_eq!(
            m.eden_stats.as_ref().unwrap().processes,
            3,
            "pes - 1 workers"
        );
    }

    #[test]
    fn contiguous_split_is_slower_than_striped_and_master_worker() {
        // φ(k) ∝ k: a contiguous split loads the last PE with ~2× the
        // mean work; striping and dynamic distribution both fix it.
        let w = SumEuler::new(600).with_chunk_size(10);
        let contiguous = w
            .run_eden_contiguous(EdenConfig::new(4).without_trace())
            .unwrap();
        let striped = w.run_eden(EdenConfig::new(4).without_trace()).unwrap();
        let mw = w
            .run_eden_master_worker(EdenConfig::new(4).without_trace(), 2)
            .unwrap();
        assert_eq!(contiguous.value, w.expected());
        assert_eq!(striped.value, w.expected());
        assert_eq!(mw.value, w.expected());
        assert!(
            striped.elapsed < contiguous.elapsed,
            "striped {} !< contiguous {}",
            striped.elapsed,
            contiguous.elapsed
        );
        assert!(
            mw.elapsed < contiguous.elapsed,
            "masterWorker {} !< contiguous {}",
            mw.elapsed,
            contiguous.elapsed
        );
    }
}
