//! Quick scalar-vs-SIMD gate probe for the vectorised kernels.
//!
//! Prints per-kernel scalar/simd timings and the speedup ratio; the
//! real gates live in `bench_native_json` — this is the fast local
//! check (`cargo run --release -p rph-workloads --example
//! simd_gate_probe`).

use rph_workloads::kernels;
use rph_workloads::simd;
use std::time::Instant;

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    println!("active variant: {}", simd::active().name());
    println!("cpu features:   {:?}", simd::cpu_features());

    for n in [64usize, 128, 256] {
        let a: Vec<f64> = (0..n * n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut c = vec![0.0; n * n];
        let reps = (256 / n) * (256 / n) * 7;
        let ts = time(reps, || {
            kernels::matmul_tiled_into_scalar(&mut c, &a, &b, n)
        });
        let tv = time(reps, || kernels::matmul_tiled_into(&mut c, &a, &b, n));
        let gf = 2.0 * (n * n * n) as f64 / 1e9;
        println!(
            "matmul n={n}: scalar {:.3} ms ({:.1} GF/s)  simd {:.3} ms ({:.1} GF/s)  ratio {:.2}x",
            ts * 1e3,
            gf / ts,
            tv * 1e3,
            gf / tv,
            ts / tv
        );
    }

    // --- matmul, n = 256 -------------------------------------------
    let n = 256;
    let a: Vec<f64> = (0..n * n).map(|i| ((i % 13) as f64) - 6.0).collect();
    let b: Vec<f64> = (0..n * n).map(|i| ((i % 7) as f64) - 3.0).collect();
    let mut c = vec![0.0; n * n];
    let ts = time(7, || kernels::matmul_tiled_into_scalar(&mut c, &a, &b, n));
    let tv = time(7, || kernels::matmul_tiled_into(&mut c, &a, &b, n));
    println!(
        "matmul n={n}:  scalar {:.3} ms  simd {:.3} ms  ratio {:.2}x  (gate 2.0x)",
        ts * 1e3,
        tv * 1e3,
        ts / tv
    );

    // --- Floyd–Warshall, n = 256 -----------------------------------
    let base: Vec<f64> = (0..n * n)
        .map(|i| {
            if i % 17 == 0 {
                f64::INFINITY
            } else {
                ((i % 29) + 1) as f64
            }
        })
        .collect();
    let mk = || {
        let mut d = base.clone();
        for i in 0..n {
            d[i * n + i] = 0.0;
        }
        d
    };
    let ts = time(5, || {
        let mut d = mk();
        kernels::floyd_warshall_blocked_scalar(&mut d, n);
        std::hint::black_box(&d);
    });
    let tv = time(5, || {
        let mut d = mk();
        kernels::floyd_warshall_blocked(&mut d, n);
        std::hint::black_box(&d);
    });
    println!(
        "apsp   n={n}:  scalar {:.3} ms  simd {:.3} ms  ratio {:.2}x  (gate 1.5x)",
        ts * 1e3,
        tv * 1e3,
        ts / tv
    );

    // --- totient sieve vs per-k gcd, range 1..=10_000 --------------
    // (the gcd path is Θ(hi²) gcd steps — keep hi modest here)
    let hi = 10_000;
    let ts = time(1, || {
        let s: i64 = (1..=hi).map(|k| kernels::phi_counted(k).0).sum();
        std::hint::black_box(s);
    });
    let tv = time(3, || {
        std::hint::black_box(kernels::sum_phi_range_sieve(1, hi));
    });
    println!(
        "sumeuler hi={hi}: gcd {:.3} ms  sieve {:.3} ms  ratio {:.1}x",
        ts * 1e3,
        tv * 1e3,
        ts / tv
    );
}
