//! Per-phase microbenchmark for the blocked Floyd–Warshall tile
//! kernels: where does the wall-clock actually go?

use rph_workloads::kernels::TILE;
use std::time::Instant;

fn main() {
    let n = 256usize;
    let mut d: Vec<f64> = (0..n * n)
        .map(|i| {
            if i % 17 == 0 {
                f64::INFINITY
            } else {
                ((i % 29) + 1) as f64
            }
        })
        .collect();
    for i in 0..n {
        d[i * n + i] = 0.0;
    }

    let reps = 2000;
    let ops = (TILE * TILE * TILE) as f64; // relaxations per tile call

    // The tier modules only exist under the `simd` feature — the
    // forced-scalar (`--no-default-features`) build must still compile
    // this example, it just skips straight to the scalar probe.
    #[cfg(all(target_arch = "x86_64", feature = "simd"))]
    {
        use rph_workloads::simd::{avx2, avx512};
        if std::arch::is_x86_feature_detected!("avx512f") {
            let mut scratch = Vec::with_capacity(TILE);
            let t = Instant::now();
            for _ in 0..reps {
                unsafe {
                    avx512::min_plus_tile_disjoint(&mut d, n, (0, TILE), (TILE, TILE), (64, TILE));
                }
            }
            let dt = t.elapsed().as_secs_f64() / reps as f64;
            println!(
                "avx512 disjoint: {:8.1} ns/tile  ({:.1} Gop/s)",
                dt * 1e9,
                ops / dt / 1e9
            );
            let t = Instant::now();
            for _ in 0..reps {
                unsafe {
                    avx512::min_plus_tile_general(
                        &mut d,
                        n,
                        (0, TILE),
                        (TILE, TILE),
                        (64, TILE),
                        &mut scratch,
                    );
                }
            }
            let dt = t.elapsed().as_secs_f64() / reps as f64;
            println!(
                "avx512 general:  {:8.1} ns/tile  ({:.1} Gop/s)",
                dt * 1e9,
                ops / dt / 1e9
            );
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            let mut scratch = Vec::with_capacity(TILE);
            let t = Instant::now();
            for _ in 0..reps {
                unsafe {
                    avx2::min_plus_tile_disjoint(&mut d, n, (0, TILE), (TILE, TILE), (64, TILE));
                }
            }
            let dt = t.elapsed().as_secs_f64() / reps as f64;
            println!(
                "avx2 disjoint:   {:8.1} ns/tile  ({:.1} Gop/s)",
                dt * 1e9,
                ops / dt / 1e9
            );
            let t = Instant::now();
            for _ in 0..reps {
                unsafe {
                    avx2::min_plus_tile_general(
                        &mut d,
                        n,
                        (0, TILE),
                        (TILE, TILE),
                        (64, TILE),
                        &mut scratch,
                    );
                }
            }
            let dt = t.elapsed().as_secs_f64() / reps as f64;
            println!(
                "avx2 general:    {:8.1} ns/tile  ({:.1} Gop/s)",
                dt * 1e9,
                ops / dt / 1e9
            );
        }
    }

    // Scalar tile via the scalar blocked driver on a TILE-sized
    // problem is awkward to isolate; approximate with full runs.
    let mk = || {
        let mut d: Vec<f64> = (0..n * n)
            .map(|i| {
                if i % 17 == 0 {
                    f64::INFINITY
                } else {
                    ((i % 29) + 1) as f64
                }
            })
            .collect();
        for i in 0..n {
            d[i * n + i] = 0.0;
        }
        d
    };
    let runs = 5;
    let t = Instant::now();
    for _ in 0..runs {
        let mut d = mk();
        rph_workloads::kernels::floyd_warshall_blocked_scalar(&mut d, n);
        std::hint::black_box(&d);
    }
    println!(
        "scalar FW total: {:8.3} ms",
        t.elapsed().as_secs_f64() / runs as f64 * 1e3
    );
    let t = Instant::now();
    for _ in 0..runs {
        let mut d = mk();
        rph_workloads::kernels::floyd_warshall_blocked(&mut d, n);
        std::hint::black_box(&d);
    }
    println!(
        "simd   FW total: {:8.3} ms",
        t.elapsed().as_secs_f64() / runs as f64 * 1e3
    );
    let per_kb = n / TILE;
    let total_tiles = per_kb * per_kb * per_kb;
    println!("tiles per full run: {total_tiles} (each {TILE}^3 relaxations)");
}
