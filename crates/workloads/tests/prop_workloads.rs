//! Property tests at the workload level: for random problem sizes,
//! granularities, capability counts, seeds and scheduling policies,
//! the parallel runs agree with the plain-Rust oracles.

use proptest::prelude::*;
use rph_eden::EdenConfig;
use rph_gph::{BlackHoling, GphConfig, SparkExec, SparkPolicy};
use rph_workloads::kernels::{
    self, block_mul_acc, block_mul_acc_naive, floyd_warshall, floyd_warshall_blocked,
    matmul_oracle, matmul_tiled_into, TILE,
};
use rph_workloads::{Apsp, MatMul, NQueens, SumEuler};

/// Small-integer matrix: every product and partial sum is exactly
/// representable in f64, so tiled and untiled kernels must agree
/// bit-for-bit, not just approximately.
fn int_matrix(n: usize, mul: u64, modulus: u64, offset: f64) -> Vec<f64> {
    (0..n * n)
        .map(|i| ((i as u64).wrapping_mul(mul) % modulus) as f64 - offset)
        .collect()
}

/// The sizes where blocked kernels historically break: degenerate
/// (1, 2), straddling the tile edge (T−1, T, T+1), straddling the
/// micro-kernel footprint, and a multi-tile non-divisible size.
fn edge_sizes() -> Vec<usize> {
    vec![1, 2, 3, 5, TILE - 1, TILE, TILE + 1, 2 * TILE + 5]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sum_euler_any_config_matches_oracle(
        n in 20i64..150,
        chunk in 1i64..40,
        caps in 1usize..6,
        seed in 0u64..1000,
        steal in any::<bool>(),
        eager in any::<bool>(),
        spark_thread in any::<bool>(),
        big_area in any::<bool>(),
    ) {
        let w = SumEuler::new(n).with_chunk_size(chunk);
        let mut cfg = GphConfig::ghc69_plain(caps).without_trace().with_seed(seed);
        cfg.spark_policy = if steal { SparkPolicy::Steal } else { SparkPolicy::Push };
        cfg.black_holing = if eager { BlackHoling::Eager } else { BlackHoling::Lazy };
        cfg.spark_exec = if spark_thread { SparkExec::SparkThread } else { SparkExec::ThreadPerSpark };
        if big_area {
            cfg = cfg.with_big_alloc_area();
        }
        let m = w.run_gph(cfg).unwrap();
        prop_assert_eq!(m.value, w.expected());

        let e = w.run_eden(EdenConfig::new(caps).without_trace().with_seed(seed)).unwrap();
        prop_assert_eq!(e.value, w.expected());
    }

    #[test]
    fn matmul_any_grid_matches_oracle(
        base in 1usize..6,
        grid in 1usize..4,
        caps in 1usize..5,
        oversub in any::<bool>(),
    ) {
        let n = grid * base * 4; // always divisible by the grid
        let w = MatMul::new(n, grid);
        let m = w
            .run_gph(GphConfig::ghc69_plain(caps).with_work_stealing().without_trace())
            .unwrap();
        prop_assert_eq!(m.value, w.expected());
        let pes = if oversub { grid * grid + 1 } else { (grid * grid).max(caps) };
        let e = w
            .run_eden(EdenConfig::oversubscribed(pes, caps).without_trace())
            .unwrap();
        prop_assert_eq!(e.value, w.expected());
    }

    #[test]
    fn apsp_any_size_matches_oracle(
        n in 6usize..36,
        pes in 1usize..5,
        density in 100u64..900,
        seed in 0u64..100,
        eager in any::<bool>(),
    ) {
        let mut w = Apsp::new(n);
        w.density_millis = density;
        w.seed = seed;
        let mut cfg = GphConfig::ghc69_plain(pes).with_work_stealing().without_trace();
        if eager {
            cfg = cfg.with_eager_blackholing();
        }
        let m = w.run_gph(cfg).unwrap();
        prop_assert_eq!(m.value, w.expected());
        let e = w.run_eden(EdenConfig::new(pes).without_trace()).unwrap();
        prop_assert_eq!(e.value, w.expected());
    }

    #[test]
    fn tiled_matmul_matches_oracles_at_any_size(
        n in 1usize..80,
        amul in 1u64..100,
        bmul in 1u64..100,
        modulus in 2u64..12,
        accumulate in any::<bool>(),
    ) {
        let a = int_matrix(n, amul, modulus, 0.0);
        let b = int_matrix(n, bmul, modulus, (modulus / 2) as f64);
        let acc = if accumulate {
            int_matrix(n, amul.wrapping_add(bmul), modulus, 1.0)
        } else {
            vec![0.0; n * n]
        };
        let (tiled, cost) = block_mul_acc(&acc, &a, &b, n);
        let (naive, cost_naive) = block_mul_acc_naive(&acc, &a, &b, n);
        prop_assert_eq!(&tiled, &naive, "n={}", n);
        prop_assert_eq!(cost, cost_naive);
        if !accumulate {
            prop_assert_eq!(&tiled, &matmul_oracle(&a, &b, n), "n={}", n);
        }
    }

    #[test]
    fn blocked_floyd_warshall_matches_plain_at_any_size(
        n in 1usize..70,
        density in 100u64..900,
        seed in 0u64..100,
    ) {
        let mut w = Apsp::new(n.max(1));
        w.density_millis = density;
        w.seed = seed;
        let mut plain = w.input_flat();
        let mut blocked = plain.clone();
        floyd_warshall(&mut plain, w.n);
        floyd_warshall_blocked(&mut blocked, w.n);
        prop_assert_eq!(plain, blocked, "n={}", n);
    }

    #[test]
    fn nqueens_any_depth_matches_oracle(
        n in 5usize..8,
        depth in 1usize..4,
        pes in 2usize..5,
        prefetch in 1usize..4,
    ) {
        let w = NQueens::new(n).with_spawn_depth(depth);
        let m = w
            .run_eden_master_worker(EdenConfig::new(pes).without_trace(), prefetch)
            .unwrap();
        prop_assert_eq!(m.value, w.expected());
        let g = w
            .run_gph(GphConfig::ghc69_plain(pes).with_work_stealing().without_trace())
            .unwrap();
        prop_assert_eq!(g.value, w.expected());
    }
}

/// The proptest sweeps hit the tile-edge sizes only probabilistically;
/// these runs pin them deterministically — every size where the
/// micro-kernel/edge-loop split or the tile extent arithmetic could
/// go wrong.
#[test]
fn tiled_kernels_match_oracles_at_tile_edge_sizes() {
    for n in edge_sizes() {
        let a = int_matrix(n, 7, 10, 0.0);
        let b = int_matrix(n, 13, 10, 4.0);
        let mut tiled = vec![0.0; n * n];
        matmul_tiled_into(&mut tiled, &a, &b, n);
        assert_eq!(tiled, matmul_oracle(&a, &b, n), "matmul n={n}");

        let w = Apsp::new(n);
        let mut plain = w.input_flat();
        let mut blocked = plain.clone();
        kernels::floyd_warshall(&mut plain, n);
        kernels::floyd_warshall_blocked(&mut blocked, n);
        assert_eq!(plain, blocked, "apsp n={n}");
    }
}
