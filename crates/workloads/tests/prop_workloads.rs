//! Property tests at the workload level: for random problem sizes,
//! granularities, capability counts, seeds and scheduling policies,
//! the parallel runs agree with the plain-Rust oracles.

use proptest::prelude::*;
use rph_eden::EdenConfig;
use rph_gph::{BlackHoling, GphConfig, SparkExec, SparkPolicy};
use rph_workloads::{Apsp, MatMul, NQueens, SumEuler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sum_euler_any_config_matches_oracle(
        n in 20i64..150,
        chunk in 1i64..40,
        caps in 1usize..6,
        seed in 0u64..1000,
        steal in any::<bool>(),
        eager in any::<bool>(),
        spark_thread in any::<bool>(),
        big_area in any::<bool>(),
    ) {
        let w = SumEuler::new(n).with_chunk_size(chunk);
        let mut cfg = GphConfig::ghc69_plain(caps).without_trace().with_seed(seed);
        cfg.spark_policy = if steal { SparkPolicy::Steal } else { SparkPolicy::Push };
        cfg.black_holing = if eager { BlackHoling::Eager } else { BlackHoling::Lazy };
        cfg.spark_exec = if spark_thread { SparkExec::SparkThread } else { SparkExec::ThreadPerSpark };
        if big_area {
            cfg = cfg.with_big_alloc_area();
        }
        let m = w.run_gph(cfg).unwrap();
        prop_assert_eq!(m.value, w.expected());

        let e = w.run_eden(EdenConfig::new(caps).without_trace().with_seed(seed)).unwrap();
        prop_assert_eq!(e.value, w.expected());
    }

    #[test]
    fn matmul_any_grid_matches_oracle(
        base in 1usize..6,
        grid in 1usize..4,
        caps in 1usize..5,
        oversub in any::<bool>(),
    ) {
        let n = grid * base * 4; // always divisible by the grid
        let w = MatMul::new(n, grid);
        let m = w
            .run_gph(GphConfig::ghc69_plain(caps).with_work_stealing().without_trace())
            .unwrap();
        prop_assert_eq!(m.value, w.expected());
        let pes = if oversub { grid * grid + 1 } else { (grid * grid).max(caps) };
        let e = w
            .run_eden(EdenConfig::oversubscribed(pes, caps).without_trace())
            .unwrap();
        prop_assert_eq!(e.value, w.expected());
    }

    #[test]
    fn apsp_any_size_matches_oracle(
        n in 6usize..36,
        pes in 1usize..5,
        density in 100u64..900,
        seed in 0u64..100,
        eager in any::<bool>(),
    ) {
        let mut w = Apsp::new(n);
        w.density_millis = density;
        w.seed = seed;
        let mut cfg = GphConfig::ghc69_plain(pes).with_work_stealing().without_trace();
        if eager {
            cfg = cfg.with_eager_blackholing();
        }
        let m = w.run_gph(cfg).unwrap();
        prop_assert_eq!(m.value, w.expected());
        let e = w.run_eden(EdenConfig::new(pes).without_trace()).unwrap();
        prop_assert_eq!(e.value, w.expected());
    }

    #[test]
    fn nqueens_any_depth_matches_oracle(
        n in 5usize..8,
        depth in 1usize..4,
        pes in 2usize..5,
        prefetch in 1usize..4,
    ) {
        let w = NQueens::new(n).with_spawn_depth(depth);
        let m = w
            .run_eden_master_worker(EdenConfig::new(pes).without_trace(), prefetch)
            .unwrap();
        prop_assert_eq!(m.value, w.expected());
        let g = w
            .run_gph(GphConfig::ghc69_plain(pes).with_work_stealing().without_trace())
            .unwrap();
        prop_assert_eq!(g.value, w.expected());
    }
}
