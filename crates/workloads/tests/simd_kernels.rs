//! Property tests: every SIMD-dispatched kernel against its portable
//! scalar oracle, at the sizes that exercise each remainder path.
//!
//! Sizes are chosen around the dispatch layer's seams: `LANES = 4`
//! (so 3/4/5 hit the partial/full/overhang lane cases and 19 = 4·4+3
//! mixes them), and `TILE = 32` (so 31/33 hit the partial-tile edge
//! on both sides — including the avx512 kernels' full-tile fast path
//! vs their general path).
//!
//! Exactness contract (DESIGN.md §3.4.5): min-plus and the totient
//! sieve must be **bit-exact** at any dispatch; mat-mul uses FMA and
//! a reassociated accumulation order, so it gets an ulp-style bound
//! proportional to each element's Σ|a·b| — and must still be
//! bit-exact when the inputs are small integers (every intermediate
//! exactly representable).

use rph_workloads::kernels::{self, TILE};
use rph_workloads::simd::{self, KernelVariant, LANES};

/// Edge sizes: 1, 2, lane−1, lane, lane+1, 4·lane+3, tile−1, tile+1.
const SIZES: [usize; 8] = [
    1,
    2,
    LANES - 1,
    LANES,
    LANES + 1,
    4 * LANES + 3,
    TILE - 1,
    TILE + 1,
];

/// Deterministic xorshift — the tests need arbitrary floats, not a
/// statistics-grade stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform-ish in [-1, 1).
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

/// A random distance matrix: zero diagonal, ~1/4 missing edges (+∞) —
/// the shape the min-plus kernels' branchless-∞ argument must survive.
fn random_dist(n: usize, rng: &mut Rng) -> Vec<f64> {
    let mut d = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                d[i * n + j] = if rng.next().is_multiple_of(4) {
                    f64::INFINITY
                } else {
                    (rng.f64() + 1.0) * 5.0
                };
            }
        }
    }
    d
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} diverged ({g} vs {w}) — min-plus must be bit-exact"
        );
    }
}

/// Per-element error budget for the FMA/reassociated mat-mul: a few
/// ulps of the sum of absolute products (the standard forward-error
/// envelope; the observed error is far below this slack).
fn assert_matmul_close(got: &[f64], want: &[f64], a: &[f64], b: &[f64], n: usize, what: &str) {
    for i in 0..n {
        for j in 0..n {
            let dot_abs: f64 = (0..n).map(|k| (a[i * n + k] * b[k * n + j]).abs()).sum();
            let tol = 16.0 * f64::EPSILON * dot_abs + f64::MIN_POSITIVE;
            let (g, w) = (got[i * n + j], want[i * n + j]);
            assert!(
                (g - w).abs() <= tol,
                "{what}: c[{i}][{j}] = {g}, want {w} (±{tol:e}) at n={n}"
            );
        }
    }
}

#[test]
fn matmul_matches_oracle_within_ulp_bound_at_edge_sizes() {
    let mut rng = Rng(0x5eed_0001);
    for n in SIZES {
        let a: Vec<f64> = (0..n * n).map(|_| rng.f64()).collect();
        let b: Vec<f64> = (0..n * n).map(|_| rng.f64()).collect();
        let want = kernels::matmul_oracle(&a, &b, n);

        let mut got = vec![0.0; n * n];
        kernels::matmul_tiled_into(&mut got, &a, &b, n);
        assert_matmul_close(&got, &want, &a, &b, n, "dispatched tiled vs oracle");

        let mut got_scalar = vec![0.0; n * n];
        kernels::matmul_tiled_into_scalar(&mut got_scalar, &a, &b, n);
        assert_matmul_close(&got_scalar, &want, &a, &b, n, "scalar tiled vs oracle");
    }
}

#[test]
fn matmul_is_bit_exact_on_integer_inputs() {
    // Small integers: products ≤ 81 and dot sums ≤ 81·n are exactly
    // representable, so FMA introduces no rounding and every
    // accumulation order yields the same bits.
    for n in SIZES {
        let a: Vec<f64> = (0..n * n).map(|i| ((i * 7) % 10) as f64).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i * 13) % 10) as f64).collect();
        let want = kernels::matmul_oracle(&a, &b, n);
        let mut got = vec![0.0; n * n];
        kernels::matmul_tiled_into(&mut got, &a, &b, n);
        assert_bits_eq(&got, &want, "integer matmul");
    }
}

#[test]
fn blocked_floyd_warshall_is_bit_exact_at_edge_sizes() {
    let mut rng = Rng(0x5eed_0002);
    for n in SIZES {
        let d0 = random_dist(n, &mut rng);

        let mut want = d0.clone();
        kernels::floyd_warshall(&mut want, n);

        let mut scalar = d0.clone();
        kernels::floyd_warshall_blocked_scalar(&mut scalar, n);
        assert_bits_eq(&scalar, &want, "scalar blocked vs plain");

        let mut got = d0.clone();
        kernels::floyd_warshall_blocked(&mut got, n);
        assert_bits_eq(&got, &want, "dispatched blocked vs plain");
    }
}

#[test]
fn totient_sieve_matches_gcd_oracle_at_edge_sizes() {
    for n in SIZES {
        let hi = n as i64;
        let want: i64 = (1..=hi).map(|k| kernels::phi_counted(k).0).sum();
        assert_eq!(
            kernels::sum_phi_range_sieve(1, hi),
            want,
            "sieve vs gcd oracle over [1, {hi}]"
        );
    }
    // A range straddling the sieve's segment boundary (SIEVE_SEG =
    // 2048), where the segment-local offsets restart.
    let (lo, hi) = (2_040, 2_060);
    let want: i64 = (lo..=hi).map(|k| kernels::phi_counted(k).0).sum();
    assert_eq!(kernels::sum_phi_range_sieve(lo, hi), want);
}

/// Serialises every test that flips or observes the process-global
/// [`simd::force_scalar`] switch. The concurrent property tests only
/// compare dispatched-vs-scalar *outputs* (equal either way), but any
/// test asserting a particular [`simd::active`] variant must hold this
/// lock for its whole forced window or it races the flip below.
static DISPATCH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Forcing scalar dispatch must (a) actually pin the variant and
/// (b) leave every bit-exact kernel's output unchanged — the fallback
/// is the oracle, not an approximation.
#[test]
fn forced_scalar_dispatch_is_bit_identical_for_exact_kernels() {
    let _guard = DISPATCH_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut rng = Rng(0x5eed_0003);
    let n = TILE + 1;
    let d0 = random_dist(n, &mut rng);
    let xs: Vec<u64> = (0..4 * LANES as u64 + 3).map(|i| i * 0x9e37_79b9).collect();

    let mut dispatched = d0.clone();
    kernels::floyd_warshall_blocked(&mut dispatched, n);
    let sum_dispatched = simd::sum_u64(&xs);
    let phi_dispatched = kernels::sum_phi_range_sieve(1, 500);

    simd::force_scalar(true);
    let forced_result = std::panic::catch_unwind(|| {
        assert_eq!(simd::active(), KernelVariant::Scalar);
        let mut forced = d0.clone();
        kernels::floyd_warshall_blocked(&mut forced, n);
        (
            forced,
            simd::sum_u64(&xs),
            kernels::sum_phi_range_sieve(1, 500),
        )
    });
    // Other tests in this binary race on the same global — always
    // restore before asserting.
    simd::force_scalar(false);

    let (forced, sum_forced, phi_forced) = forced_result.unwrap();
    assert_bits_eq(&forced, &dispatched, "forced-scalar blocked FW");
    assert_eq!(sum_forced, sum_dispatched);
    assert_eq!(phi_forced, phi_dispatched);
}

/// Direct per-tier coverage: on an avx512 host dispatch never picks
/// the avx2 kernels, so call each tier's Floyd–Warshall explicitly
/// under its own runtime-detection guard.
#[cfg(all(target_arch = "x86_64", feature = "simd"))]
#[test]
fn each_vector_tier_matches_the_scalar_kernel_directly() {
    let mut rng = Rng(0x5eed_0004);
    for n in SIZES {
        let d0 = random_dist(n, &mut rng);
        let mut want = d0.clone();
        kernels::floyd_warshall_blocked_scalar(&mut want, n);

        if std::arch::is_x86_feature_detected!("avx2") {
            let mut got = d0.clone();
            // SAFETY: the avx2 feature was just detected on this CPU.
            unsafe { simd::avx2::floyd_warshall_blocked(&mut got, n) };
            assert_bits_eq(&got, &want, "avx2 blocked FW (direct)");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            let mut got = d0.clone();
            // SAFETY: the avx512f feature was just detected on this CPU.
            unsafe { simd::avx512::floyd_warshall_blocked(&mut got, n) };
            assert_bits_eq(&got, &want, "avx512 blocked FW (direct)");
        }
    }
}
