//! The calibrated cost model. One work unit ≈ 1 ns of mutator time on
//! the paper's ~2 GHz machines (so 1 µs = 1 000 units, 1 ms = 10⁶).
//!
//! Values are chosen to be *mechanistically* plausible for 2009-era
//! GHC + PVM on Linux and are the single place to recalibrate; the
//! reproduction targets the paper's effect *shapes* (who wins, by
//! roughly what factor, where crossovers fall), which are robust to
//! moderate changes in these constants — the ablation bench
//! `ablation_costs` in `rph-bench` quantifies that robustness.
//!
//! Message pricing is *link-classed* ([`LinkClass`]): intra-node links
//! keep the paper's flat shared-memory transport, inter-node links add
//! network latency and finite bandwidth. The flat model is the
//! Intra-everywhere special case and prices identically to the
//! pre-topology constants.

use crate::topology::LinkClass;

/// All runtime-overhead constants, in work units (≈ ns).
#[derive(Debug, Clone, PartialEq)]
pub struct Costs {
    // ----- garbage collection (shared heap, §IV.A.1) -----
    /// Fixed cost of any stop-the-world collection (scan static roots,
    /// swap nurseries): tens of microseconds in GHC 6.x.
    pub gc_fixed: u64,
    /// Per-capability handshake under the *original* synchronisation:
    /// the requesting capability waits for each other capability to
    /// acknowledge via polling, serialised (GHC 6.8 `grabCapability`
    /// loop).
    pub gc_sync_per_cap_original: u64,
    /// Per-capability cost under the *improved* barrier (atomic
    /// broadcast + condition variable).
    pub gc_sync_per_cap_improved: u64,
    /// Copy cost per live word (the generational copying collector
    /// only pays for live data).
    pub gc_per_live_word: u64,
    /// Every n-th collection is a *major* one that copies the whole
    /// live graph; the others are minor collections whose copy work is
    /// bounded by the nursery (long-lived data has been promoted out
    /// of it — GHC's generational behaviour).
    pub gc_major_every: u64,
    /// Cost per capability to resume mutation after GC.
    pub gc_wakeup_per_cap: u64,
    /// Fixed cost of an *independent* per-capability minor collection
    /// (swap the nursery, scan the capability's own roots): no
    /// cross-capability synchronisation at all.
    pub gc_minor_fixed: u64,
    /// Scanning one remembered-set source during a minor collection.
    pub gc_remset_entry: u64,
    /// Processing one grey cell in the parallel mark phase (pop,
    /// examine header, push children).
    pub gc_mark_cell: u64,
    /// One grey-set steal between GC threads in the parallel mark
    /// phase (victim handshake + transfer).
    pub gc_grey_steal: u64,

    // ----- scheduling (shared heap) -----
    /// A capability context switch (save/restore, scheduler loop).
    pub ctx_switch: u64,
    /// Creating a lightweight thread for a spark (§IV.A.4: "a certain
    /// amount of overhead associated with this thread creation").
    pub thread_create: u64,
    /// Taking a spark from the local pool.
    pub spark_fetch: u64,
    /// One failed or successful remote steal attempt (cache-line
    /// transfer + CAS, §IV.A.2).
    pub steal_attempt: u64,
    /// How often the *push*-model scheduler polls for idle capabilities
    /// to offload surplus work to (GHC 6.8's `schedulePushWork` runs
    /// only when the scheduler does — the delay the paper criticises).
    pub push_poll_interval: u64,
    /// Migrating a runnable thread to another capability. Both the
    /// baseline and the optimised runtime push surplus *threads*
    /// actively (§IV.A.2: "surplus threads are still pushed actively
    /// to other capabilities").
    pub thread_migrate: u64,
    /// How long an idle capability waits before re-checking for work
    /// when there is nothing to steal (condition-variable sleep).
    pub idle_backoff: u64,

    // ----- messaging (distributed heap / Eden) -----
    /// One-way latency of a message through the PVM-over-shared-memory
    /// middleware (the paper's transport).
    pub msg_latency: u64,
    /// Serialisation + copy cost per word of payload, paid by the
    /// sender (packing) and charged again on the receiver (unpacking)
    /// at half rate.
    pub msg_per_word: u64,
    /// Cost of instantiating a remote process (spawn message, heap
    /// setup on the target PE). PEs themselves are pre-forked PVM
    /// virtual machines at program startup; instantiation is only a
    /// message plus bookkeeping.
    pub process_instantiate: u64,

    // ----- inter-node links (cluster-of-multicores topology) -----
    /// One-way latency of an inter-node (network) link. Intra-node
    /// links use [`Self::msg_latency`].
    pub inter_latency: u64,
    /// Wire cost per word over an inter-node link — the finite-
    /// bandwidth term of the two-level model. Intra-node links are
    /// latency-only (shared memory), so this is the *only* place a
    /// payload's size delays its delivery.
    pub inter_per_word: u64,
    /// Envelope words added to every inter-node transfer (message
    /// header, routing, marshalling tables). This is what makes one
    /// batched transfer of k items cheaper on the wire than k single
    /// transfers.
    pub msg_envelope_words: u64,
    /// Modeled packed footprint of one spark closure when it crosses
    /// an inter-node link in a remote steal (GUM-style pointer-graph
    /// packing).
    pub spark_pack_words: u64,

    // ----- OS scheduling of virtual PEs (oversubscription) -----
    /// Time slice the OS gives a virtual PE when PEs > cores.
    pub os_quantum: u64,
    /// OS context-switch cost between virtual PEs on a core.
    pub os_ctx_switch: u64,
}

impl Default for Costs {
    fn default() -> Self {
        Costs {
            // 50 µs fixed + copy at ~1 ns/word; the original handshake
            // costs ~20 µs/cap (polling, serialised), the improved
            // barrier ~4 µs/cap.
            gc_fixed: 15_000,
            gc_sync_per_cap_original: 20_000,
            gc_sync_per_cap_improved: 4_000,
            gc_per_live_word: 1,
            gc_major_every: 10,
            gc_wakeup_per_cap: 1_000,
            // An independent nursery collection is much cheaper to set
            // up than a stop-the-world one: ~5 µs fixed, ~20 ns per
            // remembered-set source scanned. Parallel marking costs a
            // few ns per grey cell plus a steal handshake comparable
            // to a mutator steal attempt.
            gc_minor_fixed: 5_000,
            gc_remset_entry: 20,
            gc_mark_cell: 4,
            gc_grey_steal: 600,

            // GHC's lightweight (green) threads: switching and
            // creating are sub-microsecond; spark operations are a
            // few cache accesses.
            ctx_switch: 400,
            thread_create: 1_500,
            spark_fetch: 300,
            steal_attempt: 600,
            // The 6.8 scheduler redistributes work roughly once per
            // scheduler pass: model a 0.5 ms polling period.
            push_poll_interval: 500_000,
            thread_migrate: 800,
            // Idle capabilities sleep on a condition variable and are
            // signalled when work appears: microseconds, not tens.
            idle_backoff: 5_000,

            // PVM over shared memory: ~20 µs latency, ~2 ns/word copy
            // each way.
            msg_latency: 20_000,
            msg_per_word: 2,
            process_instantiate: 30_000,

            // Gigabit-ethernet-era cluster link: ~200 µs one-way
            // latency, ~16 ns per 8-byte word (~500 MB/s effective),
            // a few-cache-line envelope per message, sparks packing
            // to a handful of words.
            inter_latency: 200_000,
            inter_per_word: 16,
            msg_envelope_words: 16,
            spark_pack_words: 8,

            // Linux-era 2009: ~4 ms quantum, ~5 µs OS context switch.
            os_quantum: 4_000_000,
            os_ctx_switch: 5_000,
        }
    }
}

impl Costs {
    /// Cost of the stop-the-world synchronisation for `caps`
    /// capabilities under the selected barrier implementation.
    pub fn gc_sync(&self, caps: usize, improved: bool) -> u64 {
        let per = if improved {
            self.gc_sync_per_cap_improved
        } else {
            self.gc_sync_per_cap_original
        };
        per * caps as u64
    }

    /// Copy work of collection number `seq` (0-based) with `live_words`
    /// reachable and `nursery_words` of allocation area: minor
    /// collections only evacuate nursery survivors (bounded by the
    /// nursery itself — promoted data is not touched); every
    /// [`Self::gc_major_every`]-th collection is major and copies the
    /// whole live graph.
    pub fn gc_copy_words(&self, seq: u64, live_words: u64, nursery_words: u64) -> u64 {
        if self.gc_major_every > 0 && (seq + 1).is_multiple_of(self.gc_major_every) {
            live_words
        } else {
            live_words.min(nursery_words)
        }
    }

    /// Total pause cost of a stop-the-world collection that copied
    /// `copy_words` (see [`Self::gc_copy_words`]): sync + fixed + copy
    /// plus wakeup. The collector itself is single-threaded, as in GHC
    /// 6.8 — the paper's reference 29 (the parallel collector) is
    /// "still stop-the-world".
    pub fn gc_pause(&self, caps: usize, improved: bool, copy_words: u64) -> u64 {
        self.gc_sync(caps, improved)
            + self.gc_fixed
            + copy_words * self.gc_per_live_word
            + self.gc_wakeup_per_cap * caps as u64
    }

    /// Pause cost of an *independent* per-PE collection (distributed
    /// heap): no cross-PE synchronisation at all — the paper's
    /// "garbage collection is perfectly scalable in the
    /// distributed-heap model".
    pub fn gc_pause_local(&self, copy_words: u64) -> u64 {
        self.gc_fixed + copy_words * self.gc_per_live_word
    }

    /// Pause cost of an independent per-capability *minor* collection
    /// on the shared heap: fixed setup + evacuating the measured
    /// survivors + scanning the nursery's remembered set. No barrier,
    /// no other capability involved — and no dependence on their heap
    /// usage.
    pub fn gc_pause_minor(&self, survivor_words: u64, remset_entries: u64) -> u64 {
        self.gc_minor_fixed
            + survivor_words * self.gc_per_live_word
            + remset_entries * self.gc_remset_entry
    }

    /// Pause cost of a stop-the-world collection whose mark/copy phase
    /// ran on parallel GC threads: barrier sync + fixed setup + the
    /// *slowest GC thread's* clock (not the serial sum) + wakeup.
    pub fn gc_pause_parallel(&self, caps: usize, improved: bool, mark_max_clock: u64) -> u64 {
        self.gc_sync(caps, improved)
            + self.gc_fixed
            + mark_max_clock
            + self.gc_wakeup_per_cap * caps as u64
    }

    /// Sender-side cost of packing `words` — CPU work, paid on the
    /// sender's clock whatever link the message then crosses.
    pub fn msg_send_cost(&self, words: u64) -> u64 {
        self.msg_per_word * words
    }

    /// Receiver-side cost of unpacking `words` — likewise local CPU
    /// work, link-independent.
    pub fn msg_recv_cost(&self, words: u64) -> u64 {
        (self.msg_per_word * words) / 2
    }

    /// One-way latency of a link.
    pub fn link_latency(&self, link: LinkClass) -> u64 {
        match link {
            LinkClass::Intra => self.msg_latency,
            LinkClass::Inter => self.inter_latency,
        }
    }

    /// Time `words` of payload occupy the wire: zero intra-node
    /// (shared memory — the paper's flat transport), bandwidth-priced
    /// plus the message envelope inter-node.
    pub fn link_wire_cost(&self, link: LinkClass, words: u64) -> u64 {
        match link {
            LinkClass::Intra => 0,
            LinkClass::Inter => self.inter_per_word * (words + self.msg_envelope_words),
        }
    }

    /// Words a transfer of `payload_words` puts on an inter-node link
    /// (payload + envelope). Intra-node transfers cross no link.
    pub fn link_words(&self, link: LinkClass, payload_words: u64) -> u64 {
        match link {
            LinkClass::Intra => 0,
            LinkClass::Inter => payload_words + self.msg_envelope_words,
        }
    }

    /// Arrival time over `link` of a message whose sender finished
    /// packing at `now`: latency plus the wire's bandwidth term.
    pub fn msg_arrival(&self, link: LinkClass, now: u64, words: u64) -> u64 {
        now + self.link_latency(link) + self.link_wire_cost(link, words)
    }

    /// Delivery time over `link` of a message *sent* at `now` with
    /// `words` payload: packing, then the wire.
    pub fn msg_delivery_on(&self, link: LinkClass, now: u64, words: u64) -> u64 {
        self.msg_arrival(link, now + self.msg_send_cost(words), words)
    }

    /// Delivery time of a message sent at `now` with `words` payload —
    /// the single-node alias: an intra-node link, exactly the
    /// pre-topology `now + msg_latency + msg_send_cost(words)`.
    pub fn msg_delivery(&self, now: u64, words: u64) -> u64 {
        self.msg_delivery_on(LinkClass::Intra, now, words)
    }

    /// Packed wire size of a remote steal moving `sparks` spark
    /// closures.
    pub fn steal_pack_words(&self, sparks: u64) -> u64 {
        self.spark_pack_words * sparks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improved_sync_is_cheaper() {
        let c = Costs::default();
        assert!(c.gc_sync(8, true) < c.gc_sync(8, false));
    }

    #[test]
    fn gc_pause_scales_with_caps_and_live_data() {
        let c = Costs::default();
        assert!(c.gc_pause(16, false, 1000) > c.gc_pause(8, false, 1000));
        assert!(c.gc_pause(8, false, 1_000_000) > c.gc_pause(8, false, 1000));
        assert!(c.gc_pause_local(1000) < c.gc_pause(1, false, 1000));
    }

    #[test]
    fn minor_pause_independent_of_anything_global() {
        let c = Costs::default();
        // The minor-pause helper takes only per-capability inputs, and
        // is far cheaper than any stop-the-world pause of equal copy
        // volume.
        assert!(c.gc_pause_minor(1000, 10) < c.gc_pause(1, false, 1000));
        assert!(c.gc_pause_minor(0, 0) == c.gc_minor_fixed);
    }

    #[test]
    fn parallel_pause_beats_serial_for_same_sync() {
        let c = Costs::default();
        // If 8 GC threads split 800k words of marking evenly, the max
        // clock is ~100k units, far below the serial copy cost.
        let serial = c.gc_pause(8, true, 800_000);
        let parallel = c.gc_pause_parallel(8, true, 100_000);
        assert!(parallel < serial);
    }

    #[test]
    fn message_costs() {
        let c = Costs::default();
        assert_eq!(c.msg_delivery(100, 0), 100 + c.msg_latency);
        assert!(c.msg_recv_cost(1000) < c.msg_send_cost(1000));
    }

    #[test]
    fn intra_link_reproduces_flat_pricing_exactly() {
        let c = Costs::default();
        for (now, words) in [(0, 0), (100, 0), (5_000, 1), (12_345, 999)] {
            assert_eq!(
                c.msg_delivery_on(LinkClass::Intra, now, words),
                now + c.msg_latency + c.msg_send_cost(words),
                "single-node alias must match the pre-topology formula"
            );
            assert_eq!(c.link_wire_cost(LinkClass::Intra, words), 0);
            assert_eq!(c.link_words(LinkClass::Intra, words), 0);
        }
    }

    #[test]
    fn inter_link_is_slower_and_bandwidth_bound() {
        let c = Costs::default();
        assert!(c.link_latency(LinkClass::Inter) > c.link_latency(LinkClass::Intra));
        // Payload size delays inter-node delivery but not intra-node.
        let small = c.msg_delivery_on(LinkClass::Inter, 0, 10);
        let large = c.msg_delivery_on(LinkClass::Inter, 0, 10_000);
        assert!(large - small > c.msg_send_cost(10_000) - c.msg_send_cost(10));
        // The envelope makes one batched transfer cheaper on the wire
        // than the same payload split into k messages.
        let batched = c.link_words(LinkClass::Inter, c.steal_pack_words(8));
        let singles = 8 * c.link_words(LinkClass::Inter, c.steal_pack_words(1));
        assert!(batched < singles);
    }
}
