//! # rph-sim — the discrete-event multicore model
//!
//! The paper's measurements ran on an 8-core Intel Xeon and a 16-core
//! AMD Opteron. This reproduction executes on whatever host it is given
//! (including a single core), so parallel timing is *simulated*: every
//! capability / processing element carries a virtual clock, mutator
//! work advances it by the abstract machine's cost accounting, and the
//! runtimes coordinate through the primitives in this crate:
//!
//! * [`DetRng`] — a deterministic splitmix64 RNG. All scheduling
//!   decisions that GHC would make pseudo-randomly (steal victims) draw
//!   from it, so a run is a pure function of (program, config, seed).
//! * [`EventQueue`] — a time-ordered queue with deterministic
//!   tie-breaking, used for message deliveries and timers.
//! * [`CoreSet`] — physical cores with clocks and an OS-scheduler model
//!   that time-slices more virtual PEs than cores (how the paper runs
//!   9 or 17 PVM nodes on 8 cores in Fig. 4).
//! * [`Costs`] — the calibrated cost model: one work unit ≈ 1 ns. All
//!   overhead constants (GC handshakes, steal attempts, message
//!   latency, context switches) live here, with the rationale for each
//!   documented on the field.
//!
//! What the model *does not* do: pretend to cycle-accuracy. The paper's
//! phenomena are scheduling/synchronisation effects in the microsecond
//! range; the model reproduces their mechanisms (barrier delays bounded
//! by checkpoint frequency, steal latency, per-PE heap scaling), not
//! the authors' exact nanoseconds.

pub mod cores;
pub mod costs;
pub mod events;
pub mod rng;
pub mod sweep;
pub mod topology;

pub use cores::CoreSet;
pub use costs::Costs;
pub use events::EventQueue;
pub use rng::DetRng;
pub use sweep::SweepRng;
pub use topology::{LinkClass, Topology};

/// Virtual time in work units (≈ nanoseconds).
pub type Time = u64;
