//! Physical cores and the OS-scheduler model for virtual PEs.
//!
//! The paper runs Eden with *more virtual PVM nodes than physical
//! cores* (Fig. 4 d/e: 9 and 17 PEs on 8 cores) and finds it *faster*,
//! crediting smaller per-PE heaps and better overlap. To reproduce
//! that, PEs are decoupled from cores: a [`CoreSet`] tracks per-core
//! clocks, and PEs are dispatched onto the least-loaded core for one
//! OS quantum at a time, paying an OS context switch when a core
//! changes PEs.

/// A set of physical cores with virtual clocks.
#[derive(Debug, Clone)]
pub struct CoreSet {
    /// Each core's clock: the virtual time up to which it is busy.
    clocks: Vec<u64>,
    /// The PE that last ran on each core (for context-switch charging).
    last_pe: Vec<Option<u32>>,
}

impl CoreSet {
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        CoreSet {
            clocks: vec![0; cores],
            last_pe: vec![None; cores],
        }
    }

    pub fn num_cores(&self) -> usize {
        self.clocks.len()
    }

    /// The core that frees up earliest (ties: lowest index —
    /// deterministic).
    pub fn earliest_core(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.clocks.iter().enumerate() {
            if c < self.clocks[best] {
                best = i;
            }
        }
        best
    }

    /// Clock of a core.
    pub fn clock(&self, core: usize) -> u64 {
        self.clocks[core]
    }

    /// Smallest clock across cores.
    pub fn min_clock(&self) -> u64 {
        *self.clocks.iter().min().expect("non-empty")
    }

    /// Largest clock across cores (the makespan).
    pub fn max_clock(&self) -> u64 {
        *self.clocks.iter().max().expect("non-empty")
    }

    /// Dispatch PE `pe` (which becomes runnable at `ready`) onto the
    /// earliest core. Returns `(core, start_time)` where `start_time`
    /// accounts for the core being busy and for an OS context switch
    /// if the core last ran a different PE (`os_ctx_switch`).
    pub fn dispatch(&mut self, pe: u32, ready: u64, os_ctx_switch: u64) -> (usize, u64) {
        let core = self.earliest_core();
        let mut start = self.clocks[core].max(ready);
        if self.last_pe[core] != Some(pe) {
            start += os_ctx_switch;
        }
        self.last_pe[core] = Some(pe);
        (core, start)
    }

    /// Mark `core` busy until `until`.
    pub fn occupy(&mut self, core: usize, until: u64) {
        debug_assert!(until >= self.clocks[core]);
        self.clocks[core] = until;
    }

    /// Advance every core to at least `t` (used when the whole machine
    /// idles waiting for an external event such as a message delivery).
    pub fn advance_all_to(&mut self, t: u64) {
        for c in &mut self.clocks {
            if *c < t {
                *c = t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_prefers_earliest_core() {
        let mut cs = CoreSet::new(2);
        cs.occupy(0, 100);
        let (core, start) = cs.dispatch(1, 0, 0);
        assert_eq!(core, 1);
        assert_eq!(start, 0);
        cs.occupy(1, 500);
        let (core, start) = cs.dispatch(2, 0, 0);
        assert_eq!(core, 0);
        assert_eq!(start, 100);
    }

    #[test]
    fn context_switch_charged_on_pe_change() {
        let mut cs = CoreSet::new(1);
        let (_, s1) = cs.dispatch(1, 0, 10);
        assert_eq!(s1, 10, "first dispatch also pays the switch");
        cs.occupy(0, 50);
        let (_, s2) = cs.dispatch(1, 0, 10);
        assert_eq!(s2, 50, "same PE back-to-back: no switch");
        cs.occupy(0, 80);
        let (_, s3) = cs.dispatch(2, 0, 10);
        assert_eq!(s3, 90, "different PE: switch charged");
    }

    #[test]
    fn ready_time_respected() {
        let mut cs = CoreSet::new(1);
        let (_, s) = cs.dispatch(1, 1000, 0);
        assert_eq!(s, 1000);
    }

    #[test]
    fn min_max_clocks() {
        let mut cs = CoreSet::new(3);
        cs.occupy(1, 70);
        assert_eq!(cs.min_clock(), 0);
        assert_eq!(cs.max_clock(), 70);
        cs.advance_all_to(50);
        assert_eq!(cs.min_clock(), 50);
        assert_eq!(cs.max_clock(), 70);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        CoreSet::new(0);
    }
}
