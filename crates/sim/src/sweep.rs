//! The shared seeded sweep-permutation contract.
//!
//! Both schedulers that steal — the GpH simulator (`crates/gph`, via
//! [`crate::DetRng`]) and the native pool (`crates/native`'s
//! `VictimPicker`, via an xorshift64* stream) — build their victim
//! sweeps the same way: a Fisher–Yates shuffle whose bounded draws use
//! Lemire's multiply-shift reduction. Until PR 9 each crate carried
//! its own copy of that loop; this module is the single
//! implementation, generic over the raw 64-bit stream, so the
//! *contract* is shared even though the generators (and therefore the
//! concrete permutations) differ:
//!
//! * a sweep visits every victim **exactly once** (it is a
//!   permutation — never a multiset of independent draws, which could
//!   revisit one victim and starve another);
//! * the permutation is a pure function of the generator state, so
//!   same seed ⇒ same sweep, replayable;
//! * the draw sequence is exactly `len-1, len-2, …, 2`-bounded values,
//!   one per swap — the property the bit-identical-trace regression
//!   tests pin.
//!
//! The cross-check test for the two concrete generators lives in
//! `crates/native/src/victim.rs`, next to the second implementor.

/// A raw 64-bit pseudo-random stream. The only thing a sweep needs.
pub trait SweepRng {
    fn next_u64(&mut self) -> u64;
}

/// Lemire's rejection-free multiply-shift reduction of a raw draw to
/// `0..n`. Bias is negligible for scheduling purposes at n ≪ 2⁶⁴.
#[inline]
pub fn bounded(raw: u64, n: u64) -> u64 {
    debug_assert!(n > 0, "bounded(_, 0)");
    ((raw as u128 * n as u128) >> 64) as u64
}

/// In-place Fisher–Yates shuffle drawing from `rng`. Consumes exactly
/// `xs.len().saturating_sub(1)` draws (zero for empty or singleton
/// slices — shuffling an empty remote segment of a hierarchical sweep
/// leaves the generator untouched).
pub fn shuffle<T>(rng: &mut impl SweepRng, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = bounded(rng.next_u64(), i as u64 + 1) as usize;
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting(u64, u64);
    impl SweepRng for Counting {
        fn next_u64(&mut self) -> u64 {
            self.1 += 1;
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation_with_exact_draw_count() {
        let mut rng = Counting(42, 0);
        let mut xs: Vec<usize> = (0..9).collect();
        shuffle(&mut rng, &mut xs);
        assert_eq!(rng.1, 8, "len-1 draws");
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_draw_nothing() {
        let mut rng = Counting(7, 0);
        shuffle::<u32>(&mut rng, &mut []);
        shuffle(&mut rng, &mut [1u32]);
        assert_eq!(rng.1, 0);
    }

    #[test]
    fn bounded_stays_in_range() {
        for raw in [0, 1, u64::MAX / 2, u64::MAX] {
            assert!(bounded(raw, 7) < 7);
        }
    }
}
