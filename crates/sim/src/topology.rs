//! Machine topology: a cluster of multicore nodes.
//!
//! The paper runs everything on one shared-memory machine, where PVM's
//! message transport is a memcpy and every steal is a cache-line
//! transfer — one flat cost per operation. *A Model for Communication
//! in Clusters of Multi-core Machines* (PAPERS.md) extends that to the
//! machines the runtimes actually meet today: several multicore nodes,
//! with two distinct link classes. Intra-node links stay the paper's
//! shared-memory transport (latency-only, effectively infinite
//! bandwidth). Inter-node links add network latency *and* finite
//! bandwidth: a per-word wire cost plus a per-message envelope.
//!
//! [`Topology`] describes the shape — `nodes` nodes of
//! `cores_per_node` capabilities/PEs each, unit `i` living on node
//! `i / cores_per_node` — and classifies any pair of units into a
//! [`LinkClass`]. The flat single-machine model is exactly
//! [`Topology::single_node`]: every pair is [`LinkClass::Intra`], all
//! costs collapse to the original constants, and runs are
//! bit-identical to the pre-topology simulator (the regression tests
//! in `rph-gph` and `rph-eden` pin this).

/// Which class of link a message or steal crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkClass {
    /// Same node: shared-memory transport (the paper's PVM-over-
    /// shared-memory). Latency-only; no bandwidth term.
    Intra,
    /// Different nodes: a network link with higher latency and finite
    /// bandwidth (per-word wire cost + per-message envelope).
    Inter,
}

/// A cluster of `nodes` multicore nodes, `cores_per_node` scheduling
/// units (GpH capabilities or Eden PEs) each. Unit `i` lives on node
/// `i / cores_per_node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    nodes: usize,
    cores_per_node: usize,
}

impl Topology {
    /// The flat model: one shared-memory node holding all `cores`
    /// units. Every link is [`LinkClass::Intra`]; behaviour is
    /// bit-identical to the pre-topology simulators.
    pub fn single_node(cores: usize) -> Self {
        Self::cluster(1, cores)
    }

    /// `nodes` nodes of `cores_per_node` units each.
    pub fn cluster(nodes: usize, cores_per_node: usize) -> Self {
        assert!(nodes >= 1, "topology needs at least one node");
        assert!(
            cores_per_node >= 1,
            "topology needs at least one core per node"
        );
        Topology {
            nodes,
            cores_per_node,
        }
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Total scheduling units across the cluster.
    pub fn total(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Which node unit `i` lives on.
    pub fn node_of(&self, i: usize) -> usize {
        i / self.cores_per_node
    }

    /// Whether units `a` and `b` share a node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The link class between units `a` and `b`.
    pub fn link(&self, a: usize, b: usize) -> LinkClass {
        if self.same_node(a, b) {
            LinkClass::Intra
        } else {
            LinkClass::Inter
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_is_all_intra() {
        let t = Topology::single_node(8);
        assert_eq!((t.nodes(), t.cores_per_node(), t.total()), (1, 8, 8));
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(t.link(a, b), LinkClass::Intra);
            }
        }
    }

    #[test]
    fn cluster_partitions_contiguously() {
        let t = Topology::cluster(2, 4);
        assert_eq!(t.total(), 8);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(7), 1);
        assert_eq!(t.link(0, 3), LinkClass::Intra);
        assert_eq!(t.link(3, 4), LinkClass::Inter);
        assert_eq!(t.link(7, 0), LinkClass::Inter);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Topology::cluster(0, 4);
    }
}
