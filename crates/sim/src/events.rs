//! A deterministic time-ordered event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event: fires at `time`, carrying `payload`. Ties are
/// broken by insertion order (FIFO), which keeps runs deterministic.
#[derive(Debug)]
struct Entry<T> {
    time: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Min-heap of timed events with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: u64, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Earliest event time, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Pop the earliest event only if it fires at or before `now`.
    pub fn pop_due(&mut self, now: u64) -> Option<(u64, T)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(100, "later");
        assert_eq!(q.pop_due(99), None);
        assert_eq!(q.pop_due(100), Some((100, "later")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
    }
}
