//! Deterministic random numbers (splitmix64).
//!
//! The runtimes must be reproducible: given the same configuration and
//! seed, a run produces bit-identical traces. GHC's work-stealing picks
//! victims pseudo-randomly; we draw those choices from this generator.

/// A splitmix64 generator — tiny, fast, and statistically solid for
/// scheduling decisions (not cryptography).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    pub fn new(seed: u64) -> Self {
        DetRng {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`. `n` must be positive.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range(0)");
        crate::sweep::bounded(self.next_u64(), n)
    }

    /// A uniformly random index in `0..n` different from `exclude`
    /// (used to pick steal victims other than yourself). `n` must be
    /// at least 2 when `exclude < n`.
    pub fn pick_other(&mut self, n: usize, exclude: usize) -> usize {
        assert!(n >= 2 || exclude >= n, "no other element to pick");
        loop {
            let i = self.gen_range(n as u64) as usize;
            if i != exclude {
                return i;
            }
        }
    }

    /// Uniform f64 in [0, 1).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// In-place Fisher–Yates shuffle. Used to build per-sweep victim
    /// permutations so a steal sweep probes every other capability
    /// exactly once, in seeded-random order — the shared contract of
    /// [`crate::sweep`], which `crates/native`'s `VictimPicker` also
    /// implements.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        crate::sweep::shuffle(self, xs);
    }
}

impl crate::sweep::SweepRng for DetRng {
    fn next_u64(&mut self) -> u64 {
        DetRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = DetRng::new(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let x = r.gen_range(8) as usize;
            assert!(x < 8);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn pick_other_never_self() {
        let mut r = DetRng::new(3);
        for _ in 0..200 {
            assert_ne!(r.pick_other(4, 2), 2);
        }
    }

    #[test]
    fn shuffle_is_a_deterministic_permutation() {
        let mut a = DetRng::new(11);
        let mut b = DetRng::new(11);
        let mut xs: Vec<usize> = (0..8).collect();
        let mut ys = xs.clone();
        a.shuffle(&mut xs);
        b.shuffle(&mut ys);
        assert_eq!(xs, ys, "same seed, same permutation");
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "still a permutation");
        // Different draws give different orders (overwhelmingly).
        let mut zs: Vec<usize> = (0..8).collect();
        a.shuffle(&mut zs);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(9);
        for _ in 0..100 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
