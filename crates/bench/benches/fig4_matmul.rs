//! Criterion bench for Fig. 4: matmul on 8 cores — GpH ladder vs Eden
//! Cannon with and without PE oversubscription.

use criterion::{criterion_group, criterion_main, Criterion};
use rph_core::prelude::*;
use rph_workloads::MatMul;
use std::time::Duration;

const N: usize = 240;
const CORES: usize = 8;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_matmul");
    g.sample_size(10);
    let gw = MatMul::new(N, 10);
    let expect = gw.expected();
    for (label, cfg) in GphConfig::fig1_ladder(CORES) {
        let gw = gw.clone();
        g.bench_function(label, move |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let m = gw.run_gph(cfg.clone().without_trace()).expect("gph");
                    assert_eq!(m.value, expect);
                    total += Duration::from_nanos(m.elapsed);
                }
                total
            })
        });
    }
    for (grid, pes) in [(3usize, 9usize), (4, 17)] {
        let w = MatMul::new(N, grid);
        let we = w.expected();
        g.bench_function(
            format!("Eden Cannon {grid}x{grid} on {pes} virtual PEs"),
            move |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let m = w
                            .run_eden(EdenConfig::oversubscribed(pes, CORES).without_trace())
                            .expect("eden");
                        assert_eq!(m.value, we);
                        total += Duration::from_nanos(m.elapsed);
                    }
                    total
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    // Deterministic samples have zero variance, which crashes the
    // plotters backend — disable plot generation.
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
