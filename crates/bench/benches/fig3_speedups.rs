//! Criterion bench for Fig. 3: sumEuler and matmul virtual runtimes at
//! 1, 8 and 16 cores for the plain, fully-optimised and Eden versions
//! (the full sweep lives in the `fig3_*` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rph_core::prelude::*;
use rph_workloads::{MatMul, SumEuler};
use std::time::Duration;

fn virtual_time(c: &mut Criterion) {
    let se = SumEuler::new(4_000);
    let se_expect = se.expected();
    let mm = MatMul::new(240, 10);
    let mm_expect = mm.expected();

    let mut g = c.benchmark_group("fig3_speedups");
    g.sample_size(10);
    for cores in [1usize, 8, 16] {
        g.bench_with_input(
            BenchmarkId::new("sumeuler_gph_steal", cores),
            &cores,
            |b, &cores| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let cfg = GphConfig::ghc69_plain(cores)
                            .with_big_alloc_area()
                            .with_improved_gc_sync()
                            .with_work_stealing()
                            .without_trace();
                        let m = se.run_gph(cfg).expect("gph");
                        assert_eq!(m.value, se_expect);
                        total += Duration::from_nanos(m.elapsed);
                    }
                    total
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("sumeuler_eden", cores),
            &cores,
            |b, &cores| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let m = se
                            .run_eden(EdenConfig::new(cores).without_trace())
                            .expect("eden");
                        assert_eq!(m.value, se_expect);
                        total += Duration::from_nanos(m.elapsed);
                    }
                    total
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("matmul_gph_steal", cores),
            &cores,
            |b, &cores| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let cfg = GphConfig::ghc69_plain(cores)
                            .with_big_alloc_area()
                            .with_improved_gc_sync()
                            .with_work_stealing()
                            .without_trace();
                        let m = mm.run_gph(cfg).expect("gph");
                        assert_eq!(m.value, mm_expect);
                        total += Duration::from_nanos(m.elapsed);
                    }
                    total
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("matmul_eden_cannon", cores),
            &cores,
            |b, &cores| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let g2 = ((cores as f64).sqrt().ceil() as usize).clamp(1, 4);
                        let w = MatMul::new(240, g2);
                        let m = w
                            .run_eden(
                                EdenConfig::oversubscribed(g2 * g2 + 1, cores).without_trace(),
                            )
                            .expect("eden");
                        assert_eq!(m.value, w.expected());
                        total += Duration::from_nanos(m.elapsed);
                    }
                    total
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = virtual_time
}
criterion_main!(benches);
