//! Criterion bench for the §IV ablations: each optimisation applied in
//! isolation to plain GHC-6.9 (sumEuler, 8 cores).

use criterion::{criterion_group, criterion_main, Criterion};
use rph_core::prelude::*;
use rph_workloads::SumEuler;
use std::time::Duration;

const N: i64 = 4_000;
const CORES: usize = 8;

fn bench(c: &mut Criterion) {
    let w = SumEuler::new(N);
    let expect = w.expected();
    let plain = GphConfig::ghc69_plain(CORES);
    let variants: Vec<(&str, GphConfig)> = vec![
        ("plain", plain.clone()),
        (
            "only big allocation area",
            plain.clone().with_big_alloc_area(),
        ),
        (
            "only improved GC sync",
            plain.clone().with_improved_gc_sync(),
        ),
        ("only work stealing", plain.clone().with_work_stealing()),
        (
            "only eager black-holing",
            plain.clone().with_eager_blackholing(),
        ),
    ];
    let mut g = c.benchmark_group("ablation_sumeuler");
    g.sample_size(10);
    for (label, cfg) in variants {
        let w = w.clone();
        g.bench_function(label, move |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let m = w.run_gph(cfg.clone().without_trace()).expect("gph");
                    assert_eq!(m.value, expect);
                    total += Duration::from_nanos(m.elapsed);
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group! {
    // Deterministic samples have zero variance, which crashes the
    // plotters backend — disable plot generation.
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
