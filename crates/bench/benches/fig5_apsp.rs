//! Criterion bench for Fig. 5: shortest paths on 8 cores — the
//! black-holing × spark-policy matrix plus the Eden ring.

use criterion::{criterion_group, criterion_main, Criterion};
use rph_core::prelude::*;
use rph_workloads::Apsp;
use std::time::Duration;

const N: usize = 128;
const CORES: usize = 8;

fn bench(c: &mut Criterion) {
    let w = Apsp::new(N);
    let expect = w.expected();
    let mut g = c.benchmark_group("fig5_apsp");
    g.sample_size(10);
    let variants = [
        ("GpH lazy BH, push", BlackHoling::Lazy, SparkPolicy::Push),
        ("GpH lazy BH, steal", BlackHoling::Lazy, SparkPolicy::Steal),
        ("GpH eager BH, push", BlackHoling::Eager, SparkPolicy::Push),
        (
            "GpH eager BH, steal",
            BlackHoling::Eager,
            SparkPolicy::Steal,
        ),
    ];
    for (label, bh, policy) in variants {
        let w = w.clone();
        g.bench_function(label, move |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let mut cfg = GphConfig::ghc69_plain(CORES)
                        .with_big_alloc_area()
                        .with_improved_gc_sync()
                        .without_trace();
                    cfg.black_holing = bh;
                    cfg.spark_policy = policy;
                    if policy == SparkPolicy::Steal {
                        cfg.spark_exec = SparkExec::SparkThread;
                    }
                    let m = w.run_gph(cfg).expect("gph");
                    assert_eq!(m.value, expect);
                    total += Duration::from_nanos(m.elapsed);
                }
                total
            })
        });
    }
    let w2 = w.clone();
    g.bench_function("Eden ring", move |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let m = w2
                    .run_eden(EdenConfig::new(CORES).without_trace())
                    .expect("eden");
                assert_eq!(m.value, expect);
                total += Duration::from_nanos(m.elapsed);
            }
            total
        })
    });
    g.finish();
}

criterion_group! {
    // Deterministic samples have zero variance, which crashes the
    // plotters backend — disable plot generation.
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
