//! Criterion bench for Fig. 1: the sumEuler optimisation ladder.
//!
//! The quantity of interest is the *virtual* runtime of the simulated
//! 8-core machine, so each bench feeds criterion the virtual
//! nanoseconds via `iter_custom` — criterion's report then reads
//! directly in the paper's units. Runs are deterministic, so variance
//! is ~0; criterion is used for its reporting and regression tracking.

use criterion::{criterion_group, criterion_main, Criterion};
use rph_bench::{five_versions, Version};
use rph_workloads::SumEuler;
use std::time::Duration;

const N: i64 = 4_000;
const CAPS: usize = 8;

fn bench(c: &mut Criterion) {
    let w = SumEuler::new(N);
    let expected = w.expected();
    let mut g = c.benchmark_group("fig1_sumeuler");
    g.sample_size(10);
    for version in five_versions(CAPS) {
        let label = version.label().to_string();
        g.bench_function(&label, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let elapsed = match &version {
                        Version::Gph(_, cfg) => {
                            let m = w.run_gph(cfg.clone().without_trace()).expect("gph");
                            assert_eq!(m.value, expected);
                            m.elapsed
                        }
                        Version::Eden(_, cfg) => {
                            let m = w.run_eden(cfg.clone().without_trace()).expect("eden");
                            assert_eq!(m.value, expected);
                            m.elapsed
                        }
                    };
                    total += Duration::from_nanos(elapsed);
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group! {
    // Deterministic samples have zero variance, which crashes the
    // plotters backend — disable plot generation.
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
