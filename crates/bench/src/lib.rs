//! # rph-bench — regenerating every table and figure of the paper
//!
//! One binary per table/figure (run with `--release`):
//!
//! | paper artifact | binary |
//! |---|---|
//! | Fig. 1 — sumEuler runtimes table | `fig1_sumeuler_table` |
//! | Fig. 2 — sumEuler runtime traces | `fig2_sumeuler_traces` |
//! | Fig. 3 left — sumEuler speedups 1–16 cores | `fig3_speedup_sumeuler` |
//! | Fig. 3 right — matmul speedups 1–16 cores | `fig3_speedup_matmul` |
//! | Fig. 4 — matmul traces incl. PE oversubscription | `fig4_matmul_traces` |
//! | Fig. 5 — shortest-paths speedups | `fig5_speedup_apsp` |
//! | §IV ablations — each optimisation in isolation | `ablation_ladder` |
//! | cost-model robustness | `ablation_costs` |
//! | native wall-clock speedups (real threads) | `fig3_native_speedup` |
//! | native wall-clock traces + overhead report | `trace_native` |
//! | §V oversubscription + cluster topology ablation | `oversub_sweep` |
//!
//! Every binary accepts `--quick` for a reduced problem size (used by
//! CI and the criterion benches) and writes machine-readable CSV next
//! to its textual output under `target/paper-figures/`.
//!
//! The criterion benches (`cargo bench -p rph-bench`) report the same
//! quantities through criterion's statistics machinery: since the
//! metric of interest is *virtual* time (the simulated multicore's
//! clock), each bench uses `iter_custom` to feed criterion the virtual
//! nanoseconds of the run — so criterion's output reads in the paper's
//! units directly. Runs are deterministic; criterion's variance
//! estimates show ~0.

pub mod granularity;
pub mod oracles;

use rph_core::prelude::*;
use rph_native::NativeConfig;
use rph_workloads::{registry, Measured, NativeMeasured, NativeWorkload, Scale};
use std::path::PathBuf;

/// The per-figure output directory (`target/paper-figures`).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/paper-figures");
    std::fs::create_dir_all(&dir).expect("create figure output dir");
    dir
}

/// Write an artifact file and tell the user.
pub fn write_artifact(name: &str, contents: &str) {
    let path = out_dir().join(name);
    std::fs::write(&path, contents).expect("write artifact");
    println!("[wrote {}]", path.display());
}

/// True when `--quick` was passed (reduced sizes).
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// True when `--eden` was passed (`trace_native` only: restrict to the
/// native Eden backend sections — the CI smoke step uses this).
pub fn eden_only() -> bool {
    std::env::args().any(|a| a == "--eden")
}

/// The registry [`Scale`] selected by the command line: `--quick`
/// picks the quick tier, otherwise the full paper tier.
pub fn bench_scale() -> Scale {
    if quick() {
        Scale::Quick
    } else {
        Scale::Full
    }
}

/// One measured point of a native worker sweep: every rep of one
/// workload at one worker count, each rep checksum-checked against the
/// plain-Rust oracle before it was kept.
pub struct SweepPoint {
    /// [`NativeWorkload::name`] of the swept workload.
    pub workload: String,
    /// [`NativeWorkload::default_params`] of the swept workload.
    pub params: String,
    /// Worker (or PE) count of this point.
    pub workers: usize,
    /// All reps, in run order (unsorted).
    pub samples: Vec<NativeMeasured>,
}

impl SweepPoint {
    /// The median-wall-time rep (upper-middle for even rep counts) —
    /// counters reported from this rep come from the same run as the
    /// reported time.
    pub fn median(&self) -> &NativeMeasured {
        assert!(!self.samples.is_empty());
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        order.sort_by_key(|&i| self.samples[i].wall);
        &self.samples[order[order.len() / 2]]
    }

    /// The fastest rep — the best-of statistic the wall-clock gates
    /// use (this shared host shows ~1.5× run-to-run noise, and best-of
    /// is the stable statistic).
    pub fn best(&self) -> &NativeMeasured {
        self.samples
            .iter()
            .min_by_key(|m| m.wall)
            .expect("at least one rep")
    }
}

/// Sweep one workload across `workers` on the config `make_cfg`
/// builds, `reps` checksum-checked runs per point. This is the one
/// rep/sweep loop every native harness shares; the per-binary policy
/// (median vs best-of, which counters to report, which gates to
/// enforce) stays in the binary.
pub fn sweep_workload(
    w: &dyn NativeWorkload,
    workers: &[usize],
    reps: usize,
    mut make_cfg: impl FnMut(usize) -> NativeConfig,
) -> Vec<SweepPoint> {
    workers
        .iter()
        .map(|&k| {
            let cfg = make_cfg(k);
            let ctx = format!("{k} workers, {:?} backend, {:?}", cfg.backend, cfg.mode);
            let samples = (0..reps)
                .map(|_| oracles::checked_run(w, &cfg, &ctx))
                .collect();
            SweepPoint {
                workload: w.name().to_string(),
                params: w.default_params(),
                workers: k,
                samples,
            }
        })
        .collect()
}

/// [`sweep_workload`] over the whole workload [`registry`] at `scale`,
/// flattened workload-major (every worker count of workload 0, then
/// workload 1, …). Replaces the hard-coded
/// `[(&dyn NativeWorkload, String); 4]` tables the bench binaries used
/// to carry — adding a workload to the registry now adds it to every
/// harness.
pub fn sweep_registry(
    scale: Scale,
    workers: &[usize],
    reps: usize,
    mut make_cfg: impl FnMut(usize) -> NativeConfig,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for w in registry(scale) {
        out.extend(sweep_workload(w.as_ref(), workers, reps, &mut make_cfg));
    }
    out
}

/// The paper's machines: the Intel 8-core (Figs. 1, 2, 4) and the AMD
/// 16-core (Figs. 3, 5).
pub const INTEL_CORES: usize = 8;
pub const AMD_CORES: usize = 16;

/// Core counts swept for the speedup figures.
pub fn sweep_cores() -> Vec<usize> {
    vec![1, 2, 4, 6, 8, 12, 16]
}

/// sumEuler problem size (Fig. 1/2/3: `[1..15000]`).
pub fn sum_euler_n() -> i64 {
    if quick() {
        2_000
    } else {
        15_000
    }
}

/// Matrix size for the Fig. 4 traces (paper: 1000×1000).
pub fn matmul_traces_n() -> usize {
    if quick() {
        240
    } else {
        960
    }
}

/// Matrix size for the Fig. 3 speedups (paper: 2000×2000; the default
/// here is reduced — pass nothing for 960, which preserves the shape).
pub fn matmul_speedup_n() -> usize {
    if quick() {
        240
    } else {
        960
    }
}

/// APSP graph size (Fig. 5: 400 nodes).
pub fn apsp_n() -> usize {
    if quick() {
        96
    } else {
        400
    }
}

/// Label + configuration for the four GpH ladder versions plus Eden —
/// the five "versions" of Figs. 1–4.
pub fn five_versions(caps: usize) -> Vec<Version> {
    let mut out: Vec<Version> = GphConfig::fig1_ladder(caps)
        .into_iter()
        .map(|(name, cfg)| Version::Gph(name.to_string(), cfg))
        .collect();
    out.push(Version::Eden(
        format!("Eden, {caps} PEs running under PVM"),
        EdenConfig::new(caps),
    ));
    out
}

/// A runnable configuration of either runtime.
pub enum Version {
    Gph(String, GphConfig),
    Eden(String, EdenConfig),
}

impl Version {
    pub fn label(&self) -> &str {
        match self {
            Version::Gph(l, _) | Version::Eden(l, _) => l,
        }
    }
}

/// Format virtual work units as seconds, like the paper's tables.
pub fn secs(units: rph_trace::Time) -> String {
    format!("{:.2} sec.", units as f64 / 1e9)
}

/// Format virtual work units as milliseconds.
pub fn millis(units: rph_trace::Time) -> String {
    format!("{:.1} ms", units as f64 / 1e6)
}

/// Panic with a clear message if a run returned the wrong value —
/// every figure regeneration double-checks results against the plain
/// Rust oracle.
pub fn check(m: &Measured, expected: i64, what: &str) {
    assert_eq!(m.value, expected, "{what}: wrong result — reproduction bug");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_five_and_ladder_ordered() {
        let v = five_versions(8);
        assert_eq!(v.len(), 5);
        assert!(v[0].label().contains("plain"));
        assert!(v[3].label().contains("work stealing"));
        assert!(v[4].label().contains("Eden"));
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(2_750_000_000), "2.75 sec.");
        assert_eq!(millis(1_500_000), "1.5 ms");
    }
}
