//! The scheduling ablations behind the `granularity_ablation` binary:
//! fixed-chunk dealing (the PR 1 executor) vs lazy range splitting,
//! the pool-reuse ablation for wave-structured APSP, and randomized
//! vs round-robin victim selection — selectable via [`Ablation`]
//! (`--ablation` on the binary).
//!
//! The paper's sumEuler experiments hinge on spark granularity:
//! chunk_size=1 drowns the fixed-task executor in per-task scheduling
//! (one deque element, one steal negotiation per totient), while
//! coarse chunks starve cores. Lazy splitting makes the *deque
//! element* a range that fissions only under observed thief demand, so
//! the fine decomposition keeps its load-balance without paying its
//! scheduling bill. Shared by `fig3_native_speedup` and the
//! `granularity_ablation` smoke binary.

use rph_core::prelude::*;
use rph_native::{Granularity, NativeConfig, StealPolicy};
use rph_workloads::{Apsp, NativeWorkload, SumEuler};
use std::time::Duration;

/// Which ablation table(s) to produce — the `--ablation` flag of the
/// `granularity_ablation` binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Fixed-chunk dealing vs lazy range splitting (sumEuler).
    Granularity,
    /// Persistent pool vs respawn-per-wave (APSP).
    PoolReuse,
    /// Randomized vs round-robin victim selection (sumEuler).
    StealPolicy,
    /// Every table.
    All,
}

impl Ablation {
    /// Parse a `--ablation` argument value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "granularity" => Some(Ablation::Granularity),
            "pool-reuse" => Some(Ablation::PoolReuse),
            "steal-policy" => Some(Ablation::StealPolicy),
            "all" => Some(Ablation::All),
            _ => None,
        }
    }
}

/// Repetitions per point; the minimum wall time is reported.
const REPS: usize = 3;

fn host_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

fn best_of(reps: usize, mut run: impl FnMut() -> Duration) -> Duration {
    (0..reps).map(|_| run()).min().expect("reps >= 1")
}

/// One ablation point through the shared sweep loop: `w` at the host's
/// worker count under `cfg`, best-of-[`REPS`] — returns the whole best
/// rep so callers can read its counters alongside its time.
fn best_point(w: &dyn NativeWorkload, cfg: &NativeConfig) -> rph_workloads::NativeMeasured {
    let point = crate::sweep_workload(w, &[cfg.workers], REPS, |_| cfg.clone());
    point
        .into_iter()
        .next()
        .expect("one worker count, one point")
        .samples
        .into_iter()
        .min_by_key(|m| m.wall)
        .expect("reps >= 1")
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// sumEuler at chunk_size ∈ {1, 10, paper-default}, fixed vs
/// lazy-split, work-pulling at the host's core count. Prints the
/// table; returns its CSV.
pub fn sum_euler_granularity(quick: bool) -> String {
    let n: i64 = if quick { 800 } else { 6_000 };
    let workers = host_workers();
    let default_chunk = (n / 150).max(1);
    println!("sumEuler [1..{n}] granularity ablation, {workers} workers, steal mode, {REPS} reps best-of");

    let mut table = TextTable::new(&[
        "chunk",
        "tasks",
        "fixed ms",
        "lazy ms",
        "fixed/lazy",
        "splits",
        "avg batch",
    ]);
    for chunk in [1, 10, default_chunk] {
        let w = SumEuler::new(n).with_chunk_size(chunk);
        let tasks = (n + chunk - 1) / chunk;

        let fixed_cfg = NativeConfig::steal(workers).with_granularity(Granularity::Fixed);
        let fixed = best_point(&w, &fixed_cfg).wall;

        let lazy_cfg = NativeConfig::steal(workers);
        let best = best_point(&w, &lazy_cfg);
        let (lazy, splits, avg_batch) = (best.wall, best.stats.splits, best.stats.mean_batch());

        table.row(&[
            chunk.to_string(),
            tasks.to_string(),
            format!("{:.2}", ms(fixed)),
            format!("{:.2}", ms(lazy)),
            format!("{:.2}", ms(fixed) / ms(lazy)),
            splits.to_string(),
            avg_batch.map_or_else(|| "-".into(), |b| format!("{b:.1}")),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    table.to_csv()
}

/// APSP pool-reuse ablation: one persistent pool across all pivot
/// waves vs a fresh thread pool per wave (the PR 1 shape). Prints the
/// table; returns its CSV.
pub fn apsp_pool_reuse(quick: bool) -> String {
    let n = if quick { 48 } else { 192 };
    let workers = host_workers();
    let w = Apsp::new(n);
    let expect = w.expected();
    let cfg = NativeConfig::steal(workers);
    println!(
        "apsp {n} nodes pool-reuse ablation ({n} waves), {workers} workers, {REPS} reps best-of"
    );

    let pooled = best_point(&w, &cfg).wall;
    let respawn = best_of(REPS, || {
        // `run_native_respawn` is not part of the `NativeWorkload`
        // surface `checked_run` covers; check its value directly.
        let m = w.run_native_respawn(&cfg).expect("respawn apsp run failed");
        crate::oracles::assert_value(w.name(), "respawn", m.value, expect);
        m.wall
    });

    let mut table = TextTable::new(&["variant", "ms", "vs pooled"]);
    table.row(&[
        "persistent pool".into(),
        format!("{:.2}", ms(pooled)),
        "1.00".into(),
    ]);
    table.row(&[
        "respawn per wave".into(),
        format!("{:.2}", ms(respawn)),
        format!("{:.2}", ms(respawn) / ms(pooled)),
    ]);
    let rendered = table.render();
    println!("{rendered}");
    table.to_csv()
}

/// Victim-selection ablation: randomized sweep permutation (the
/// default since PR 4) vs fixed round-robin order, on fine-grained
/// sumEuler where steal pressure is highest. Prints the table; returns
/// its CSV.
pub fn steal_policy(quick: bool) -> String {
    let n: i64 = if quick { 800 } else { 6_000 };
    let workers = host_workers();
    let w = SumEuler::new(n).with_chunk_size(1);
    println!(
        "sumEuler [1..{n}] steal-policy ablation (chunk 1), {workers} workers, {REPS} reps best-of"
    );

    let mut table = TextTable::new(&["policy", "ms", "steals", "vs randomized"]);
    let mut base_ms = None;
    for (label, policy) in [
        ("randomized", StealPolicy::Randomized),
        ("round-robin", StealPolicy::RoundRobin),
    ] {
        let cfg = NativeConfig::steal(workers).with_steal_policy(policy);
        let best = best_point(&w, &cfg);
        let (wall, steals) = (best.wall, best.stats.tasks_stolen);
        let rel = match base_ms {
            None => {
                base_ms = Some(ms(wall));
                "1.00".into()
            }
            Some(b) => format!("{:.2}", ms(wall) / b),
        };
        table.row(&[
            label.into(),
            format!("{:.2}", ms(wall)),
            steals.to_string(),
            rel,
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    table.to_csv()
}

/// The selected ablation table(s); returns concatenated CSV.
pub fn run(quick: bool, which: Ablation) -> String {
    let mut csv = String::new();
    if matches!(which, Ablation::Granularity | Ablation::All) {
        csv.push_str(&sum_euler_granularity(quick));
    }
    if matches!(which, Ablation::PoolReuse | Ablation::All) {
        csv.push_str(&apsp_pool_reuse(quick));
    }
    if matches!(which, Ablation::StealPolicy | Ablation::All) {
        csv.push_str(&steal_policy(quick));
    }
    csv
}
