//! Shared checksum-oracle helpers for the native bench binaries.
//!
//! Every harness that times a native run must first prove the run
//! computed the right answer — a fast wrong kernel is a reproduction
//! bug, not a result. Three binaries grew three near-identical inline
//! `assert_eq!(m.value, expected, …)` blocks for this; they now share
//! these two helpers so the failure message (and the policy that
//! *every* timed run is checked, not just the first) lives in one
//! place.

use rph_native::NativeConfig;
use rph_workloads::{NativeMeasured, NativeWorkload};

/// Assert a run's checksum against its plain-Rust oracle value.
///
/// `ctx` names the configuration being timed (worker count, backend,
/// chunk size, …) so a divergence report says which point failed.
pub fn assert_value(workload: &str, ctx: &str, got: i64, want: i64) {
    assert_eq!(
        got, want,
        "{workload} ({ctx}): wrong checksum — reproduction bug"
    );
}

/// Run `w` once on `cfg` and assert its checksum against the oracle
/// before returning the measurement — the standard shape of a timed
/// native bench rep.
pub fn checked_run(w: &dyn NativeWorkload, cfg: &NativeConfig, ctx: &str) -> NativeMeasured {
    let m = w.run_on(cfg).expect("native run failed");
    assert_value(w.name(), ctx, m.value, w.expected_value());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rph_workloads::SumEuler;

    #[test]
    fn checked_run_passes_on_correct_workload() {
        let w = SumEuler::new(50);
        let cfg = NativeConfig::steal(1);
        let m = checked_run(&w, &cfg, "test");
        assert_eq!(m.value, w.expected_value());
    }

    #[test]
    #[should_panic(expected = "wrong checksum")]
    fn assert_value_panics_on_divergence() {
        assert_value("sum_euler", "unit test", 1, 2);
    }
}
