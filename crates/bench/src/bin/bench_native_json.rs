//! Machine-readable native wall-clock baseline: the registry's five
//! workloads on real threads at 1/2/4/8 workers — on **both** native
//! backends (Chase–Lev work stealing and Eden-style message passing) —
//! plus a single-threaded kernel section (tiled vs untiled mat-mul,
//! blocked vs plain Floyd–Warshall) and a **SIMD section** (each
//! dispatched kernel vs its scalar oracle on the same algorithm) —
//! emitted as `BENCH_native.json` under `target/paper-figures/` so
//! perf regressions diff as JSON instead of eyeballed tables.
//!
//! ```text
//! cargo run -p rph-bench --release --bin bench_native_json [--quick]
//! ```
//!
//! Schema (`rph-bench-native/v5`): see `EXPERIMENTS.md` §"Native
//! wall-clock baseline". v5 sources the workload sweep from
//! `rph_workloads::registry()` (no hard-coded workload table — the
//! `workloads` / `native_eden` arrays gained `episim` rows, and the
//! four legacy workload names are asserted to still be present before
//! the artifact is written) and adds a dedicated `episim` section: the
//! data-partitioned iterated workload measured on the flat steal pool,
//! the sharded steal pool (where the hierarchy counters go live) and
//! the native Eden exchange skeleton, with its S/E/I/R tally asserted
//! against the oracle population. v4 added `steal_local` /
//! `steal_remote` / `remote_words` to the steal-backend workload rows
//! (the sharded pool's hierarchy counters — all-local/zero on this
//! flat sweep) and an `oversub` section sweeping the native Eden
//! backend at 1×–16× the host's core count with the §V
//! oversubscription gate (the 4× point must stay within 1.05× of the
//! 1× wall clock, best-of-reps) asserted before the artifact is
//! written. v3 added top-level `cpu_features` (runtime
//! feature detection) and `kernel_variant` (the tier SIMD dispatch
//! resolved: `scalar` / `avx2` / `avx512`), a `simd` section with
//! per-kernel scalar-vs-vector ratios, and min/median/max kernel
//! timings where v2 reported a bare median. Every workload point
//! records the median wall time, its speedup over the same workload's
//! one-worker median on the same backend, and that backend's counters
//! of the median run: steal points report steals/parks/probes,
//! `native_eden` points report message traffic (sends, words, channel
//! blocks) and the ratio of the steal backend's median at the same
//! worker count (`vs_steal` > 1 means message passing won). Every
//! checksum is asserted against the plain-Rust oracle before anything
//! is written. The kernel and SIMD sections keep `n = 256` even under
//! `--quick` (fewer reps instead) — they are the acceptance gates for
//! the tiling and vectorisation work and are meaningless at toy sizes.
//!
//! **SIMD gates.** The dispatched mat-mul must beat the scalar tiled
//! kernel ≥ 2× and the dispatched blocked Floyd–Warshall must beat
//! its scalar twin ≥ 1.5× (best-of-reps ratio — this shared host
//! shows ~1.5× run-to-run noise, and best-of is the stable statistic).
//! The gates are *enforced* (non-zero exit) only when dispatch
//! resolved the `avx512` tier: `target-cpu=native` lets LLVM
//! auto-vectorise the scalar baselines, so the 256-bit tier alone
//! cannot meet them on AVX2-only hosts (DESIGN.md §3.4.5). On such
//! hosts a miss is reported as a warning and `gates_enforced` is
//! `false` in the artifact.

use rph_bench::{bench_scale, oracles, quick, sweep_registry, write_artifact, SweepPoint};
use rph_native::{BackendKind, NativeConfig, NativeStats};
use rph_workloads::registry::episim as episim_workload;
use rph_workloads::{kernels, simd, Apsp, NQueens, NativeWorkload, Scale};
use std::time::Instant;

/// Worker counts swept (the host caps real parallelism, not the sweep).
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Kernel-section problem size: the tiling and SIMD acceptance gates
/// are defined at `n ≥ 256`, so `--quick` keeps the size and cuts reps.
const KERNEL_N: usize = 256;

/// Minimum single-threaded advantage the tiled mat-mul kernel must
/// show over the naïve one.
const MATMUL_TARGET: f64 = 1.5;

/// SIMD gates: dispatched kernel vs the scalar kernel on the *same*
/// tiling/blocking, at [`KERNEL_N`]. Enforced only on the avx512 tier
/// (see the module doc).
const SIMD_MATMUL_TARGET: f64 = 2.0;
const SIMD_FW_TARGET: f64 = 1.5;

fn reps() -> usize {
    if quick() {
        3
    } else {
        5
    }
}

/// Median of `k` timed runs: sorts the samples and takes the middle
/// one (upper-middle for even `k`), returning the paired payload of
/// the median sample too — so reported executor counters come from
/// the same run as the reported time.
fn median_run<T>(mut samples: Vec<(u128, T)>) -> (u128, T) {
    assert!(!samples.is_empty());
    samples.sort_by_key(|(ns, _)| *ns);
    let mid = samples.len() / 2;
    samples.swap_remove(mid)
}

struct Point {
    workload: String,
    params: String,
    workers: usize,
    median_ns: u128,
    speedup: f64,
    stats: NativeStats,
}

/// Reduce the shared sweep's raw reps to this binary's statistic:
/// median wall time per point (counters from the same rep) and the
/// speedup over the same workload's one-worker median.
fn to_points(sweep: Vec<SweepPoint>) -> Vec<Point> {
    let mut points: Vec<Point> = Vec::new();
    let mut base_ns = 0u128;
    for sp in sweep {
        let (median_ns, stats) = {
            let m = sp.median();
            (m.wall.as_nanos(), m.stats.clone())
        };
        if sp.workers == WORKERS[0] {
            base_ns = median_ns;
        }
        points.push(Point {
            workload: sp.workload,
            params: sp.params,
            workers: sp.workers,
            median_ns,
            speedup: base_ns as f64 / median_ns as f64,
            stats,
        });
    }
    points
}

/// One point of the Eden oversubscription sweep (`oversub` section):
/// `pes = host_cores × mult` PEs on the message-passing backend.
struct OversubPoint {
    mult: usize,
    pes: usize,
    median_ns: u128,
    /// Best-of-reps — the gate statistic (same policy as the SIMD
    /// gates: this shared host shows ~1.5× run-to-run noise, and
    /// best-of is the stable statistic).
    min_ns: u128,
    stats: NativeStats,
}

/// Maximum slowdown the 4× oversubscribed point may show over 1×.
const OVERSUB_SLOP: f64 = 1.05;

/// Oversubscription board size (NQueens — the master–worker skeleton,
/// whose demand-driven feeding is exactly what oversubscription
/// stresses). Like the kernel sections, the gate keeps its size under
/// `--quick`: a 5% wall-clock gate needs runs in the tens-of-ms
/// range, not the sub-ms toy sizes where thread-spawn jitter alone
/// exceeds the slop.
const OVERSUB_N: usize = 11;

/// Sweep the native Eden backend at 1×–16× the host's core count and
/// enforce the oversubscription gate: blocked PEs are cheap, so 4× PEs
/// must complete within [`OVERSUB_SLOP`] of the 1× wall clock. Every
/// run is checksum-verified; completing the sweep at all is the
/// zero-deadlock assertion.
fn oversub_section(w: &dyn NativeWorkload, host_cores: usize) -> Vec<OversubPoint> {
    const MULTS: [usize; 5] = [1, 2, 4, 8, 16];
    // Reps are interleaved round-robin across the multiples (instead
    // of timing each point back-to-back) so a slow phase on a shared
    // host degrades every point equally rather than biasing one side
    // of the gate ratio; min-of-5 then discards the slow rounds.
    let oversub_reps = reps().max(5);
    let mut samples: Vec<Vec<(u128, NativeStats)>> = vec![Vec::new(); MULTS.len()];
    for _ in 0..oversub_reps {
        for (i, mult) in MULTS.into_iter().enumerate() {
            let pes = host_cores * mult;
            let cfg = NativeConfig::new(pes).with_backend(BackendKind::Eden);
            let ctx = format!("oversub {pes} PEs ({mult}x)");
            let m = oracles::checked_run(w, &cfg, &ctx);
            samples[i].push((m.wall.as_nanos(), m.stats));
        }
    }
    let mut points: Vec<OversubPoint> = Vec::new();
    for (i, mult) in MULTS.into_iter().enumerate() {
        let s = std::mem::take(&mut samples[i]);
        let min_ns = s.iter().map(|(ns, _)| *ns).min().unwrap();
        let (median_ns, stats) = median_run(s);
        points.push(OversubPoint {
            mult,
            pes: host_cores * mult,
            median_ns,
            min_ns,
            stats,
        });
    }
    let ns_at = |mult: usize| {
        points
            .iter()
            .find(|p| p.mult == mult)
            .expect("sweep includes this multiple")
            .min_ns as f64
    };
    let ratio = ns_at(4) / ns_at(1);
    assert!(
        ratio <= OVERSUB_SLOP,
        "oversubscription gate: 4x PEs took {ratio:.3}x the 1x wall clock \
         (limit {OVERSUB_SLOP}) — blocked PEs must stay cheap"
    );
    points
}

/// One measured configuration of the episim section.
struct EpisimPoint {
    backend: &'static str,
    topology: String,
    workers: usize,
    median_ns: u128,
    stats: NativeStats,
}

/// The v5 `episim` section: checksum, oracle S/E/I/R tally, and the
/// three configurations worth recording for the data-partitioned
/// iterated workload.
struct EpisimSection {
    params: String,
    checksum: i64,
    tally: [u64; 4],
    points: Vec<EpisimPoint>,
}

/// Number of shards for the sharded-steal episim point (two NUMA-ish
/// nodes — the smallest topology where the hierarchy counters are
/// live).
const EPISIM_SHARDS: usize = 2;

/// Measure episim in the three configurations the v5 schema records:
/// flat steal pool, sharded steal pool (`steal_local` /
/// `steal_remote` / `remote_words` go live), and the native Eden
/// exchange skeleton — whose run also returns the S/E/I/R tally,
/// asserted against the oracle population every rep.
fn episim_section(scale: Scale) -> EpisimSection {
    let w = episim_workload(scale);
    let expected = NativeWorkload::expected_value(&w);
    let tally = w.expected_tally();
    let workers = *WORKERS.last().expect("sweep is non-empty");
    let mut points = Vec::new();

    let steal_cfgs = [
        ("flat".to_string(), NativeConfig::new(workers)),
        (
            format!("{EPISIM_SHARDS}x{}", workers / EPISIM_SHARDS),
            NativeConfig::new(workers).with_topology(EPISIM_SHARDS, workers / EPISIM_SHARDS),
        ),
    ];
    for (topology, cfg) in steal_cfgs {
        let ctx = format!("episim steal, topology {topology}");
        let samples: Vec<(u128, NativeStats)> = (0..reps())
            .map(|_| {
                let m = oracles::checked_run(&w, &cfg, &ctx);
                (m.wall.as_nanos(), m.stats)
            })
            .collect();
        let (median_ns, stats) = median_run(samples);
        points.push(EpisimPoint {
            backend: "steal",
            topology,
            workers,
            median_ns,
            stats,
        });
    }

    let cfg = NativeConfig::new(workers).with_backend(BackendKind::Eden);
    let samples: Vec<(u128, NativeStats)> = (0..reps())
        .map(|_| {
            let (m, t) = w.run_eden_native(&cfg).expect("episim eden run failed");
            oracles::assert_value("episim", "eden exchange", m.value, expected);
            assert_eq!(
                t, tally,
                "episim: eden tally diverged from the oracle population"
            );
            (m.wall.as_nanos(), m.stats)
        })
        .collect();
    let (median_ns, stats) = median_run(samples);
    points.push(EpisimPoint {
        backend: "eden",
        topology: "flat".to_string(),
        workers,
        median_ns,
        stats,
    });

    EpisimSection {
        params: w.default_params(),
        checksum: expected,
        tally,
        points,
    }
}

/// min/median/max of one kernel's timed reps — v3 reports all three
/// (min is the gate statistic, the spread is the noise floor).
#[derive(Clone, Copy)]
struct KernelStats {
    min_ns: u128,
    median_ns: u128,
    max_ns: u128,
}

struct KernelPoint {
    kernel: &'static str,
    n: usize,
    baseline: KernelStats,
    optimised: KernelStats,
    exact_match: bool,
    target: Option<f64>,
}

impl KernelPoint {
    /// Best-of-reps ratio — the gate statistic (see the module doc).
    fn speedup(&self) -> f64 {
        self.baseline.min_ns as f64 / self.optimised.min_ns as f64
    }
}

/// Time `f` `reps()` times; return min/median/max nanoseconds and the
/// median run's result (identical across reps — these kernels are
/// deterministic).
fn time_kernel<T>(mut f: impl FnMut() -> T) -> (KernelStats, T) {
    let mut samples: Vec<(u128, T)> = (0..reps())
        .map(|_| {
            let t0 = Instant::now();
            let out = f();
            (t0.elapsed().as_nanos(), out)
        })
        .collect();
    samples.sort_by_key(|(ns, _)| *ns);
    let min_ns = samples[0].0;
    let max_ns = samples[samples.len() - 1].0;
    let mid = samples.len() / 2;
    let (median_ns, out) = samples.swap_remove(mid);
    (
        KernelStats {
            min_ns,
            median_ns,
            max_ns,
        },
        out,
    )
}

/// Algorithmic-optimisation section: tiled vs naïve mat-mul, blocked
/// vs plain Floyd–Warshall. Both "optimised" sides go through SIMD
/// dispatch, so these ratios compound blocking × vectorisation.
fn kernel_section() -> Vec<KernelPoint> {
    let n = KERNEL_N;
    let mut out = Vec::new();

    // Tiled vs naïve mat-mul, single-threaded, small-integer inputs
    // (exactly representable, so the tiled result must be bit-equal).
    let a: Vec<f64> = (0..n * n).map(|i| ((i * 7) % 10) as f64).collect();
    let b: Vec<f64> = (0..n * n).map(|i| ((i * 13) % 10) as f64).collect();
    let (naive, want) = time_kernel(|| kernels::matmul_oracle(&a, &b, n));
    let (tiled, got) = time_kernel(|| {
        let mut c = vec![0.0; n * n];
        kernels::matmul_tiled_into(&mut c, &a, &b, n);
        c
    });
    out.push(KernelPoint {
        kernel: "matmul_tiled_vs_naive",
        n,
        baseline: naive,
        optimised: tiled,
        exact_match: got == want,
        target: Some(MATMUL_TARGET),
    });

    // Blocked vs plain Floyd–Warshall on the APSP workload's own graph.
    let d0 = Apsp::new(n).input_flat();
    let (plain, want) = time_kernel(|| {
        let mut d = d0.clone();
        kernels::floyd_warshall(&mut d, n);
        d
    });
    let (blocked, got) = time_kernel(|| {
        let mut d = d0.clone();
        kernels::floyd_warshall_blocked(&mut d, n);
        d
    });
    out.push(KernelPoint {
        kernel: "floyd_warshall_blocked_vs_plain",
        n,
        baseline: plain,
        optimised: blocked,
        exact_match: got == want,
        target: None,
    });

    out
}

/// SIMD section: the dispatched kernel vs the scalar kernel on the
/// *same* algorithm — the ratio isolates vectorisation (plus, for the
/// totient row, the sieve's algorithmic win over the gcd oracle).
fn simd_section() -> Vec<KernelPoint> {
    let n = KERNEL_N;
    let mut out = Vec::new();

    // Dispatched vs scalar tiled mat-mul. Small-integer inputs keep
    // every product and partial sum exactly representable, so even the
    // FMA path must be bit-equal here; the documented ulp tolerance
    // only applies to arbitrary floats (DESIGN.md §3.4.5).
    let a: Vec<f64> = (0..n * n).map(|i| ((i * 7) % 10) as f64).collect();
    let b: Vec<f64> = (0..n * n).map(|i| ((i * 13) % 10) as f64).collect();
    let (scalar, want) = time_kernel(|| {
        let mut c = vec![0.0; n * n];
        kernels::matmul_tiled_into_scalar(&mut c, &a, &b, n);
        c
    });
    let (vector, got) = time_kernel(|| {
        let mut c = vec![0.0; n * n];
        kernels::matmul_tiled_into(&mut c, &a, &b, n);
        c
    });
    out.push(KernelPoint {
        kernel: "matmul_tiled",
        n,
        baseline: scalar,
        optimised: vector,
        exact_match: got == want,
        target: Some(SIMD_MATMUL_TARGET),
    });

    // Dispatched vs scalar blocked Floyd–Warshall: min-plus is
    // bit-exact at any dispatch, so `exact_match` must hold.
    let d0 = Apsp::new(n).input_flat();
    let (scalar, want) = time_kernel(|| {
        let mut d = d0.clone();
        kernels::floyd_warshall_blocked_scalar(&mut d, n);
        d
    });
    let (vector, got) = time_kernel(|| {
        let mut d = d0.clone();
        kernels::floyd_warshall_blocked(&mut d, n);
        d
    });
    out.push(KernelPoint {
        kernel: "floyd_warshall_blocked",
        n,
        baseline: scalar,
        optimised: vector,
        exact_match: got == want,
        target: Some(SIMD_FW_TARGET),
    });

    // Segmented totient sieve vs the gcd-counting oracle. The oracle
    // is Θ(hi²) gcd steps, so this row uses a reduced range; the huge
    // ratio is algorithmic (sieve vs per-number gcd), not
    // vectorisation, and carries no gate.
    let hi: i64 = if quick() { 2_000 } else { 10_000 };
    let (gcd, want) = time_kernel(|| (1..=hi).map(|k| kernels::phi_counted(k).0).sum::<i64>());
    let (sieve, got) = time_kernel(|| kernels::sum_phi_range_sieve(1, hi));
    out.push(KernelPoint {
        kernel: "sum_phi_range_sieve",
        n: hi as usize,
        baseline: gcd,
        optimised: sieve,
        exact_match: got == want,
        target: None,
    });

    out
}

/// Minimal JSON string escaping (the strings here are ASCII labels,
/// but correctness is cheap).
fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The steal backend's median at the same (workload, workers) point —
/// the denominator-side of the `vs_steal` ratio.
fn steal_median(steal: &[Point], workload: &str, workers: usize) -> u128 {
    steal
        .iter()
        .find(|p| p.workload == workload && p.workers == workers)
        .map(|p| p.median_ns)
        .expect("steal sweep covers every (workload, workers) point")
}

/// One kernel row: shared between the `kernels` and `simd.kernels`
/// arrays (the latter labels its sides scalar/simd instead of
/// baseline/optimised).
fn kernel_row(k: &KernelPoint, side_names: (&str, &str), last: bool) -> String {
    let (base, opt) = side_names;
    let target = match k.target {
        Some(t) => format!(", \"target\": {t}, \"meets_target\": {}", k.speedup() >= t),
        None => String::new(),
    };
    format!(
        "    {{\"kernel\": \"{}\", \"n\": {}, \
         \"{base}_min_ns\": {}, \"{base}_median_ns\": {}, \"{base}_max_ns\": {}, \
         \"{opt}_min_ns\": {}, \"{opt}_median_ns\": {}, \"{opt}_max_ns\": {}, \
         \"speedup\": {:.4}, \"exact_match\": {}{}}}{}\n",
        esc(k.kernel),
        k.n,
        k.baseline.min_ns,
        k.baseline.median_ns,
        k.baseline.max_ns,
        k.optimised.min_ns,
        k.optimised.median_ns,
        k.optimised.max_ns,
        k.speedup(),
        k.exact_match,
        target,
        if last { "" } else { "," }
    )
}

#[allow(clippy::too_many_arguments)] // one positional arg per schema section
fn render_json(
    host_cores: usize,
    steal: &[Point],
    eden: &[Point],
    oversub: &[OversubPoint],
    epi: &EpisimSection,
    kernels: &[KernelPoint],
    simd_points: &[KernelPoint],
    gates_enforced: bool,
) -> String {
    let features = simd::cpu_features()
        .iter()
        .map(|f| format!("\"{}\"", esc(f)))
        .collect::<Vec<_>>()
        .join(", ");
    let variant = simd::active().name();

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"rph-bench-native/v5\",\n");
    j.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    j.push_str(&format!("  \"cpu_features\": [{features}],\n"));
    j.push_str(&format!("  \"kernel_variant\": \"{variant}\",\n"));
    j.push_str(&format!("  \"reps\": {},\n", reps()));
    j.push_str(&format!("  \"quick\": {},\n", quick()));
    j.push_str("  \"workloads\": [\n");
    for (idx, p) in steal.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"workload\": \"{}\", \"params\": \"{}\", \"workers\": {}, \
             \"median_ns\": {}, \"speedup\": {:.4}, \"steals\": {}, \"steal_local\": {}, \
             \"steal_remote\": {}, \"remote_words\": {}, \"parks\": {}, \
             \"steal_probes\": {}, \"tasks_run\": {}, \"value_ok\": true}}{}\n",
            esc(&p.workload),
            esc(&p.params),
            p.workers,
            p.median_ns,
            p.speedup,
            p.stats.steal_ops,
            p.stats.steal_local,
            p.stats.steal_remote,
            p.stats.remote_words,
            p.stats.parks,
            p.stats.steal_probes,
            p.stats.tasks_run,
            if idx + 1 == steal.len() { "" } else { "," }
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"native_eden\": [\n");
    for (idx, p) in eden.iter().enumerate() {
        let vs_steal = steal_median(steal, &p.workload, p.workers) as f64 / p.median_ns as f64;
        j.push_str(&format!(
            "    {{\"workload\": \"{}\", \"params\": \"{}\", \"workers\": {}, \
             \"median_ns\": {}, \"speedup\": {:.4}, \"vs_steal\": {:.4}, \
             \"msgs_sent\": {}, \"msgs_recv\": {}, \"words_sent\": {}, \
             \"send_blocks\": {}, \"recv_blocks\": {}, \"tasks_run\": {}, \
             \"value_ok\": true}}{}\n",
            esc(&p.workload),
            esc(&p.params),
            p.workers,
            p.median_ns,
            p.speedup,
            vs_steal,
            p.stats.msgs_sent,
            p.stats.msgs_recv,
            p.stats.words_sent,
            p.stats.send_blocks,
            p.stats.recv_blocks,
            p.stats.tasks_run,
            if idx + 1 == eden.len() { "" } else { "," }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"oversub\": {{\n    \"gate_slop\": {OVERSUB_SLOP}, \"gate_ok\": true, \"points\": [\n"
    ));
    for (idx, p) in oversub.iter().enumerate() {
        let vs_1x = p.median_ns as f64 / oversub[0].median_ns as f64;
        j.push_str(&format!(
            "      {{\"pes\": {}, \"mult\": {}, \"median_ns\": {}, \"min_ns\": {}, \
             \"vs_1x\": {:.4}, \
             \"msgs_sent\": {}, \"send_blocks\": {}, \"recv_blocks\": {}}}{}\n",
            p.pes,
            p.mult,
            p.median_ns,
            p.min_ns,
            vs_1x,
            p.stats.msgs_sent,
            p.stats.send_blocks,
            p.stats.recv_blocks,
            if idx + 1 == oversub.len() { "" } else { "," }
        ));
    }
    j.push_str("    ]\n  },\n");
    j.push_str("  \"episim\": {\n");
    j.push_str(&format!(
        "    \"params\": \"{}\", \"checksum\": {}, \"value_ok\": true,\n",
        esc(&epi.params),
        epi.checksum
    ));
    j.push_str(&format!(
        "    \"tally\": {{\"s\": {}, \"e\": {}, \"i\": {}, \"r\": {}}},\n",
        epi.tally[0], epi.tally[1], epi.tally[2], epi.tally[3]
    ));
    j.push_str("    \"points\": [\n");
    for (idx, p) in epi.points.iter().enumerate() {
        j.push_str(&format!(
            "      {{\"backend\": \"{}\", \"topology\": \"{}\", \"workers\": {}, \
             \"median_ns\": {}, \"steal_local\": {}, \"steal_remote\": {}, \
             \"remote_words\": {}, \"msgs_sent\": {}, \"words_sent\": {}, \
             \"tasks_run\": {}}}{}\n",
            p.backend,
            esc(&p.topology),
            p.workers,
            p.median_ns,
            p.stats.steal_local,
            p.stats.steal_remote,
            p.stats.remote_words,
            p.stats.msgs_sent,
            p.stats.words_sent,
            p.stats.tasks_run,
            if idx + 1 == epi.points.len() { "" } else { "," }
        ));
    }
    j.push_str("    ]\n  },\n");
    j.push_str("  \"kernels\": [\n");
    for (idx, k) in kernels.iter().enumerate() {
        j.push_str(&kernel_row(
            k,
            ("baseline", "optimised"),
            idx + 1 == kernels.len(),
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"simd\": {\n");
    j.push_str(&format!("    \"kernel_variant\": \"{variant}\",\n"));
    j.push_str(&format!("    \"cpu_features\": [{features}],\n"));
    j.push_str(&format!("    \"gates_enforced\": {gates_enforced},\n"));
    j.push_str("    \"kernels\": [\n");
    for (idx, k) in simd_points.iter().enumerate() {
        j.push_str("    ");
        j.push_str(&kernel_row(
            k,
            ("scalar", "simd"),
            idx + 1 == simd_points.len(),
        ));
    }
    j.push_str("    ]\n");
    j.push_str("  }\n}\n");
    j
}

/// Print one kernel comparison line and enforce its oracle + gate.
/// Gate misses panic only when `enforce` is set (avx512 tier); oracle
/// divergence always panics.
fn report_kernel(k: &KernelPoint, enforce: bool) {
    assert!(
        k.exact_match,
        "{}: optimised kernel diverged from its oracle",
        k.kernel
    );
    let verdict = match k.target {
        Some(t) if k.speedup() >= t => format!(" (target {t}x: PASS)"),
        Some(t) if enforce => format!(" (target {t}x: MISS)"),
        Some(t) => format!(" (target {t}x: miss — warn only, gates need the avx512 tier)"),
        None => String::new(),
    };
    println!(
        "{:32} n={} baseline={:.2}/{:.2}/{:.2}ms optimised={:.2}/{:.2}/{:.2}ms \
         speedup={:.2}x exact_match={}{}",
        k.kernel,
        k.n,
        k.baseline.min_ns as f64 / 1e6,
        k.baseline.median_ns as f64 / 1e6,
        k.baseline.max_ns as f64 / 1e6,
        k.optimised.min_ns as f64 / 1e6,
        k.optimised.median_ns as f64 / 1e6,
        k.optimised.max_ns as f64 / 1e6,
        k.speedup(),
        k.exact_match,
        verdict
    );
    if enforce {
        if let Some(t) = k.target {
            assert!(
                k.speedup() >= t,
                "{}: {:.2}x misses the {t}x gate on the avx512 tier",
                k.kernel,
                k.speedup()
            );
        }
    }
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let variant = simd::active();
    println!(
        "Native wall-clock baseline ({host_cores} core{}), median of {} reps\n\
         cpu features: [{}]  kernel variant: {}\n",
        if host_cores == 1 { "" } else { "s" },
        reps(),
        simd::cpu_features().join(", "),
        variant.name()
    );
    if host_cores < 4 {
        println!(
            "note: fewer than 4 cores — workload speedup columns will read ~1.0\n\
             (the kernel and simd sections are single-threaded and unaffected)\n"
        );
    }

    // The workload list comes from the registry — the bench carries no
    // table of its own, so a new registry entry shows up here (and in
    // the JSON) without touching this binary.
    let scale = bench_scale();
    let steal_points = to_points(sweep_registry(scale, &WORKERS, reps(), |k| {
        NativeConfig::new(k).with_backend(BackendKind::Steal)
    }));
    let eden_points = to_points(sweep_registry(scale, &WORKERS, reps(), |k| {
        NativeConfig::new(k).with_backend(BackendKind::Eden)
    }));

    for p in &steal_points {
        println!(
            "{:10} {:>18} workers={} median={:.2}ms speedup={:.2} steals={} parks={}",
            p.workload,
            p.params,
            p.workers,
            p.median_ns as f64 / 1e6,
            p.speedup,
            p.stats.steal_ops,
            p.stats.parks
        );
    }
    println!();
    for p in &eden_points {
        println!(
            "{:10} {:>18} workers={} [eden] median={:.2}ms speedup={:.2} vs_steal={:.2} \
             msgs={} words={} blocks={}/{}",
            p.workload,
            p.params,
            p.workers,
            p.median_ns as f64 / 1e6,
            p.speedup,
            steal_median(&steal_points, &p.workload, p.workers) as f64 / p.median_ns as f64,
            p.stats.msgs_sent,
            p.stats.words_sent,
            p.stats.send_blocks,
            p.stats.recv_blocks
        );
    }

    println!();
    let nq_oversub = NQueens::new(OVERSUB_N).with_spawn_depth(3);
    let oversub_points = oversub_section(&nq_oversub, host_cores);
    for p in &oversub_points {
        println!(
            "{} oversub pes={} ({}x) [eden] median={:.2}ms vs_1x={:.2} \
             msgs={} blocks={}/{}",
            nq_oversub.name(),
            p.pes,
            p.mult,
            p.median_ns as f64 / 1e6,
            p.median_ns as f64 / oversub_points[0].median_ns as f64,
            p.stats.msgs_sent,
            p.stats.send_blocks,
            p.stats.recv_blocks
        );
    }

    println!();
    let epi = episim_section(scale);
    println!(
        "episim {} checksum={} tally s/e/i/r = {}/{}/{}/{}",
        epi.params, epi.checksum, epi.tally[0], epi.tally[1], epi.tally[2], epi.tally[3]
    );
    for p in &epi.points {
        println!(
            "episim {:5} topology={:4} workers={} median={:.2}ms \
             steal r/l={}/{} remote_words={} msgs={} words={}",
            p.backend,
            p.topology,
            p.workers,
            p.median_ns as f64 / 1e6,
            p.stats.steal_remote,
            p.stats.steal_local,
            p.stats.remote_words,
            p.stats.msgs_sent,
            p.stats.words_sent
        );
    }

    // The SIMD gates are meaningful only when dispatch resolved the
    // 512-bit tier (module doc) — otherwise report, don't fail.
    let gates_enforced = variant == simd::KernelVariant::Avx512;

    println!();
    let kpoints = kernel_section();
    for k in &kpoints {
        report_kernel(k, false);
    }

    println!();
    let spoints = simd_section();
    for k in &spoints {
        report_kernel(k, gates_enforced);
    }

    println!();
    let json = render_json(
        host_cores,
        &steal_points,
        &eden_points,
        &oversub_points,
        &epi,
        &kpoints,
        &spoints,
        gates_enforced,
    );
    // Registry-sourced sweeps must never silently drop the original
    // four workloads (consumers diff these rows release-to-release),
    // and the fifth must actually have joined them.
    for name in ["sum_euler", "matmul", "apsp", "nqueens", "episim"] {
        assert!(
            json.contains(&format!("\"workload\": \"{name}\"")),
            "BENCH_native.json no longer emits workload rows for {name}"
        );
    }
    write_artifact("BENCH_native.json", &json);
}
