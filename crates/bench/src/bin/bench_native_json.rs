//! Machine-readable native wall-clock baseline: the four workloads on
//! real threads at 1/2/4/8 workers, median-of-k wall times, plus a
//! single-threaded kernel section (tiled vs untiled mat-mul, blocked
//! vs plain Floyd–Warshall) — emitted as `BENCH_native.json` under
//! `target/paper-figures/` so perf regressions diff as JSON instead of
//! eyeballed tables.
//!
//! ```text
//! cargo run -p rph-bench --release --bin bench_native_json [--quick]
//! ```
//!
//! Schema (`rph-bench-native/v1`): see `EXPERIMENTS.md` §"Native
//! wall-clock baseline". Every workload point records the median wall
//! time, its speedup over the same workload's one-worker median, and
//! the executor counters (steals, parks, probes) of the median run;
//! every checksum is asserted against the plain-Rust oracle before
//! anything is written. The kernel section keeps `n = 256` even under
//! `--quick` (fewer reps instead) — it is the acceptance gate for the
//! tiling work and is meaningless at toy sizes.

use rph_bench::{quick, write_artifact};
use rph_native::{Granularity, NativeConfig, NativeStats};
use rph_workloads::{kernels, Apsp, MatMul, NQueens, NativeMeasured, SumEuler};
use std::time::Instant;

/// Worker counts swept (the host caps real parallelism, not the sweep).
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Kernel-section problem size: the tiling acceptance gate is defined
/// at `n ≥ 256`, so `--quick` keeps the size and cuts reps.
const KERNEL_N: usize = 256;

/// Minimum single-threaded advantage the tiled mat-mul kernel must
/// show over the naïve one.
const MATMUL_TARGET: f64 = 1.5;

fn reps() -> usize {
    if quick() {
        3
    } else {
        5
    }
}

/// Median of `k` timed runs: sorts the samples and takes the middle
/// one (upper-middle for even `k`), returning the paired payload of
/// the median sample too — so reported executor counters come from
/// the same run as the reported time.
fn median_run<T>(mut samples: Vec<(u128, T)>) -> (u128, T) {
    assert!(!samples.is_empty());
    samples.sort_by_key(|(ns, _)| *ns);
    let mid = samples.len() / 2;
    samples.swap_remove(mid)
}

struct Point {
    workload: &'static str,
    params: String,
    workers: usize,
    median_ns: u128,
    speedup: f64,
    stats: NativeStats,
}

fn sweep(
    workload: &'static str,
    params: String,
    expected: i64,
    run: impl Fn(&NativeConfig) -> NativeMeasured,
) -> Vec<Point> {
    let mut points: Vec<Point> = Vec::new();
    let mut base_ns = 0u128;
    for workers in WORKERS {
        let cfg = NativeConfig {
            granularity: Granularity::LazySplit,
            ..NativeConfig::steal(workers)
        };
        let samples: Vec<(u128, NativeStats)> = (0..reps())
            .map(|_| {
                let m = run(&cfg);
                assert_eq!(
                    m.value, expected,
                    "{workload} @ {workers} workers: wrong checksum — reproduction bug"
                );
                (m.wall.as_nanos(), m.stats)
            })
            .collect();
        let (median_ns, stats) = median_run(samples);
        if workers == 1 {
            base_ns = median_ns;
        }
        points.push(Point {
            workload,
            params: params.clone(),
            workers,
            median_ns,
            speedup: base_ns as f64 / median_ns as f64,
            stats,
        });
    }
    points
}

struct KernelPoint {
    kernel: &'static str,
    n: usize,
    baseline_ns: u128,
    optimised_ns: u128,
    exact_match: bool,
    target: Option<f64>,
}

impl KernelPoint {
    fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / self.optimised_ns as f64
    }
}

/// Time `f` `reps()` times, return the median nanoseconds and the last
/// result (identical across reps — these kernels are deterministic).
fn time_kernel<T>(mut f: impl FnMut() -> T) -> (u128, T) {
    let samples: Vec<(u128, T)> = (0..reps())
        .map(|_| {
            let t0 = Instant::now();
            let out = f();
            (t0.elapsed().as_nanos(), out)
        })
        .collect();
    median_run(samples)
}

fn kernel_section() -> Vec<KernelPoint> {
    let n = KERNEL_N;
    let mut out = Vec::new();

    // Tiled vs naïve mat-mul, single-threaded, small-integer inputs
    // (exactly representable, so the tiled result must be bit-equal).
    let a: Vec<f64> = (0..n * n).map(|i| ((i * 7) % 10) as f64).collect();
    let b: Vec<f64> = (0..n * n).map(|i| ((i * 13) % 10) as f64).collect();
    let (naive_ns, want) = time_kernel(|| kernels::matmul_oracle(&a, &b, n));
    let (tiled_ns, got) = time_kernel(|| {
        let mut c = vec![0.0; n * n];
        kernels::matmul_tiled_into(&mut c, &a, &b, n);
        c
    });
    out.push(KernelPoint {
        kernel: "matmul_tiled_vs_naive",
        n,
        baseline_ns: naive_ns,
        optimised_ns: tiled_ns,
        exact_match: got == want,
        target: Some(MATMUL_TARGET),
    });

    // Blocked vs plain Floyd–Warshall on the APSP workload's own graph.
    let d0 = Apsp::new(n).input_flat();
    let (plain_ns, want) = time_kernel(|| {
        let mut d = d0.clone();
        kernels::floyd_warshall(&mut d, n);
        d
    });
    let (blocked_ns, got) = time_kernel(|| {
        let mut d = d0.clone();
        kernels::floyd_warshall_blocked(&mut d, n);
        d
    });
    out.push(KernelPoint {
        kernel: "floyd_warshall_blocked_vs_plain",
        n,
        baseline_ns: plain_ns,
        optimised_ns: blocked_ns,
        exact_match: got == want,
        target: None,
    });

    out
}

/// Minimal JSON string escaping (the strings here are ASCII labels,
/// but correctness is cheap).
fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn render_json(host_cores: usize, points: &[Point], kernels: &[KernelPoint]) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"rph-bench-native/v1\",\n");
    j.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    j.push_str(&format!("  \"reps\": {},\n", reps()));
    j.push_str(&format!("  \"quick\": {},\n", quick()));
    j.push_str("  \"workloads\": [\n");
    for (idx, p) in points.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"workload\": \"{}\", \"params\": \"{}\", \"workers\": {}, \
             \"median_ns\": {}, \"speedup\": {:.4}, \"steals\": {}, \"parks\": {}, \
             \"steal_probes\": {}, \"tasks_run\": {}, \"value_ok\": true}}{}\n",
            esc(p.workload),
            esc(&p.params),
            p.workers,
            p.median_ns,
            p.speedup,
            p.stats.steal_ops,
            p.stats.parks,
            p.stats.steal_probes,
            p.stats.tasks_run,
            if idx + 1 == points.len() { "" } else { "," }
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"kernels\": [\n");
    for (idx, k) in kernels.iter().enumerate() {
        let target = match k.target {
            Some(t) => format!(", \"target\": {t}, \"meets_target\": {}", k.speedup() >= t),
            None => String::new(),
        };
        j.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"baseline_median_ns\": {}, \
             \"optimised_median_ns\": {}, \"speedup\": {:.4}, \"exact_match\": {}{}}}{}\n",
            esc(k.kernel),
            k.n,
            k.baseline_ns,
            k.optimised_ns,
            k.speedup(),
            k.exact_match,
            target,
            if idx + 1 == kernels.len() { "" } else { "," }
        ));
    }
    j.push_str("  ]\n}\n");
    j
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Native wall-clock baseline ({host_cores} core{}), median of {} reps\n",
        if host_cores == 1 { "" } else { "s" },
        reps()
    );
    if host_cores < 4 {
        println!(
            "note: fewer than 4 cores — workload speedup columns will read ~1.0\n\
             (the kernel section is single-threaded and unaffected)\n"
        );
    }

    let mut points = Vec::new();

    let n = if quick() { 1_500 } else { 6_000 };
    let se = SumEuler::new(n);
    points.extend(sweep("sum_euler", format!("n={n}"), se.expected(), |cfg| {
        se.run_native(cfg)
    }));

    let (mn, grid) = if quick() { (240, 6) } else { (480, 8) };
    let mm = MatMul::new(mn, grid);
    points.extend(sweep(
        "matmul",
        format!("n={mn} grid={grid}"),
        mm.expected(),
        |cfg| mm.run_native(cfg),
    ));

    let an = if quick() { 96 } else { 256 };
    let ap = Apsp::new(an);
    points.extend(sweep("apsp", format!("n={an}"), ap.expected(), |cfg| {
        ap.run_native(cfg)
    }));

    let (qn, depth) = if quick() { (11, 3) } else { (13, 4) };
    let nq = NQueens::new(qn).with_spawn_depth(depth);
    points.extend(sweep(
        "nqueens",
        format!("n={qn} depth={depth}"),
        nq.expected(),
        |cfg| nq.run_native(cfg),
    ));

    for p in &points {
        println!(
            "{:10} {:>18} workers={} median={:.2}ms speedup={:.2} steals={} parks={}",
            p.workload,
            p.params,
            p.workers,
            p.median_ns as f64 / 1e6,
            p.speedup,
            p.stats.steal_ops,
            p.stats.parks
        );
    }

    println!();
    let kpoints = kernel_section();
    for k in &kpoints {
        assert!(
            k.exact_match,
            "{}: optimised kernel diverged from its oracle",
            k.kernel
        );
        let verdict = match k.target {
            Some(t) if k.speedup() >= t => format!(" (target {t}x: PASS)"),
            Some(t) => format!(" (target {t}x: MISS)"),
            None => String::new(),
        };
        println!(
            "{:32} n={} baseline={:.2}ms optimised={:.2}ms speedup={:.2}x exact_match={}{}",
            k.kernel,
            k.n,
            k.baseline_ns as f64 / 1e6,
            k.optimised_ns as f64 / 1e6,
            k.speedup(),
            k.exact_match,
            verdict
        );
    }

    println!();
    write_artifact(
        "BENCH_native.json",
        &render_json(host_cores, &points, &kpoints),
    );
}
