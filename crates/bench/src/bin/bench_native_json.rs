//! Machine-readable native wall-clock baseline: the four workloads on
//! real threads at 1/2/4/8 workers — on **both** native backends
//! (Chase–Lev work stealing and Eden-style message passing) — plus a
//! single-threaded kernel section (tiled vs untiled mat-mul, blocked
//! vs plain Floyd–Warshall) — emitted as `BENCH_native.json` under
//! `target/paper-figures/` so perf regressions diff as JSON instead of
//! eyeballed tables.
//!
//! ```text
//! cargo run -p rph-bench --release --bin bench_native_json [--quick]
//! ```
//!
//! Schema (`rph-bench-native/v2`): see `EXPERIMENTS.md` §"Native
//! wall-clock baseline". Every workload point records the median wall
//! time, its speedup over the same workload's one-worker median on the
//! same backend, and that backend's counters of the median run: steal
//! points report steals/parks/probes, `native_eden` points report
//! message traffic (sends, words, channel blocks) and the ratio of the
//! steal backend's median at the same worker count (`vs_steal` > 1
//! means message passing won). Every checksum is asserted against the
//! plain-Rust oracle before anything is written. The kernel section
//! keeps `n = 256` even under `--quick` (fewer reps instead) — it is
//! the acceptance gate for the tiling work and is meaningless at toy
//! sizes.

use rph_bench::{quick, write_artifact};
use rph_native::{BackendKind, NativeConfig, NativeStats};
use rph_workloads::{kernels, Apsp, MatMul, NQueens, NativeWorkload, SumEuler};
use std::time::Instant;

/// Worker counts swept (the host caps real parallelism, not the sweep).
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Kernel-section problem size: the tiling acceptance gate is defined
/// at `n ≥ 256`, so `--quick` keeps the size and cuts reps.
const KERNEL_N: usize = 256;

/// Minimum single-threaded advantage the tiled mat-mul kernel must
/// show over the naïve one.
const MATMUL_TARGET: f64 = 1.5;

fn reps() -> usize {
    if quick() {
        3
    } else {
        5
    }
}

/// Median of `k` timed runs: sorts the samples and takes the middle
/// one (upper-middle for even `k`), returning the paired payload of
/// the median sample too — so reported executor counters come from
/// the same run as the reported time.
fn median_run<T>(mut samples: Vec<(u128, T)>) -> (u128, T) {
    assert!(!samples.is_empty());
    samples.sort_by_key(|(ns, _)| *ns);
    let mid = samples.len() / 2;
    samples.swap_remove(mid)
}

struct Point {
    workload: &'static str,
    params: String,
    workers: usize,
    median_ns: u128,
    speedup: f64,
    stats: NativeStats,
}

fn sweep(w: &dyn NativeWorkload, params: &str, backend: BackendKind) -> Vec<Point> {
    let mut points: Vec<Point> = Vec::new();
    let mut base_ns = 0u128;
    for workers in WORKERS {
        let cfg = NativeConfig::new(workers).with_backend(backend);
        let samples: Vec<(u128, NativeStats)> = (0..reps())
            .map(|_| {
                let m = w.run_on(&cfg).expect("native run failed");
                assert_eq!(
                    m.value,
                    w.expected_value(),
                    "{} @ {workers} workers ({backend:?}): wrong checksum — reproduction bug",
                    w.name()
                );
                (m.wall.as_nanos(), m.stats)
            })
            .collect();
        let (median_ns, stats) = median_run(samples);
        if workers == 1 {
            base_ns = median_ns;
        }
        points.push(Point {
            workload: w.name(),
            params: params.to_string(),
            workers,
            median_ns,
            speedup: base_ns as f64 / median_ns as f64,
            stats,
        });
    }
    points
}

struct KernelPoint {
    kernel: &'static str,
    n: usize,
    baseline_ns: u128,
    optimised_ns: u128,
    exact_match: bool,
    target: Option<f64>,
}

impl KernelPoint {
    fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / self.optimised_ns as f64
    }
}

/// Time `f` `reps()` times, return the median nanoseconds and the last
/// result (identical across reps — these kernels are deterministic).
fn time_kernel<T>(mut f: impl FnMut() -> T) -> (u128, T) {
    let samples: Vec<(u128, T)> = (0..reps())
        .map(|_| {
            let t0 = Instant::now();
            let out = f();
            (t0.elapsed().as_nanos(), out)
        })
        .collect();
    median_run(samples)
}

fn kernel_section() -> Vec<KernelPoint> {
    let n = KERNEL_N;
    let mut out = Vec::new();

    // Tiled vs naïve mat-mul, single-threaded, small-integer inputs
    // (exactly representable, so the tiled result must be bit-equal).
    let a: Vec<f64> = (0..n * n).map(|i| ((i * 7) % 10) as f64).collect();
    let b: Vec<f64> = (0..n * n).map(|i| ((i * 13) % 10) as f64).collect();
    let (naive_ns, want) = time_kernel(|| kernels::matmul_oracle(&a, &b, n));
    let (tiled_ns, got) = time_kernel(|| {
        let mut c = vec![0.0; n * n];
        kernels::matmul_tiled_into(&mut c, &a, &b, n);
        c
    });
    out.push(KernelPoint {
        kernel: "matmul_tiled_vs_naive",
        n,
        baseline_ns: naive_ns,
        optimised_ns: tiled_ns,
        exact_match: got == want,
        target: Some(MATMUL_TARGET),
    });

    // Blocked vs plain Floyd–Warshall on the APSP workload's own graph.
    let d0 = Apsp::new(n).input_flat();
    let (plain_ns, want) = time_kernel(|| {
        let mut d = d0.clone();
        kernels::floyd_warshall(&mut d, n);
        d
    });
    let (blocked_ns, got) = time_kernel(|| {
        let mut d = d0.clone();
        kernels::floyd_warshall_blocked(&mut d, n);
        d
    });
    out.push(KernelPoint {
        kernel: "floyd_warshall_blocked_vs_plain",
        n,
        baseline_ns: plain_ns,
        optimised_ns: blocked_ns,
        exact_match: got == want,
        target: None,
    });

    out
}

/// Minimal JSON string escaping (the strings here are ASCII labels,
/// but correctness is cheap).
fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The steal backend's median at the same (workload, workers) point —
/// the denominator-side of the `vs_steal` ratio.
fn steal_median(steal: &[Point], workload: &str, workers: usize) -> u128 {
    steal
        .iter()
        .find(|p| p.workload == workload && p.workers == workers)
        .map(|p| p.median_ns)
        .expect("steal sweep covers every (workload, workers) point")
}

fn render_json(
    host_cores: usize,
    steal: &[Point],
    eden: &[Point],
    kernels: &[KernelPoint],
) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"rph-bench-native/v2\",\n");
    j.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    j.push_str(&format!("  \"reps\": {},\n", reps()));
    j.push_str(&format!("  \"quick\": {},\n", quick()));
    j.push_str("  \"workloads\": [\n");
    for (idx, p) in steal.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"workload\": \"{}\", \"params\": \"{}\", \"workers\": {}, \
             \"median_ns\": {}, \"speedup\": {:.4}, \"steals\": {}, \"parks\": {}, \
             \"steal_probes\": {}, \"tasks_run\": {}, \"value_ok\": true}}{}\n",
            esc(p.workload),
            esc(&p.params),
            p.workers,
            p.median_ns,
            p.speedup,
            p.stats.steal_ops,
            p.stats.parks,
            p.stats.steal_probes,
            p.stats.tasks_run,
            if idx + 1 == steal.len() { "" } else { "," }
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"native_eden\": [\n");
    for (idx, p) in eden.iter().enumerate() {
        let vs_steal = steal_median(steal, p.workload, p.workers) as f64 / p.median_ns as f64;
        j.push_str(&format!(
            "    {{\"workload\": \"{}\", \"params\": \"{}\", \"workers\": {}, \
             \"median_ns\": {}, \"speedup\": {:.4}, \"vs_steal\": {:.4}, \
             \"msgs_sent\": {}, \"msgs_recv\": {}, \"words_sent\": {}, \
             \"send_blocks\": {}, \"recv_blocks\": {}, \"tasks_run\": {}, \
             \"value_ok\": true}}{}\n",
            esc(p.workload),
            esc(&p.params),
            p.workers,
            p.median_ns,
            p.speedup,
            vs_steal,
            p.stats.msgs_sent,
            p.stats.msgs_recv,
            p.stats.words_sent,
            p.stats.send_blocks,
            p.stats.recv_blocks,
            p.stats.tasks_run,
            if idx + 1 == eden.len() { "" } else { "," }
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"kernels\": [\n");
    for (idx, k) in kernels.iter().enumerate() {
        let target = match k.target {
            Some(t) => format!(", \"target\": {t}, \"meets_target\": {}", k.speedup() >= t),
            None => String::new(),
        };
        j.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"baseline_median_ns\": {}, \
             \"optimised_median_ns\": {}, \"speedup\": {:.4}, \"exact_match\": {}{}}}{}\n",
            esc(k.kernel),
            k.n,
            k.baseline_ns,
            k.optimised_ns,
            k.speedup(),
            k.exact_match,
            target,
            if idx + 1 == kernels.len() { "" } else { "," }
        ));
    }
    j.push_str("  ]\n}\n");
    j
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Native wall-clock baseline ({host_cores} core{}), median of {} reps\n",
        if host_cores == 1 { "" } else { "s" },
        reps()
    );
    if host_cores < 4 {
        println!(
            "note: fewer than 4 cores — workload speedup columns will read ~1.0\n\
             (the kernel section is single-threaded and unaffected)\n"
        );
    }

    let n = if quick() { 1_500 } else { 6_000 };
    let se = SumEuler::new(n);
    let (mn, grid) = if quick() { (240, 6) } else { (480, 8) };
    let mm = MatMul::new(mn, grid);
    let an = if quick() { 96 } else { 256 };
    let ap = Apsp::new(an);
    let (qn, depth) = if quick() { (11, 3) } else { (13, 4) };
    let nq = NQueens::new(qn).with_spawn_depth(depth);

    let table: [(&dyn NativeWorkload, String); 4] = [
        (&se, format!("n={n}")),
        (&mm, format!("n={mn} grid={grid}")),
        (&ap, format!("n={an}")),
        (&nq, format!("n={qn} depth={depth}")),
    ];

    let mut steal_points = Vec::new();
    let mut eden_points = Vec::new();
    for (w, params) in &table {
        steal_points.extend(sweep(*w, params, BackendKind::Steal));
        eden_points.extend(sweep(*w, params, BackendKind::Eden));
    }

    for p in &steal_points {
        println!(
            "{:10} {:>18} workers={} median={:.2}ms speedup={:.2} steals={} parks={}",
            p.workload,
            p.params,
            p.workers,
            p.median_ns as f64 / 1e6,
            p.speedup,
            p.stats.steal_ops,
            p.stats.parks
        );
    }
    println!();
    for p in &eden_points {
        println!(
            "{:10} {:>18} workers={} [eden] median={:.2}ms speedup={:.2} vs_steal={:.2} \
             msgs={} words={} blocks={}/{}",
            p.workload,
            p.params,
            p.workers,
            p.median_ns as f64 / 1e6,
            p.speedup,
            steal_median(&steal_points, p.workload, p.workers) as f64 / p.median_ns as f64,
            p.stats.msgs_sent,
            p.stats.words_sent,
            p.stats.send_blocks,
            p.stats.recv_blocks
        );
    }

    println!();
    let kpoints = kernel_section();
    for k in &kpoints {
        assert!(
            k.exact_match,
            "{}: optimised kernel diverged from its oracle",
            k.kernel
        );
        let verdict = match k.target {
            Some(t) if k.speedup() >= t => format!(" (target {t}x: PASS)"),
            Some(t) => format!(" (target {t}x: MISS)"),
            None => String::new(),
        };
        println!(
            "{:32} n={} baseline={:.2}ms optimised={:.2}ms speedup={:.2}x exact_match={}{}",
            k.kernel,
            k.n,
            k.baseline_ns as f64 / 1e6,
            k.optimised_ns as f64 / 1e6,
            k.speedup(),
            k.exact_match,
            verdict
        );
    }

    println!();
    write_artifact(
        "BENCH_native.json",
        &render_json(host_cores, &steal_points, &eden_points, &kpoints),
    );
}
