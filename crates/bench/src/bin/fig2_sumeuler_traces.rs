//! Fig. 2: "Runtime traces of sumEuler [1..15000]: GpH versions and
//! Eden" — per-capability activity diagrams for the five versions,
//! including the sequential check computation "obvious at the end of
//! each trace".
//!
//! ```text
//! cargo run -p rph-bench --release --bin fig2_sumeuler_traces [--quick] [--color]
//! ```

use rph_bench::*;
use rph_core::prelude::*;
use rph_workloads::SumEuler;

fn main() {
    let n = sum_euler_n();
    let caps = INTEL_CORES;
    let color = std::env::args().any(|a| a == "--color");
    let w = SumEuler::new(n).with_check();
    let expected = w.expected();
    println!("Fig. 2 — sumEuler [1..{n}] runtime traces, {caps} capabilities");
    println!("(every version re-checks the result sequentially at the end)\n");

    let opts = RenderOptions {
        width: 110,
        color,
        legend: false,
    };
    let mut csv_all = String::from("version,cap,start,end,state\n");
    for (tag, version) in ["a", "b", "c", "d", "e"].iter().zip(five_versions(caps)) {
        let (elapsed, tracer) = match &version {
            Version::Gph(_, cfg) => {
                let m = w.run_gph(cfg.clone()).expect("gph run");
                check(&m, expected, version.label());
                (m.elapsed, m.tracer)
            }
            Version::Eden(_, cfg) => {
                let m = w.run_eden(cfg.clone()).expect("eden run");
                check(&m, expected, version.label());
                (m.elapsed, m.tracer)
            }
        };
        let tl = Timeline::from_tracer(&tracer);
        tl.check_well_formed().expect("trace invariants");
        println!("{tag}) {} — {}", version.label(), secs(elapsed));
        print!("{}", render_timeline(&tl, &opts));
        let st = TraceStats::from_parts(&tracer, &tl);
        println!(
            "   running {:>5.1}%  runnable {:>4.1}%  gc {:>4.1}%  idle {:>4.1}%  blocked {:>4.1}%\n",
            st.fraction(rph_core::trace::State::Running) * 100.0,
            st.fraction(rph_core::trace::State::Runnable) * 100.0,
            st.fraction(rph_core::trace::State::Gc) * 100.0,
            st.fraction(rph_core::trace::State::Idle) * 100.0,
            st.fraction(rph_core::trace::State::Blocked) * 100.0,
        );
        for line in rph_core::trace::render_csv(&tl).lines().skip(1) {
            csv_all.push_str(tag);
            csv_all.push(',');
            csv_all.push_str(line);
            csv_all.push('\n');
        }
        write_artifact(
            &format!("fig2_trace_{tag}.svg"),
            &rph_core::trace::render_svg(&tl, 900, 16),
        );
    }
    println!("legend: #=running ~=runnable x=blocked .=idle G=gc -=descheduled");
    write_artifact("fig2_sumeuler_traces.csv", &csv_all);
}
