//! Ablation of §IV's optimisations on sumEuler: each change applied
//! *alone* to the plain runtime, and each removed *alone* from the
//! fully optimised runtime — quantifying the isolated effect of every
//! mechanism the paper describes (the paper only reports the
//! cumulative ladder).
//!
//! ```text
//! cargo run -p rph-bench --release --bin ablation_ladder [--quick]
//! ```

use rph_bench::*;
use rph_core::prelude::*;
use rph_workloads::SumEuler;

fn main() {
    let n = sum_euler_n();
    let caps = INTEL_CORES;
    let w = SumEuler::new(n);
    let expected = w.expected();
    println!("Ablation — sumEuler [1..{n}], {caps} cores\n");

    let run = |label: &str, cfg: GphConfig, table: &mut TextTable, base: u64| {
        let m = w.run_gph(cfg.without_trace()).expect("run");
        check(&m, expected, label);
        let s = m.gph_stats.unwrap();
        let delta = 100.0 * (base as f64 - m.elapsed as f64) / base as f64;
        table.row(&[
            label.to_string(),
            secs(m.elapsed),
            format!("{delta:+.1}%"),
            s.gcs.to_string(),
        ]);
        m.elapsed
    };

    // --- each optimisation alone, from plain ------------------------
    let plain = GphConfig::ghc69_plain(caps);
    let base = w
        .run_gph(plain.clone().without_trace())
        .expect("plain")
        .elapsed;
    let mut t1 = TextTable::new(&[
        "single change from plain GHC-6.9",
        "runtime",
        "vs plain",
        "GCs",
    ]);
    t1.row(&["(plain)".into(), secs(base), "+0.0%".into(), "".into()]);
    run(
        "only big allocation area",
        plain.clone().with_big_alloc_area(),
        &mut t1,
        base,
    );
    run(
        "only improved GC synchronisation",
        plain.clone().with_improved_gc_sync(),
        &mut t1,
        base,
    );
    run(
        "only work stealing (+spark thread)",
        plain.clone().with_work_stealing(),
        &mut t1,
        base,
    );
    run(
        "only eager black-holing",
        plain.clone().with_eager_blackholing(),
        &mut t1,
        base,
    );
    {
        let mut c = plain.clone();
        c.spark_exec = SparkExec::SparkThread;
        run("only spark thread (push kept)", c, &mut t1, base);
    }
    println!("{}", t1.render());

    // --- each optimisation removed, from full ------------------------
    let full = GphConfig::ghc69_plain(caps)
        .with_big_alloc_area()
        .with_improved_gc_sync()
        .with_work_stealing();
    let fbase = w
        .run_gph(full.clone().without_trace())
        .expect("full")
        .elapsed;
    let mut t2 = TextTable::new(&[
        "single removal from fully optimised",
        "runtime",
        "vs full",
        "GCs",
    ]);
    t2.row(&[
        "(fully optimised)".into(),
        secs(fbase),
        "+0.0%".into(),
        "".into(),
    ]);
    {
        let mut c = full.clone();
        c.alloc_area_words = rph_core::heap::AllocArea::DEFAULT_AREA_WORDS;
        run("small allocation area again", c, &mut t2, fbase);
    }
    {
        let mut c = full.clone();
        c.gc_sync_improved = false;
        run("original GC synchronisation again", c, &mut t2, fbase);
    }
    {
        let mut c = full.clone();
        c.spark_policy = SparkPolicy::Push;
        run("push-model sparks again", c, &mut t2, fbase);
    }
    {
        let mut c = full.clone();
        c.spark_exec = SparkExec::ThreadPerSpark;
        run("thread per spark again", c, &mut t2, fbase);
    }
    println!("{}", t2.render());
    write_artifact(
        "ablation_ladder.txt",
        &format!("{}\n{}", t1.render(), t2.render()),
    );
}
