//! Fig. 4: "Traces of matrix multiplication: GpH and Eden" on the
//! 8-core Intel machine — including the paper's oversubscription
//! observation: Eden on a 3×3 torus over **9 virtual PEs** and on a
//! 4×4 torus over **17 virtual PEs** (both on 8 physical cores), with
//! the 4×4/17-PE version fastest.
//!
//! ```text
//! cargo run -p rph-bench --release --bin fig4_matmul_traces [--quick] [--color]
//! ```

use rph_bench::*;
use rph_core::prelude::*;
use rph_workloads::MatMul;

fn main() {
    let n = matmul_traces_n();
    let cores = INTEL_CORES;
    let color = std::env::args().any(|a| a == "--color");
    println!("Fig. 4 — {n}×{n} matrix multiplication traces, {cores} cores\n");
    let opts = RenderOptions {
        width: 110,
        color,
        legend: false,
    };

    let gph_w = MatMul::new(n, 10);
    let expected = gph_w.expected();

    struct Cfg {
        tag: &'static str,
        label: String,
        run: Box<dyn Fn() -> rph_workloads::Measured>,
    }
    let mk_gph = |label: &str, cfg: GphConfig, w: MatMul| Cfg {
        tag: "",
        label: label.to_string(),
        run: Box::new(move || w.run_gph(cfg.clone()).expect("gph")),
    };
    let mut cfgs = vec![
        mk_gph(
            "GpH, unmodified GHC",
            GphConfig::ghc69_plain(cores),
            gph_w.clone(),
        ),
        mk_gph(
            "GpH, big allocation area",
            GphConfig::ghc69_plain(cores).with_big_alloc_area(),
            gph_w.clone(),
        ),
        mk_gph(
            "GpH, work stealing (big allocation area)",
            GphConfig::ghc69_plain(cores)
                .with_big_alloc_area()
                .with_improved_gc_sync()
                .with_work_stealing(),
            gph_w.clone(),
        ),
    ];
    for (g, pes) in [(3usize, 9usize), (4, 17)] {
        let w = MatMul::new(n, g);
        let cfg = EdenConfig::oversubscribed(pes, cores);
        cfgs.push(Cfg {
            tag: "",
            label: format!("Eden Cannon {g}×{g}, {pes} virtual PVM nodes on {cores} cores"),
            run: Box::new(move || w.run_eden(cfg.clone()).expect("eden")),
        });
    }

    let mut times = Vec::new();
    for (tag, mut cfg) in ["a", "b", "c", "d", "e"].iter().zip(cfgs) {
        cfg.tag = tag;
        let m = (cfg.run)();
        check(&m, expected, &cfg.label);
        let tl = Timeline::from_tracer(&m.tracer);
        tl.check_well_formed().expect("trace invariants");
        println!("{tag}) {} — {}", cfg.label, millis(m.elapsed));
        print!("{}", render_timeline(&tl, &opts));
        match (&m.gph_stats, &m.eden_stats) {
            (Some(s), _) => println!(
                "   {} GCs (barrier wait {}, pause {})\n",
                s.gcs,
                millis(s.gc_barrier_wait),
                millis(s.gc_pause)
            ),
            (_, Some(s)) => println!(
                "   {} local GCs (pause {})\n",
                s.local_gcs,
                millis(s.gc_time)
            ),
            _ => println!(),
        }
        write_artifact(
            &format!("fig4_trace_{tag}.svg"),
            &rph_core::trace::render_svg(&tl, 900, 16),
        );
        times.push((cfg.label.clone(), m.elapsed));
    }

    // Shape checks from the paper's text.
    let plain = times[0].1;
    let big = times[1].1;
    let steal = times[2].1;
    let eden9 = times[3].1;
    let eden17 = times[4].1;
    println!("shape checks:");
    println!(
        "  big allocation area beats plain:            {}",
        yes(big < plain)
    );
    println!(
        "  work stealing is the best GpH:               {}",
        yes(steal <= big)
    );
    println!(
        "  Eden 17 virtual PEs beats 9 virtual PEs:     {}",
        yes(eden17 < eden9)
    );

    let mut csv = String::from("config,elapsed_units\n");
    for (l, t) in &times {
        csv.push_str(&format!("{l},{t}\n"));
    }
    write_artifact("fig4_matmul_traces.csv", &csv);
}

fn yes(b: bool) -> &'static str {
    if b {
        "YES"
    } else {
        "NO"
    }
}
