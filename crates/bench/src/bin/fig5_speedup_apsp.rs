//! Fig. 5: "Relative speedup for shortest-paths program (400 nodes)"
//! on the 16-core AMD machine — the workload where eager black-holing
//! decides whether the shared-heap model scales at all.
//!
//! Versions, as in the paper's figure: GpH with {lazy, eager}
//! black-holing × {push, work-stealing} spark distribution, plus the
//! Eden ring.
//!
//! ```text
//! cargo run -p rph-bench --release --bin fig5_speedup_apsp [--quick]
//! ```

use rph_bench::*;
use rph_core::compare::{flattens, SpeedupSeries};
use rph_core::prelude::*;
use rph_workloads::Apsp;

fn main() {
    let n = apsp_n();
    let cores = sweep_cores();
    let w = Apsp::new(n);
    let expected = w.expected();
    println!(
        "Fig. 5 — shortest paths ({n} nodes) relative speedups, 1–{} cores\n",
        AMD_CORES
    );

    let gph_cfg = |c: usize, bh: BlackHoling, policy: SparkPolicy| {
        let mut cfg = GphConfig::ghc69_plain(c)
            .with_big_alloc_area()
            .with_improved_gc_sync()
            .without_trace();
        cfg.black_holing = bh;
        cfg.spark_policy = policy;
        if policy == SparkPolicy::Steal {
            cfg.spark_exec = SparkExec::SparkThread;
        }
        cfg
    };

    let gph_versions = [
        ("GpH lazy BH, push", BlackHoling::Lazy, SparkPolicy::Push),
        (
            "GpH lazy BH, work stealing",
            BlackHoling::Lazy,
            SparkPolicy::Steal,
        ),
        ("GpH eager BH, push", BlackHoling::Eager, SparkPolicy::Push),
        (
            "GpH eager BH, work stealing",
            BlackHoling::Eager,
            SparkPolicy::Steal,
        ),
    ];

    let mut series: Vec<SpeedupSeries> = Vec::new();
    for (label, bh, policy) in gph_versions {
        series.push(SpeedupSeries::measure(label, &cores, |c| {
            let m = w.run_gph(gph_cfg(c, bh, policy)).expect("gph run");
            check(&m, expected, label);
            m.elapsed
        }));
    }
    series.push(SpeedupSeries::measure("Eden ring", &cores, |c| {
        let m = w
            .run_eden(EdenConfig::new(c).without_trace())
            .expect("eden run");
        check(&m, expected, "Eden ring");
        m.elapsed
    }));

    let mut header: Vec<String> = vec!["cores".to_string()];
    header.extend(series.iter().map(|s| s.label.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    for &c in &cores {
        let mut row = vec![c.to_string()];
        for s in &series {
            let base = s.one_core().expect("1-core point");
            row.push(format!(
                "{:.2}",
                rph_core::compare::relative_speedup(base, s.at(c).unwrap())
            ));
        }
        table.row(&row);
    }
    let rendered = table.render();
    println!("{rendered}");
    let chart_series: Vec<(String, Vec<(usize, f64)>)> = series
        .iter()
        .map(|s| (s.label.clone(), s.speedups(s.one_core().unwrap())))
        .collect();
    println!("{}", rph_core::compare::render_chart(&chart_series, 16));
    write_artifact("fig5_apsp_speedup.csv", &table.to_csv());

    // Shape checks from the paper's text.
    let sp = |i: usize| -> Vec<(usize, f64)> {
        let base = series[i].one_core().unwrap();
        series[i].speedups(base)
    };
    let lazy_steal = sp(1);
    let eager_steal = sp(3);
    let eden = sp(4);
    let last = cores.len() - 1;
    println!("shape checks:");
    println!(
        "  Eden keeps scaling (best speedup at max cores):        {}",
        yes(eden[last].1 >= eager_steal[last].1 && eden[last].1 > 2.0)
    );
    println!(
        "  GpH with lazy black-holing flattens out:               {}",
        yes(flattens(&lazy_steal, 0.15) || lazy_steal[last].1 < 2.0)
    );
    println!(
        "  eager black-holing beats lazy (work stealing, max):    {}",
        yes(eager_steal[last].1 > lazy_steal[last].1)
    );
}

fn yes(b: bool) -> &'static str {
    if b {
        "YES"
    } else {
        "NO"
    }
}
