//! Fig. 3 (right): "Relative speedup for the matrix program" on the
//! 16-core AMD machine. GpH versions spark a 10×10 block grid; the
//! Eden version runs Cannon's algorithm on the largest square torus
//! that fits the core count (paper: 2000×2000 elements; default here
//! 960×960, which preserves the shape — pass `--quick` for 240).
//!
//! ```text
//! cargo run -p rph-bench --release --bin fig3_speedup_matmul [--quick]
//! ```

use rph_bench::*;
use rph_core::compare::SpeedupSeries;
use rph_core::prelude::*;
use rph_workloads::MatMul;

fn main() {
    let n = matmul_speedup_n();
    let cores = sweep_cores();
    let w = MatMul::new(n, 10);
    let expected = w.expected();
    println!(
        "Fig. 3 right — {n}×{n} matrix multiplication relative speedups, 1–{} cores\n",
        AMD_CORES
    );

    let mut series: Vec<SpeedupSeries> = Vec::new();
    for version in five_versions(AMD_CORES) {
        let label = version.label().to_string();
        let s = SpeedupSeries::measure(&label, &cores, |c| match &version {
            Version::Gph(_, cfg) => {
                let mut cfg = cfg.clone().without_trace();
                cfg.caps = c;
                let m = w.run_gph(cfg).expect("gph run");
                check(&m, expected, &label);
                m.elapsed
            }
            Version::Eden(..) => {
                // Cannon on a ⌈√c⌉ × ⌈√c⌉ torus: like the paper, the
                // g²+1 virtual PEs may exceed the physical cores (9
                // PEs on 8 cores) — the OS time-slices them.
                let g = ((c as f64).sqrt().ceil() as usize).clamp(1, 4);
                let we = MatMul::new(n, g);
                let m = we
                    .run_eden(EdenConfig::oversubscribed(g * g + 1, c).without_trace())
                    .expect("eden run");
                check(&m, we.expected(), &label);
                m.elapsed
            }
        });
        series.push(s);
    }

    // Reuse the fig3 renderer (duplicated locally: binaries are
    // independent).
    let mut header: Vec<String> = vec!["cores".to_string()];
    header.extend(series.iter().map(|s| s.label.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    for &c in &cores {
        let mut row = vec![c.to_string()];
        for s in &series {
            let base = s.one_core().expect("1-core point");
            let sp = rph_core::compare::relative_speedup(base, s.at(c).expect("point"));
            row.push(format!("{sp:.2}"));
        }
        table.row(&row);
    }
    let rendered = table.render();
    println!("{rendered}");
    let chart_series: Vec<(String, Vec<(usize, f64)>)> = series
        .iter()
        .map(|s| (s.label.clone(), s.speedups(s.one_core().unwrap())))
        .collect();
    println!("{}", rph_core::compare::render_chart(&chart_series, 16));
    write_artifact("fig3_matmul_speedup.csv", &table.to_csv());
}
