//! Service-mode latency benchmark: open-loop arrivals against the
//! `rph-server` job server, emitted as `BENCH_server.json` under
//! `target/paper-figures/` (schema `rph-bench-server/v2` — v2 adds
//! `cpu_features` and `kernel_variant`, since the sumEuler unit kernel
//! is served by the SIMD-dispatched sieve and a scalar-fallback run
//! would otherwise be indistinguishable in the artifact).
//!
//! ```text
//! cargo run -p rph-bench --release --bin bench_server_json [--smoke]
//! ```
//!
//! Unlike the closed-loop workload benches (run, wait, repeat), this
//! drives **open-loop** traffic: job arrival times are drawn up front
//! from an exponential inter-arrival distribution at a configured
//! rate and submitted on that absolute schedule whether or not the
//! server has kept up — the arrival process does not slow down to
//! match the service process, so queueing delay is measured rather
//! than hidden. Two tenants submit a mixed bag of job classes at a
//! 9:1 skew; one poison job is injected mid-run to prove a panicking
//! job leaves the pool serving the rest of the schedule.
//!
//! Assertions before anything is written: every accepted job resolves
//! exactly once, every `Done` value matches its class oracle (zero
//! lost or duplicated results), the poison job resolves `Panicked`
//! alone, and accepted == done + cancelled + panicked. The emitted
//! JSON records p50/p99/p999 end-to-end latency, queue-wait and
//! service-time quantiles, sustained throughput, and
//! rejected/cancelled counts.
//!
//! On a 1-core host the latency distribution is still meaningful —
//! queueing delay, batching and admission control don't need spare
//! cores to show up — even though speedup numbers would be vacuous.

use rph_bench::write_artifact;
use rph_native::NativeConfig;
use rph_server::{
    JobClass, JobHandle, JobStatus, LatencyHistogram, Server, ServerConfig, SubmitError,
};
use rph_sim::DetRng;
use std::time::{Duration, Instant};

/// Benchmark shape: `--smoke` keeps the schedule CI-sized (but still
/// ≥ 1k mixed jobs, the acceptance floor); the default run is longer.
struct Shape {
    jobs: usize,
    rate_per_sec: f64,
    workers: usize,
    queue_cap_units: usize,
    batch_max_units: usize,
}

fn shape(smoke: bool) -> Shape {
    if smoke {
        Shape {
            jobs: 1_200,
            rate_per_sec: 3_000.0,
            workers: 2,
            queue_cap_units: 8_192,
            batch_max_units: 256,
        }
    } else {
        Shape {
            jobs: 8_000,
            rate_per_sec: 2_000.0,
            workers: 4,
            queue_cap_units: 16_384,
            batch_max_units: 512,
        }
    }
}

/// The mixed workload: mostly tiny jobs with a medium tail, echoing a
/// front end multiplexing small requests over the pool.
fn class_mix(rng: &mut DetRng) -> JobClass {
    match rng.gen_range(10) {
        0..=5 => JobClass::Spin {
            units: 1 + rng.gen_range(3) as u32,
            iters: 2_000,
        },
        6..=8 => JobClass::SumEuler {
            n: 60 + rng.gen_range(60) as u32,
            chunk: 10,
        },
        _ => JobClass::SumEuler { n: 400, chunk: 25 },
    }
}

/// Exponential inter-arrival gap at `rate` jobs/sec.
fn exp_gap(rng: &mut DetRng, rate: f64) -> Duration {
    let u = rng.gen_f64().max(1e-12);
    Duration::from_secs_f64((-u.ln()) / rate)
}

struct Quantiles {
    p50: u64,
    p99: u64,
    p999: u64,
    max: u64,
}

fn quantiles(h: &LatencyHistogram) -> Quantiles {
    let ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    Quantiles {
        p50: ns(h.quantile(0.5)),
        p99: ns(h.quantile(0.99)),
        p999: ns(h.quantile(0.999)),
        max: ns(h.max()),
    }
}

fn quantile_json(label: &str, q: &Quantiles) -> String {
    format!(
        "  \"{label}\": {{\"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
        q.p50, q.p99, q.p999, q.max
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = shape(smoke);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Server latency benchmark: {} jobs open-loop at {:.0}/s, {} workers ({host_cores} core host)\n",
        s.jobs, s.rate_per_sec, s.workers
    );

    let cfg = ServerConfig::new(NativeConfig::steal(s.workers))
        .with_tenants(&[9, 1])
        .with_queue_cap(s.queue_cap_units)
        .with_batch_max(s.batch_max_units);
    let server = Server::start(cfg);

    // Draw the whole arrival schedule up front (deterministic given
    // the seed), then replay it against the wall clock.
    let mut rng = DetRng::new(0xB0B5);
    let mut arrivals: Vec<(Duration, usize, JobClass)> = Vec::with_capacity(s.jobs);
    let mut t = Duration::ZERO;
    for _ in 0..s.jobs {
        t += exp_gap(&mut rng, s.rate_per_sec);
        // 9:1 tenant skew, matching the 9:1 scheduling weights.
        let tenant = usize::from(rng.gen_range(10) == 9);
        arrivals.push((t, tenant, class_mix(&mut rng)));
    }
    let poison_at = s.jobs / 2;

    let t0 = Instant::now();
    let mut accepted: Vec<(JobClass, JobHandle)> = Vec::with_capacity(s.jobs);
    let mut rejected = 0u64;
    let mut poison_handle = None;
    for (i, (due, tenant, class)) in arrivals.iter().enumerate() {
        if let Some(gap) = due.checked_sub(t0.elapsed()) {
            std::thread::sleep(gap);
        }
        if i == poison_at {
            // Fault injection: one poisoned job mid-schedule.
            let p = JobClass::Poison {
                units: 4,
                iters: 100,
                bad: 1,
            };
            poison_handle = Some(server.submit(*tenant, p).expect("poison accepted"));
            continue;
        }
        match server.submit(*tenant, *class) {
            Ok(h) => accepted.push((*class, h)),
            Err(SubmitError::Backpressure { .. }) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }

    // Wait for every accepted handle: each resolves exactly once, and
    // each Done value must match its class oracle — zero lost or
    // duplicated results.
    let mut latency = LatencyHistogram::new();
    let mut queue_wait = LatencyHistogram::new();
    let mut service = LatencyHistogram::new();
    let mut done = 0u64;
    let mut cancelled = 0u64;
    let mut after_poison_done = 0u64;
    for (i, (class, h)) in accepted.iter().enumerate() {
        let out = h.wait();
        match out.status {
            JobStatus::Done => {
                assert_eq!(
                    Some(out.value),
                    class.expected(),
                    "job {i} ({class:?}): lost or duplicated unit results"
                );
                done += 1;
                if i >= poison_at {
                    after_poison_done += 1;
                }
                latency.record(out.latency);
                queue_wait.record(out.queue_wait);
                service.record(out.service);
            }
            JobStatus::Cancelled => cancelled += 1,
            JobStatus::Panicked => panic!("job {i} ({class:?}) panicked — containment failed"),
        }
    }
    let wall = t0.elapsed();
    let poison_out = poison_handle.expect("poison was submitted").wait();
    assert_eq!(
        poison_out.status,
        JobStatus::Panicked,
        "poison job must resolve Panicked"
    );
    assert!(
        after_poison_done > 0,
        "no job completed after the poison job: the pool stopped serving"
    );

    let report = server.shutdown();
    assert_eq!(
        report.stats.accepted,
        report.stats.done + report.stats.cancelled + report.stats.panicked,
        "accepted jobs must all resolve"
    );
    assert_eq!(report.stats.queued_units, 0, "leaked queue slots");
    assert_eq!(report.stats.panicked, 1, "exactly the poison job panicked");
    assert!(done >= 1_000, "smoke floor: at least 1k completed jobs");

    let throughput = done as f64 / wall.as_secs_f64();
    let lq = quantiles(&latency);
    let wq = quantiles(&queue_wait);
    let sq = quantiles(&service);
    println!(
        "done={done} cancelled={cancelled} rejected={rejected} panicked=1 \
         batches={} in {:.2}s → {throughput:.0} jobs/s sustained",
        report.stats.batches,
        wall.as_secs_f64()
    );
    println!(
        "latency p50={:.2}ms p99={:.2}ms p999={:.2}ms max={:.2}ms",
        lq.p50 as f64 / 1e6,
        lq.p99 as f64 / 1e6,
        lq.p999 as f64 / 1e6,
        lq.max as f64 / 1e6
    );
    println!(
        "queue-wait p50={:.2}ms p99={:.2}ms | service p50={:.2}ms p99={:.2}ms",
        wq.p50 as f64 / 1e6,
        wq.p99 as f64 / 1e6,
        sq.p50 as f64 / 1e6,
        sq.p99 as f64 / 1e6
    );

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"rph-bench-server/v2\",\n");
    j.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    let features = rph_workloads::simd::cpu_features()
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect::<Vec<_>>()
        .join(", ");
    j.push_str(&format!("  \"cpu_features\": [{features}],\n"));
    j.push_str(&format!(
        "  \"kernel_variant\": \"{}\",\n",
        rph_workloads::simd::active().name()
    ));
    j.push_str(&format!("  \"smoke\": {smoke},\n"));
    j.push_str(&format!(
        "  \"config\": {{\"jobs\": {}, \"rate_jobs_per_sec\": {:.1}, \"workers\": {}, \
         \"queue_cap_units\": {}, \"batch_max_units\": {}, \"tenant_weights\": [9, 1]}},\n",
        s.jobs, s.rate_per_sec, s.workers, s.queue_cap_units, s.batch_max_units
    ));
    j.push_str(&format!(
        "  \"totals\": {{\"accepted\": {}, \"rejected\": {rejected}, \"done\": {done}, \
         \"cancelled\": {cancelled}, \"panicked\": 1, \"batches\": {}}},\n",
        report.stats.accepted, report.stats.batches
    ));
    j.push_str(&format!("  \"sustained_jobs_per_sec\": {throughput:.1},\n"));
    j.push_str(&format!("  \"wall_seconds\": {:.3},\n", wall.as_secs_f64()));
    j.push_str(&quantile_json("latency", &lq));
    j.push_str(",\n");
    j.push_str(&quantile_json("queue_wait", &wq));
    j.push_str(",\n");
    j.push_str(&quantile_json("service", &sq));
    j.push_str(",\n");
    j.push_str("  \"value_ok\": true\n");
    j.push_str("}\n");
    write_artifact("BENCH_server.json", &j);
}
