//! Allocation-area / heap-organisation ablation: how much of the
//! GpH-vs-Eden gap is garbage collection, and how far real
//! per-capability nurseries (ROADMAP item 1) close it.
//!
//! Rows climb from the paper's stop-the-world baseline through its
//! mitigations (bigger nursery, cheaper barrier), past the §VI
//! semi-distributed cost fiction, to the real mechanism: private
//! nurseries collected independently plus a parallel major GC. The
//! Eden row is the target profile — no global stops at all.
//!
//! ```text
//! cargo run -p rph-bench --release --bin alloc_area_ablation [--quick]
//! ```

use rph_bench::*;
use rph_core::prelude::*;
use rph_workloads::SumEuler;

struct Row {
    label: &'static str,
    elapsed: u64,
    global_gcs: u64,
    local_gcs: u64,
    barrier_wait: u64,
    gc_pause: u64,
    promoted_words: u64,
}

fn main() {
    let n = sum_euler_n();
    let caps = INTEL_CORES;
    let w = SumEuler::new(n);
    let expected = w.expected();
    println!("Allocation-area / heap-organisation ablation — sumEuler [1..{n}] on {caps} cores\n");

    let gph_rows: Vec<(&'static str, GphConfig)> = vec![
        ("stop-the-world, small area", GphConfig::ghc69_plain(caps)),
        (
            "stop-the-world, big area",
            GphConfig::ghc69_plain(caps).with_big_alloc_area(),
        ),
        (
            "stop-the-world, big area + improved sync",
            GphConfig::ghc69_plain(caps)
                .with_big_alloc_area()
                .with_improved_gc_sync(),
        ),
        (
            "semi-distributed fiction (global every 8)",
            GphConfig::ghc69_plain(caps).with_semi_distributed_heap(8),
        ),
        (
            "per-capability nurseries + parallel major",
            GphConfig::ghc69_plain(caps).with_per_cap_nurseries(),
        ),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (label, cfg) in gph_rows {
        let m = w.run_gph(cfg.without_trace()).expect("gph run");
        check(&m, expected, label);
        let s = m.gph_stats.unwrap();
        rows.push(Row {
            label,
            elapsed: m.elapsed,
            global_gcs: s.gcs,
            local_gcs: s.local_gcs,
            barrier_wait: s.gc_barrier_wait,
            gc_pause: s.gc_pause,
            promoted_words: s.promoted_words,
        });
    }
    let eden = w
        .run_eden(EdenConfig::new(caps).without_trace())
        .expect("eden run");
    check(&eden, expected, "eden");
    let es = eden.eden_stats.unwrap();
    rows.push(Row {
        label: "Eden (independent PE heaps)",
        elapsed: eden.elapsed,
        global_gcs: 0,
        local_gcs: es.local_gcs,
        barrier_wait: 0,
        gc_pause: es.gc_time,
        promoted_words: 0,
    });

    let eden_elapsed = eden.elapsed;
    let mut table = TextTable::new(&[
        "Heap organisation",
        "Runtime",
        "global GCs",
        "local/minor GCs",
        "barrier wait",
        "GC pause",
        "promoted",
        "vs Eden",
    ]);
    for r in &rows {
        table.row(&[
            r.label.to_string(),
            secs(r.elapsed),
            r.global_gcs.to_string(),
            r.local_gcs.to_string(),
            millis(r.barrier_wait),
            millis(r.gc_pause),
            format!("{}w", r.promoted_words),
            format!("{:.2}x", r.elapsed as f64 / eden_elapsed as f64),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");

    let stw = &rows[0];
    let nursery = &rows[4];
    let stw_gap = stw.elapsed as f64 / eden_elapsed as f64;
    let nursery_gap = nursery.elapsed as f64 / eden_elapsed as f64;
    println!(
        "gap to Eden: stop-the-world {:.2}x → per-cap nurseries {:.2}x",
        stw_gap, nursery_gap
    );

    // Shape checks — a regression here means the nursery model stopped
    // delivering its point. Panic (non-zero exit) so CI notices.
    assert!(
        nursery.global_gcs < stw.global_gcs,
        "per-cap nurseries must cut global GCs: {} !< {}",
        nursery.global_gcs,
        stw.global_gcs
    );
    assert!(
        nursery.barrier_wait + nursery.gc_pause < stw.barrier_wait + stw.gc_pause,
        "per-cap nurseries must cut stopped time"
    );
    assert!(
        nursery.local_gcs > 0 && nursery.promoted_words > 0,
        "minor collections must really run and evacuate survivors"
    );
    assert!(
        nursery_gap < stw_gap,
        "nursery model must close the GpH-vs-Eden gap: {nursery_gap:.2}x !< {stw_gap:.2}x"
    );
    println!("shape check: nurseries close the gap: YES");

    write_artifact("alloc_area_ablation.csv", &table.to_csv());
    write_artifact("alloc_area_ablation.txt", &rendered);
    let json = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "  {{\"label\": \"{}\", \"elapsed\": {}, \"global_gcs\": {}, ",
                    "\"local_gcs\": {}, \"barrier_wait\": {}, \"gc_pause\": {}, ",
                    "\"promoted_words\": {}, \"vs_eden\": {:.4}}}"
                ),
                r.label,
                r.elapsed,
                r.global_gcs,
                r.local_gcs,
                r.barrier_wait,
                r.gc_pause,
                r.promoted_words,
                r.elapsed as f64 / eden_elapsed as f64
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    write_artifact("alloc_area_ablation.json", &format!("[\n{json}\n]\n"));
}
