//! §VI, tested: "the speedups that can be achieved on eight or 16
//! cores will not scale when future systems with more cores are used
//! … The solution may be … a semi-distributed heap model."
//!
//! This binary pushes sumEuler to 8–64 cores and compares:
//!   * stop-the-world GpH (the paper's best configuration),
//!   * the same + the §VI semi-distributed heap (local nursery
//!     collections, global collection every 8th),
//!   * Eden's fully distributed heaps.
//!
//! ```text
//! cargo run -p rph-bench --release --bin future_manycore [--quick]
//! ```

use rph_bench::*;
use rph_core::prelude::*;
use rph_workloads::SumEuler;

fn main() {
    let n = sum_euler_n();
    let w = SumEuler::new(n).with_chunk_size((n / 600).max(1)); // finer grains for 64 caps
    let expected = w.expected();
    let seq = w.run_seq();
    println!(
        "Beyond 16 cores — sumEuler [1..{n}], speedup vs the sequential baseline ({})\n",
        secs(seq.elapsed)
    );

    let mut table = TextTable::new(&[
        "cores",
        "GpH stop-the-world",
        "(global GCs)",
        "GpH semi-distributed heap",
        "(global GCs)",
        "Eden distributed heaps",
    ]);
    for cores in [8usize, 16, 32, 64] {
        let stw_cfg = GphConfig::ghc69_plain(cores)
            .with_improved_gc_sync()
            .with_work_stealing()
            .without_trace();
        let stw = w.run_gph(stw_cfg.clone()).expect("stw");
        check(&stw, expected, "stw");
        let semi = w
            .run_gph(stw_cfg.with_semi_distributed_heap(8))
            .expect("semi");
        check(&semi, expected, "semi");
        let eden = w
            .run_eden(EdenConfig::new(cores).without_trace())
            .expect("eden");
        check(&eden, expected, "eden");
        table.row(&[
            cores.to_string(),
            format!("{:.2}", seq.elapsed as f64 / stw.elapsed as f64),
            stw.gph_stats.as_ref().unwrap().gcs.to_string(),
            format!("{:.2}", seq.elapsed as f64 / semi.elapsed as f64),
            semi.gph_stats.as_ref().unwrap().gcs.to_string(),
            format!("{:.2}", seq.elapsed as f64 / eden.elapsed as f64),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    println!("(Default nursery size on purpose: the stop-the-world barrier cost");
    println!("grows with the core count, which is exactly what the semi-distributed");
    println!("and fully distributed models avoid.)");
    write_artifact("future_manycore.csv", &table.to_csv());
}
