//! Fig. 2/4-style *wall-clock* trace diagrams for the native executor:
//! per-worker activity timelines, occupancy fractions and CSV dumps
//! for sumEuler, matmul and APSP at 1–8 workers, plus a measured
//! tracing-overhead report against the <5% budget.
//!
//! The simulators' trace binaries (`fig2_sumeuler_traces`,
//! `fig4_matmul_traces`) draw the same pictures in virtual time; this
//! binary is their real-thread counterpart — time on the x-axis is
//! nanoseconds from the run's shared `WallClock` epoch.
//!
//! ```text
//! cargo run -p rph-bench --release --bin trace_native [--quick]
//! ```

use rph_bench::*;
use rph_core::prelude::*;
use rph_native::NativeConfig;
use rph_trace::{render_csv, render_timeline, Counters, RenderOptions, State, Timeline};
use rph_workloads::{Apsp, MatMul, NativeMeasured, SumEuler};
use std::time::Duration;

/// Worker counts swept per workload.
fn worker_sweep() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// Worker count whose full timeline is rendered (and whose CSV is the
/// artifact) — the paper's trace figures are 4–8 core pictures.
const RENDER_WORKERS: usize = 4;

/// Repetitions for the overhead measurement; the minimum of each side
/// is compared, which suppresses scheduler noise.
const OVERHEAD_REPS: usize = 7;

/// Tracing overhead budget, percent of untraced wall time.
const OVERHEAD_BUDGET_PCT: f64 = 5.0;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Run `run` traced across the worker sweep: print the summary table,
/// render the RENDER_WORKERS timeline, return the interval CSV.
fn trace_workload(
    name: &str,
    expected: i64,
    run: impl Fn(&NativeConfig) -> NativeMeasured,
) -> String {
    println!("== {name} ==");
    let mut table = TextTable::new(&[
        "workers", "wall ms", "running%", "tasks", "steals", "splits", "parks", "dropped",
    ]);
    let mut csv = String::new();
    let mut rendered = String::new();
    for workers in worker_sweep() {
        let cfg = NativeConfig::steal(workers).with_trace();
        let m = run(&cfg);
        assert_eq!(m.value, expected, "{name}: wrong result — reproduction bug");
        let trace = m.trace.as_ref().expect("traced run returns a tracer");

        // The binary doubles as a live reconciliation check: event
        // totals must equal the executor's own counters whenever no
        // event was dropped.
        let c = Counters::from_tracer(trace);
        if m.trace_dropped == 0 {
            assert_eq!(c.native_tasks, m.stats.tasks_run, "{name} w={workers}");
            assert_eq!(c.native_steals, m.stats.steal_ops, "{name} w={workers}");
            assert_eq!(c.native_splits, m.stats.splits, "{name} w={workers}");
            assert_eq!(c.native_parks, m.stats.parks, "{name} w={workers}");
        }

        let tl = Timeline::from_tracer(trace);
        table.row(&[
            workers.to_string(),
            format!("{:.2}", ms(m.wall)),
            format!("{:.1}", tl.mean_fraction(State::Running) * 100.0),
            m.stats.tasks_run.to_string(),
            m.stats.steal_ops.to_string(),
            m.stats.splits.to_string(),
            m.stats.parks.to_string(),
            m.trace_dropped.to_string(),
        ]);
        if workers == RENDER_WORKERS {
            rendered = render_timeline(
                &tl,
                &RenderOptions {
                    width: 100,
                    color: false,
                    legend: true,
                },
            );
            csv = render_csv(&tl);
        }
    }
    let summary = table.render();
    println!("{summary}");
    println!("timeline at {RENDER_WORKERS} workers (ns axis):");
    println!("{rendered}");
    csv
}

/// Best-of-N traced vs untraced sumEuler at `RENDER_WORKERS` workers:
/// the tracing layer must stay under [`OVERHEAD_BUDGET_PCT`].
fn overhead_report(quick: bool) {
    let n = if quick { 1_500 } else { 6_000 };
    let se = SumEuler::new(n);
    let expected = se.expected();
    let plain_cfg = NativeConfig::steal(RENDER_WORKERS);
    let traced_cfg = plain_cfg.clone().with_trace();
    let mut plain = Duration::MAX;
    let mut traced = Duration::MAX;
    for _ in 0..OVERHEAD_REPS {
        let m = se.run_native(&plain_cfg);
        assert_eq!(m.value, expected);
        plain = plain.min(m.wall);
        let m = se.run_native(&traced_cfg);
        assert_eq!(m.value, expected);
        traced = traced.min(m.wall);
    }
    let pct = (ms(traced) - ms(plain)) / ms(plain) * 100.0;
    let verdict = if pct < OVERHEAD_BUDGET_PCT {
        "PASS"
    } else {
        "OVER BUDGET"
    };
    println!(
        "tracing overhead: sumEuler [1..{n}] @ {RENDER_WORKERS} workers, best of {OVERHEAD_REPS}:"
    );
    println!(
        "  untraced {:.2} ms, traced {:.2} ms -> {:+.2}% (budget {:.1}%) [{verdict}]",
        ms(plain),
        ms(traced),
        pct,
        OVERHEAD_BUDGET_PCT
    );
}

fn main() {
    let q = quick();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("Native wall-clock traces on this host ({cores} cores)\n");

    let mut csv = String::new();

    let n = if q { 1_500 } else { 6_000 };
    let se = SumEuler::new(n);
    csv.push_str(&trace_workload(
        &format!("sumEuler [1..{n}]"),
        se.expected(),
        |cfg| se.run_native(cfg),
    ));

    let (mn, grid) = if q { (240, 6) } else { (480, 8) };
    let mm = MatMul::new(mn, grid);
    csv.push_str(&trace_workload(
        &format!("matmul {mn}x{mn}, {grid}x{grid} blocks"),
        mm.expected(),
        |cfg| mm.run_native(cfg),
    ));

    let an = if q { 64 } else { 192 };
    let ap = Apsp::new(an);
    csv.push_str(&trace_workload(
        &format!("apsp {an} nodes (pivot waves)"),
        ap.expected(),
        |cfg| ap.run_native(cfg),
    ));

    overhead_report(q);
    write_artifact("trace_native.csv", &csv);
}
