//! Fig. 2/4-style *wall-clock* trace diagrams for the native
//! executors: per-worker activity timelines, occupancy fractions and
//! CSV dumps at 1–8 workers, plus a measured tracing-overhead report
//! against the <5% budget.
//!
//! Both native backends are traced: the work-stealing pool (steal,
//! split, park events) and the Eden-style message-passing backend
//! (send, receive and channel-block events, with the master as the
//! extra bottom row of each timeline — the native analogue of the
//! paper's EdenTV pictures).
//!
//! The simulators' trace binaries (`fig2_sumeuler_traces`,
//! `fig4_matmul_traces`) draw the same pictures in virtual time; this
//! binary is their real-thread counterpart — time on the x-axis is
//! nanoseconds from the run's shared `WallClock` epoch.
//!
//! ```text
//! cargo run -p rph-bench --release --bin trace_native [--quick] [--eden]
//! ```
//!
//! `--eden` renders only the Eden-backend sections (the CI smoke step
//! runs `--quick --eden`).

use rph_bench::*;
use rph_core::prelude::*;
use rph_native::{BackendKind, NativeConfig};
use rph_trace::{render_csv, render_timeline, Counters, RenderOptions, State, Timeline};
use rph_workloads::{registry, NativeWorkload, Scale};
use std::time::Duration;

/// Worker counts swept per workload.
fn worker_sweep() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// Worker count whose full timeline is rendered (and whose CSV is the
/// artifact) — the paper's trace figures are 4–8 core pictures.
const RENDER_WORKERS: usize = 4;

/// Repetitions for the overhead measurement; the minimum of each side
/// is compared, which suppresses scheduler noise.
const OVERHEAD_REPS: usize = 7;

/// Tracing overhead budget, percent of untraced wall time.
const OVERHEAD_BUDGET_PCT: f64 = 5.0;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Run `w` traced across the worker sweep on `backend`: print the
/// summary table, render the RENDER_WORKERS timeline, return the
/// interval CSV. The workload names itself (`name` + `default_params`).
fn trace_workload(w: &dyn NativeWorkload, backend: BackendKind) -> String {
    let name = format!("{} {}", w.name(), w.default_params());
    let name = name.as_str();
    let cols: &[&str] = match backend {
        BackendKind::Steal => &[
            "workers", "wall ms", "running%", "tasks", "steals", "splits", "parks", "dropped",
        ],
        BackendKind::Eden => &[
            "workers", "wall ms", "running%", "tasks", "msgs", "words", "sblk", "rblk", "dropped",
        ],
    };
    println!(
        "== {name} [{}] ==",
        match backend {
            BackendKind::Steal => "steal",
            BackendKind::Eden => "eden",
        }
    );
    let mut table = TextTable::new(cols);
    let mut csv = String::new();
    let mut rendered = String::new();
    for workers in worker_sweep() {
        let cfg = NativeConfig::new(workers)
            .with_backend(backend)
            .with_trace();
        let m = w.run_on(&cfg).expect("native run failed");
        assert_eq!(
            m.value,
            w.expected_value(),
            "{name}: wrong result — reproduction bug"
        );
        let trace = m.trace.as_ref().expect("traced run returns a tracer");

        // The binary doubles as a live reconciliation check: event
        // totals must equal the executor's own counters whenever no
        // event was dropped.
        let c = Counters::from_tracer(trace);
        if m.trace_dropped == 0 {
            assert_eq!(c.native_tasks, m.stats.tasks_run, "{name} w={workers}");
            assert_eq!(c.native_steals, m.stats.steal_ops, "{name} w={workers}");
            assert_eq!(c.native_splits, m.stats.splits, "{name} w={workers}");
            assert_eq!(c.messages_sent, m.stats.msgs_sent, "{name} w={workers}");
            assert_eq!(c.messages_received, m.stats.msgs_recv, "{name} w={workers}");
            assert_eq!(c.message_words, m.stats.words_sent, "{name} w={workers}");
            assert_eq!(
                c.native_send_blocks, m.stats.send_blocks,
                "{name} w={workers}"
            );
            assert_eq!(
                c.native_recv_blocks, m.stats.recv_blocks,
                "{name} w={workers}"
            );
            if backend == BackendKind::Steal {
                assert_eq!(c.native_parks, m.stats.parks, "{name} w={workers}");
            }
        }

        let tl = Timeline::from_tracer(trace);
        let mut row = vec![
            workers.to_string(),
            format!("{:.2}", ms(m.wall)),
            format!("{:.1}", tl.mean_fraction(State::Running) * 100.0),
            m.stats.tasks_run.to_string(),
        ];
        match backend {
            BackendKind::Steal => row.extend([
                m.stats.steal_ops.to_string(),
                m.stats.splits.to_string(),
                m.stats.parks.to_string(),
            ]),
            BackendKind::Eden => row.extend([
                m.stats.msgs_sent.to_string(),
                m.stats.words_sent.to_string(),
                m.stats.send_blocks.to_string(),
                m.stats.recv_blocks.to_string(),
            ]),
        }
        row.push(m.trace_dropped.to_string());
        table.row(&row);
        if workers == RENDER_WORKERS {
            rendered = render_timeline(
                &tl,
                &RenderOptions {
                    width: 100,
                    color: false,
                    legend: true,
                },
            );
            csv = render_csv(&tl);
        }
    }
    let summary = table.render();
    println!("{summary}");
    println!("timeline at {RENDER_WORKERS} workers (ns axis):");
    println!("{rendered}");
    csv
}

/// Best-of-N traced vs untraced sumEuler at `RENDER_WORKERS` workers:
/// the tracing layer must stay under [`OVERHEAD_BUDGET_PCT`].
fn overhead_report(scale: Scale) {
    let se = registry(scale)
        .into_iter()
        .find(|w| w.name() == "sum_euler")
        .expect("registry carries sum_euler");
    let n = se.default_params();
    let expected = se.expected_value();
    let plain_cfg = NativeConfig::steal(RENDER_WORKERS);
    let traced_cfg = plain_cfg.clone().with_trace();
    let mut plain = Duration::MAX;
    let mut traced = Duration::MAX;
    for _ in 0..OVERHEAD_REPS {
        let m = se.run_on(&plain_cfg).expect("native run failed");
        assert_eq!(m.value, expected);
        plain = plain.min(m.wall);
        let m = se.run_on(&traced_cfg).expect("native run failed");
        assert_eq!(m.value, expected);
        traced = traced.min(m.wall);
    }
    let pct = (ms(traced) - ms(plain)) / ms(plain) * 100.0;
    let verdict = if pct < OVERHEAD_BUDGET_PCT {
        "PASS"
    } else {
        "OVER BUDGET"
    };
    println!(
        "tracing overhead: sum_euler {n} @ {RENDER_WORKERS} workers, best of {OVERHEAD_REPS}:"
    );
    println!(
        "  untraced {:.2} ms, traced {:.2} ms -> {:+.2}% (budget {:.1}%) [{verdict}]",
        ms(plain),
        ms(traced),
        pct,
        OVERHEAD_BUDGET_PCT
    );
}

fn main() {
    let eden = eden_only();
    let scale = bench_scale();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("Native wall-clock traces on this host ({cores} cores)\n");

    // Both backends trace every registry workload — the steal pool's
    // steal/split/park pictures and the Eden skeletons' message
    // pictures: par_map (sum_euler, matmul), ring (apsp),
    // master_worker (nqueens), exchange (episim).
    let workloads = registry(scale);

    let mut csv = String::new();
    if !eden {
        for w in &workloads {
            csv.push_str(&trace_workload(w.as_ref(), BackendKind::Steal));
        }
    }

    let mut eden_csv = String::new();
    for w in &workloads {
        eden_csv.push_str(&trace_workload(w.as_ref(), BackendKind::Eden));
    }

    if !eden {
        overhead_report(scale);
        csv.push_str(&eden_csv);
        write_artifact("trace_native.csv", &csv);
    } else {
        write_artifact("trace_native_eden.csv", &eden_csv);
    }
}
