//! The Eden oversubscription sweep plus the cluster topology ablation.
//!
//! Two experiments in one binary, both self-asserting (a violated
//! shape gate is a non-zero exit, so CI catches regressions):
//!
//! 1. **Native Eden PE oversubscription** — the paper's §V observation
//!    that Eden under PVM tolerates more PEs than cores (Fig. 4 runs
//!    2×). We drive the native Eden backend at 1×–16× the host's core
//!    count and assert the 4× point stays within 1.05× of the 1× wall
//!    clock (best-of-reps — the stable statistic on a noisy shared
//!    host): PEs are cheap blocked threads, not busy spinners, so
//!    oversubscription must not collapse throughput.
//!
//! 2. **Sim topology ablation** — 16–256 modeled cores arranged as a
//!    cluster of 8-core nodes, comparing a single flat node against
//!    the two-level topology with hierarchical (steal-local-first,
//!    batched-remote) and flat (uniform victims, single-spark remote
//!    transfers) stealing. Gates: at ≥2 nodes, hierarchical stealing
//!    must cut both the remote steal count and the total inter-node
//!    words moved versus flat stealing.
//!
//! ```text
//! cargo run -p rph-bench --release --bin oversub_sweep [--quick]
//! ```

use rph_bench::*;
use rph_core::prelude::*;
use rph_workloads::{NQueens, SumEuler};
use std::time::Duration;

/// Repetitions per native timing point (median taken).
fn reps() -> usize {
    if quick() {
        3
    } else {
        5
    }
}

struct OversubPoint {
    mult: usize,
    pes: usize,
    wall: Duration,
    best: Duration,
}

/// Part 1: native Eden at 1×–16× PE oversubscription.
fn native_oversub(rows: &mut Vec<String>) -> Vec<OversubPoint> {
    let base = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // NQueens under the master–worker skeleton: demand-driven feeding
    // is exactly what oversubscription stresses. Fixed size even under
    // --quick (the kernel-gate policy): a 5% wall-clock gate needs
    // tens-of-ms runs, not toy sizes where thread-spawn jitter alone
    // exceeds the slop.
    let n: usize = 11;
    let w = NQueens::new(n).with_spawn_depth(3);
    println!("Native Eden oversubscription — {n}-queens (master-worker), {base} host core(s)\n");
    let mut table = TextTable::new(&["PEs", "× cores", "median wall", "vs 1×"]);
    const MULTS: [usize; 5] = [1, 2, 4, 8, 16];
    // Reps interleaved round-robin across the multiples so a slow
    // phase on a shared host degrades every point equally instead of
    // biasing one side of the gate ratio; the min (best-of-reps, the
    // SIMD-gate policy) then discards the slow rounds.
    let mut walls: Vec<Vec<Duration>> = vec![Vec::new(); MULTS.len()];
    for _ in 0..reps().max(5) {
        for (i, mult) in MULTS.into_iter().enumerate() {
            let pes = base * mult;
            let cfg = NativeConfig::new(pes).with_backend(BackendKind::Eden);
            let ctx = format!("eden pes={pes} ({mult}x)");
            walls[i].push(oracles::checked_run(&w, &cfg, &ctx).wall);
        }
    }
    let mut points: Vec<OversubPoint> = Vec::new();
    for (i, mult) in MULTS.into_iter().enumerate() {
        let pes = base * mult;
        walls[i].sort();
        let (wall, best) = (walls[i][walls[i].len() / 2], walls[i][0]);
        let rel = wall.as_secs_f64()
            / points
                .first()
                .map_or(wall.as_secs_f64(), |p: &OversubPoint| p.wall.as_secs_f64());
        table.row(&[
            pes.to_string(),
            format!("{mult}x"),
            format!("{:.1} ms", wall.as_secs_f64() * 1e3),
            format!("{rel:.2}"),
        ]);
        rows.push(format!(
            "{{\"pes\": {pes}, \"mult\": {mult}, \"median_ns\": {}, \"min_ns\": {}}}",
            wall.as_nanos(),
            best.as_nanos()
        ));
        points.push(OversubPoint {
            mult,
            pes,
            wall,
            best,
        });
    }
    let rendered = table.render();
    println!("{rendered}");
    points
}

/// Gate: the 4× point must stay within `SLOP` of the 1× point.
fn assert_oversub_gate(points: &[OversubPoint]) {
    const SLOP: f64 = 1.05;
    let at = |mult: usize| {
        points
            .iter()
            .find(|p| p.mult == mult)
            .expect("sweep includes this multiple")
    };
    let (one, four) = (at(1), at(4));
    let ratio = four.best.as_secs_f64() / one.best.as_secs_f64();
    println!(
        "gate: best wall({} PEs) / best wall({} PEs) = {ratio:.3} (limit {SLOP})",
        four.pes, one.pes
    );
    assert!(
        ratio <= SLOP,
        "oversubscription gate: 4x PEs took {ratio:.3}x the 1x wall clock \
         (best-of-reps, limit {SLOP}) — blocked PEs must stay cheap"
    );
}

struct TopoPoint {
    cores: usize,
    label: &'static str,
    elapsed: rph_trace::Time,
    stats: rph_gph::GphStats,
}

/// Part 2: sim topology ablation on clusters of 8-core nodes.
fn sim_topology(rows: &mut Vec<String>) -> Vec<TopoPoint> {
    const PER_NODE: usize = 8;
    let n = sum_euler_n();
    let w = SumEuler::new(n).with_chunk_size((n / 600).max(1)); // finer grains for many caps
    let expected = w.expected();
    let sweep: &[usize] = if quick() {
        &[16, 32]
    } else {
        &[16, 32, 64, 128, 256]
    };
    println!("\nSim cluster topology — sumEuler [1..{n}], nodes of {PER_NODE} cores\n");
    let mut table = TextTable::new(&[
        "cores",
        "nodes",
        "model",
        "runtime",
        "stolen",
        "remote steals",
        "remote words",
    ]);
    let mut points = Vec::new();
    for &cores in sweep {
        let nodes = cores / PER_NODE;
        let base = GphConfig::ghc69_plain(cores)
            .with_improved_gc_sync()
            .with_work_stealing()
            .without_trace();
        let variants: [(&'static str, GphConfig); 3] = [
            ("single node", base.clone()),
            (
                "cluster, hierarchical",
                base.clone().with_topology(nodes, PER_NODE),
            ),
            (
                "cluster, flat stealing",
                base.with_topology(nodes, PER_NODE).with_flat_stealing(),
            ),
        ];
        for (label, cfg) in variants {
            let m = w.run_gph(cfg).expect(label);
            check(&m, expected, label);
            let stats = m.gph_stats.clone().expect("gph run has stats");
            table.row(&[
                cores.to_string(),
                nodes.to_string(),
                label.to_string(),
                secs(m.elapsed),
                stats.sparks_stolen.to_string(),
                stats.steal_remote.to_string(),
                stats.remote_words.to_string(),
            ]);
            rows.push(format!(
                "{{\"cores\": {cores}, \"nodes\": {nodes}, \"model\": \"{label}\", \
                 \"elapsed_ns\": {}, \"sparks_stolen\": {}, \"steal_local\": {}, \
                 \"steal_remote\": {}, \"remote_words\": {}}}",
                m.elapsed,
                stats.sparks_stolen,
                stats.steal_local,
                stats.steal_remote,
                stats.remote_words
            ));
            points.push(TopoPoint {
                cores,
                label,
                elapsed: m.elapsed,
                stats,
            });
        }
    }
    let rendered = table.render();
    println!("{rendered}");
    points
}

/// Gates: hierarchical stealing must beat flat stealing on remote
/// traffic at every multi-node size, and single-node runs must not
/// pay any remote costs at all.
fn assert_topology_gates(points: &[TopoPoint]) {
    let find = |cores: usize, label: &str| {
        points
            .iter()
            .find(|p| p.cores == cores && p.label == label)
            .expect("ablation includes this point")
    };
    let sizes: Vec<usize> = {
        let mut s: Vec<usize> = points.iter().map(|p| p.cores).collect();
        s.dedup();
        s
    };
    for cores in sizes {
        let single = find(cores, "single node");
        assert_eq!(
            single.stats.steal_remote, 0,
            "{cores} cores: a single-node run must not record remote steals"
        );
        assert_eq!(
            single.stats.remote_words, 0,
            "{cores} cores: a single-node run must not move inter-node words"
        );
        if cores <= 8 {
            continue; // one node: nothing remote to compare
        }
        let hier = find(cores, "cluster, hierarchical");
        let flat = find(cores, "cluster, flat stealing");
        assert!(
            flat.stats.steal_remote > 0,
            "{cores} cores: flat stealing on a cluster should cross nodes"
        );
        assert!(
            hier.stats.steal_remote < flat.stats.steal_remote,
            "{cores} cores: hierarchical stealing must cut remote steal count \
             (hier {} vs flat {})",
            hier.stats.steal_remote,
            flat.stats.steal_remote
        );
        assert!(
            hier.stats.remote_words < flat.stats.remote_words,
            "{cores} cores: hierarchical stealing must cut inter-node words \
             (hier {} vs flat {})",
            hier.stats.remote_words,
            flat.stats.remote_words
        );
        println!(
            "gate: {cores} cores — remote steals {} -> {}, remote words {} -> {}, \
             runtime {} -> {}",
            flat.stats.steal_remote,
            hier.stats.steal_remote,
            flat.stats.remote_words,
            hier.stats.remote_words,
            secs(flat.elapsed),
            secs(hier.elapsed),
        );
    }
}

fn main() {
    let mut oversub_rows = Vec::new();
    let points = native_oversub(&mut oversub_rows);
    assert_oversub_gate(&points);

    let mut topo_rows = Vec::new();
    let topo = sim_topology(&mut topo_rows);
    assert_topology_gates(&topo);

    let mut csv = String::from("section,cores_or_pes,model,elapsed_ns,steal_remote,remote_words\n");
    for p in &points {
        csv.push_str(&format!(
            "oversub,{},{}x,{},,\n",
            p.pes,
            p.mult,
            p.wall.as_nanos()
        ));
    }
    for p in &topo {
        csv.push_str(&format!(
            "topology,{},{},{},{},{}\n",
            p.cores, p.label, p.elapsed, p.stats.steal_remote, p.stats.remote_words
        ));
    }
    write_artifact("oversub_sweep.csv", &csv);
    let json = format!(
        "{{\n  \"schema\": \"rph-oversub-sweep/v1\",\n  \"oversub\": [\n    {}\n  ],\n  \"topology\": [\n    {}\n  ]\n}}\n",
        oversub_rows.join(",\n    "),
        topo_rows.join(",\n    ")
    );
    write_artifact("oversub_sweep.json", &json);
    write_artifact(
        "oversub_sweep.txt",
        "All oversubscription and topology gates passed; see oversub_sweep.{csv,json}.\n",
    );
    println!("\nAll gates passed.");
}
