//! Decomposition study (extends §V): how the *same* Eden sumEuler
//! behaves under three task decompositions, against the GpH dynamic
//! baseline. The paper attributes its Eden run's "sub-optimal static
//! load balance" to the naive contiguous split; this binary quantifies
//! it and shows the two standard fixes (striping, and the paper's
//! `masterWorker` skeleton for "irregularly-sized tasks").
//!
//! ```text
//! cargo run -p rph-bench --release --bin decomposition_sumeuler [--quick]
//! ```

use rph_bench::*;
use rph_core::prelude::*;
use rph_workloads::SumEuler;

fn main() {
    let n = sum_euler_n();
    let caps = INTEL_CORES;
    let w = SumEuler::new(n);
    let expected = w.expected();
    println!("Task decomposition — sumEuler [1..{n}], {caps} cores/PEs\n");

    let mut table = TextTable::new(&["decomposition", "runtime", "messages", "notes"]);

    let m = w
        .run_eden_contiguous(EdenConfig::new(caps).without_trace())
        .expect("contiguous");
    check(&m, expected, "contiguous");
    table.row(&[
        "Eden, contiguous splitIntoN".into(),
        secs(m.elapsed),
        m.eden_stats.as_ref().unwrap().messages.to_string(),
        "last PE gets the heaviest k's".into(),
    ]);

    let m = w
        .run_eden(EdenConfig::new(caps).without_trace())
        .expect("striped");
    check(&m, expected, "striped");
    table.row(&[
        "Eden, round-robin stripes (unshuffle)".into(),
        secs(m.elapsed),
        m.eden_stats.as_ref().unwrap().messages.to_string(),
        "static but balanced".into(),
    ]);

    for prefetch in [1usize, 2, 4] {
        let m = w
            .run_eden_master_worker(EdenConfig::new(caps).without_trace(), prefetch)
            .expect("masterWorker");
        check(&m, expected, "masterWorker");
        table.row(&[
            format!("Eden, masterWorker (prefetch {prefetch})"),
            secs(m.elapsed),
            m.eden_stats.as_ref().unwrap().messages.to_string(),
            "dynamic, demand-driven".into(),
        ]);
    }

    let m = w
        .run_gph(
            GphConfig::ghc69_plain(caps)
                .with_big_alloc_area()
                .with_improved_gc_sync()
                .with_work_stealing()
                .without_trace(),
        )
        .expect("gph");
    check(&m, expected, "gph");
    table.row(&[
        "GpH, work stealing (dynamic)".into(),
        secs(m.elapsed),
        "-".into(),
        "shared heap, spark per chunk".into(),
    ]);

    let rendered = table.render();
    println!("{rendered}");
    write_artifact("decomposition_sumeuler.csv", &table.to_csv());
}
