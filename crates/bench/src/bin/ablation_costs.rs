//! Cost-model robustness: the reproduction's conclusions should not
//! hinge on exact values of the overhead constants. This ablation
//! scales each key constant ×½ and ×2 and re-checks the two headline
//! shapes on sumEuler (8 cores):
//!
//!   1. the Fig. 1 ladder stays monotone (plain ≥ +area ≥ +sync ≥ +steal), and
//!   2. Eden stays competitive with the best GpH (within 25 %).
//!
//! ```text
//! cargo run -p rph-bench --release --bin ablation_costs [--quick]
//! ```

use rph_bench::*;
use rph_core::prelude::*;
use rph_core::sim::Costs;
use rph_workloads::SumEuler;

fn main() {
    let n = if quick() { 2_000 } else { 8_000 };
    let caps = INTEL_CORES;
    let w = SumEuler::new(n);
    let expected = w.expected();
    println!("Cost-model robustness — sumEuler [1..{n}], {caps} cores\n");

    type Knob = (&'static str, fn(&mut Costs, f64));
    let knobs: [Knob; 6] = [
        ("gc_fixed", |c, f| c.gc_fixed = scale(c.gc_fixed, f)),
        ("gc_sync_per_cap_original", |c, f| {
            c.gc_sync_per_cap_original = scale(c.gc_sync_per_cap_original, f)
        }),
        ("steal_attempt", |c, f| {
            c.steal_attempt = scale(c.steal_attempt, f)
        }),
        ("ctx_switch", |c, f| c.ctx_switch = scale(c.ctx_switch, f)),
        ("msg_latency", |c, f| {
            c.msg_latency = scale(c.msg_latency, f)
        }),
        ("thread_create", |c, f| {
            c.thread_create = scale(c.thread_create, f)
        }),
    ];

    let mut table = TextTable::new(&[
        "perturbation",
        "plain",
        "+area",
        "+sync",
        "+steal",
        "Eden",
        "ladder monotone",
        "Eden within 25% of best GpH",
    ]);
    let mut all_hold = true;
    let mut scenarios: Vec<(String, Costs)> = vec![("baseline".into(), Costs::default())];
    for (name, apply) in &knobs {
        for factor in [0.5, 2.0] {
            let mut c = Costs::default();
            apply(&mut c, factor);
            scenarios.push((format!("{name} ×{factor}"), c));
        }
    }

    for (label, costs) in scenarios {
        let mut times = Vec::new();
        for (_, mut cfg) in GphConfig::fig1_ladder(caps) {
            cfg.costs = costs.clone();
            let m = w.run_gph(cfg.without_trace()).expect("gph");
            check(&m, expected, &label);
            times.push(m.elapsed);
        }
        let mut ec = EdenConfig::new(caps).without_trace();
        ec.costs = costs.clone();
        let me = w.run_eden(ec).expect("eden");
        check(&me, expected, &label);

        let monotone = times.windows(2).all(|p| p[1] <= p[0] + p[0] / 50); // 2% slack
        let best_gph = *times.iter().min().unwrap();
        let eden_ok = (me.elapsed as f64) <= best_gph as f64 * 1.25;
        all_hold &= monotone && eden_ok;
        table.row(&[
            label,
            secs(times[0]),
            secs(times[1]),
            secs(times[2]),
            secs(times[3]),
            secs(me.elapsed),
            yes(monotone).into(),
            yes(eden_ok).into(),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "all shape checks hold under every perturbation: {}",
        yes(all_hold)
    );
    write_artifact("ablation_costs.csv", &table.to_csv());
}

fn scale(x: u64, f: f64) -> u64 {
    (x as f64 * f) as u64
}

fn yes(b: bool) -> &'static str {
    if b {
        "YES"
    } else {
        "NO"
    }
}
