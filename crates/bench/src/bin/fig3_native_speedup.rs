//! Native (wall-clock) analogue of Fig. 3: the same decompositions the
//! simulator sweeps, run on real OS threads through the Chase–Lev
//! work-stealing executor, both distribution policies (§IV.A.2's
//! push-vs-steal axis).
//!
//! Speedups are relative (each policy against its own one-worker
//! time), like the paper's figures. On a single-core host every
//! speedup column reads ≈1.00 — the executor still runs all tasks,
//! there is just no parallelism to win; run on a multicore machine for
//! the real curves.
//!
//! ```text
//! cargo run -p rph-bench --release --bin fig3_native_speedup [--quick]
//! ```

use rph_bench::*;
use rph_core::prelude::*;
use rph_native::{Distribution, NativeConfig};
use rph_workloads::{Apsp, MatMul, NQueens, NativeWorkload, SumEuler};
use std::time::Duration;

/// Worker counts swept (the host caps real parallelism, not the sweep).
fn worker_sweep() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// Repetitions per point; the minimum wall time is reported.
const REPS: usize = 3;

struct Point {
    workers: usize,
    steal: Duration,
    push: Duration,
}

fn measure(name: &str, w: &dyn NativeWorkload) -> Vec<Point> {
    let mut points = Vec::new();
    for workers in worker_sweep() {
        let mut best = [Duration::MAX; 2];
        for (slot, mode) in [Distribution::Steal, Distribution::Push].iter().enumerate() {
            let cfg = NativeConfig::new(workers).with_distribution(*mode);
            for _ in 0..REPS {
                let ctx = format!("{name}, {workers} workers, {mode:?}");
                let m = oracles::checked_run(w, &cfg, &ctx);
                best[slot] = best[slot].min(m.wall);
            }
        }
        points.push(Point {
            workers,
            steal: best[0],
            push: best[1],
        });
    }
    points
}

fn report(name: &str, points: &[Point]) -> String {
    let base_steal = points[0].steal.as_secs_f64();
    let base_push = points[0].push.as_secs_f64();
    let mut table = TextTable::new(&[
        "workers",
        "steal ms",
        "steal speedup",
        "push ms",
        "push speedup",
    ]);
    for p in points {
        table.row(&[
            p.workers.to_string(),
            format!("{:.2}", p.steal.as_secs_f64() * 1e3),
            format!("{:.2}", base_steal / p.steal.as_secs_f64()),
            format!("{:.2}", p.push.as_secs_f64() * 1e3),
            format!("{:.2}", base_push / p.push.as_secs_f64()),
        ]);
    }
    println!("{name}");
    let rendered = table.render();
    println!("{rendered}");
    table.to_csv()
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Native wall-clock speedups on this host ({cores} core{}), {REPS} reps, best-of\n",
        if cores == 1 { "" } else { "s" }
    );
    if cores < 4 {
        println!(
            "note: fewer than 4 cores available — expect flat speedup curves;\n\
             the >1.5x @ 4 workers target applies on a multicore host\n"
        );
    }

    let mut csv = String::new();

    let n = if quick() { 1_500 } else { 6_000 };
    let se = SumEuler::new(n);
    let points = measure(&format!("sumEuler [1..{n}] (uncached totients)"), &se);
    csv.push_str(&report(&format!("sumEuler [1..{n}]"), &points));

    let (mn, grid) = if quick() { (240, 6) } else { (480, 8) };
    let mm = MatMul::new(mn, grid);
    let points = measure(&format!("matmul {mn}x{mn}, {grid}x{grid} blocks"), &mm);
    csv.push_str(&report(&format!("matmul {mn}x{mn}"), &points));

    let an = if quick() { 96 } else { 256 };
    let ap = Apsp::new(an);
    let points = measure(&format!("apsp {an} nodes (pivot waves)"), &ap);
    csv.push_str(&report(&format!("apsp {an} nodes"), &points));

    let (qn, depth) = if quick() { (11, 3) } else { (13, 4) };
    let nq = NQueens::new(qn).with_spawn_depth(depth);
    let points = measure(&format!("nqueens {qn} (spawn depth {depth})"), &nq);
    csv.push_str(&report(&format!("nqueens {qn}"), &points));

    // The adaptive-granularity ablation: fixed-chunk (PR 1 executor)
    // vs lazy-split sumEuler, and pooled vs respawn-per-wave APSP.
    csv.push_str(&granularity::run(quick(), granularity::Ablation::All));

    write_artifact("fig3_native_speedup.csv", &csv);
}
