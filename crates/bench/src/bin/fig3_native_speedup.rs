//! Native (wall-clock) analogue of Fig. 3: the same decompositions the
//! simulator sweeps, run on real OS threads through the Chase–Lev
//! work-stealing executor, both distribution policies (§IV.A.2's
//! push-vs-steal axis).
//!
//! Speedups are relative (each policy against its own one-worker
//! time), like the paper's figures. On a single-core host every
//! speedup column reads ≈1.00 — the executor still runs all tasks,
//! there is just no parallelism to win; run on a multicore machine for
//! the real curves.
//!
//! ```text
//! cargo run -p rph-bench --release --bin fig3_native_speedup [--quick]
//! ```

use rph_bench::*;
use rph_core::prelude::*;
use rph_native::{Distribution, NativeConfig};
use rph_workloads::{registry, NativeWorkload};
use std::time::Duration;

/// Worker counts swept (the host caps real parallelism, not the sweep).
fn worker_sweep() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// Repetitions per point; the minimum wall time is reported.
const REPS: usize = 3;

struct Point {
    workers: usize,
    steal: Duration,
    push: Duration,
}

/// Both distribution policies over the shared sweep loop; best-of-REPS
/// per point (this binary's statistic — the speedup curves want the
/// noise floor, not the typical run).
fn measure(w: &dyn NativeWorkload) -> Vec<Point> {
    let sweep_with = |mode: Distribution| {
        sweep_workload(w, &worker_sweep(), REPS, |workers| {
            NativeConfig::new(workers).with_distribution(mode)
        })
    };
    let steal = sweep_with(Distribution::Steal);
    let push = sweep_with(Distribution::Push);
    steal
        .iter()
        .zip(&push)
        .map(|(s, p)| Point {
            workers: s.workers,
            steal: s.best().wall,
            push: p.best().wall,
        })
        .collect()
}

fn report(name: &str, points: &[Point]) -> String {
    let base_steal = points[0].steal.as_secs_f64();
    let base_push = points[0].push.as_secs_f64();
    let mut table = TextTable::new(&[
        "workers",
        "steal ms",
        "steal speedup",
        "push ms",
        "push speedup",
    ]);
    for p in points {
        table.row(&[
            p.workers.to_string(),
            format!("{:.2}", p.steal.as_secs_f64() * 1e3),
            format!("{:.2}", base_steal / p.steal.as_secs_f64()),
            format!("{:.2}", p.push.as_secs_f64() * 1e3),
            format!("{:.2}", base_push / p.push.as_secs_f64()),
        ]);
    }
    println!("{name}");
    let rendered = table.render();
    println!("{rendered}");
    table.to_csv()
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Native wall-clock speedups on this host ({cores} core{}), {REPS} reps, best-of\n",
        if cores == 1 { "" } else { "s" }
    );
    if cores < 4 {
        println!(
            "note: fewer than 4 cores available — expect flat speedup curves;\n\
             the >1.5x @ 4 workers target applies on a multicore host\n"
        );
    }

    let mut csv = String::new();

    // Workloads and sizes come from the registry; each entry names
    // itself, so this binary holds no workload table of its own.
    for w in registry(bench_scale()) {
        let name = format!("{} {}", w.name(), w.default_params());
        let points = measure(w.as_ref());
        csv.push_str(&report(&name, &points));
    }

    // The adaptive-granularity ablation: fixed-chunk (PR 1 executor)
    // vs lazy-split sumEuler, and pooled vs respawn-per-wave APSP.
    csv.push_str(&granularity::run(quick(), granularity::Ablation::All));

    write_artifact("fig3_native_speedup.csv", &csv);
}
