//! Fig. 3 (left): "Relative speedup for sumEuler" on the 16-core AMD
//! machine — five versions swept over 1–16 cores. Speedups are
//! *relative* (each version against its own one-core time), as the
//! paper reports "for fairness".
//!
//! ```text
//! cargo run -p rph-bench --release --bin fig3_speedup_sumeuler [--quick]
//! ```

use rph_bench::*;
use rph_core::compare::SpeedupSeries;
use rph_core::prelude::*;
use rph_workloads::SumEuler;

fn main() {
    let n = sum_euler_n();
    let cores = sweep_cores();
    let w = SumEuler::new(n);
    let expected = w.expected();
    println!(
        "Fig. 3 left — sumEuler [1..{n}] relative speedups, 1–{} cores\n",
        AMD_CORES
    );

    let mut series: Vec<SpeedupSeries> = Vec::new();
    for version in five_versions(AMD_CORES) {
        let label = version.label().to_string();
        let s = SpeedupSeries::measure(&label, &cores, |c| match &version {
            Version::Gph(_, cfg) => {
                let mut cfg = cfg.clone().without_trace();
                cfg.caps = c;
                let m = w.run_gph(cfg).expect("gph run");
                check(&m, expected, &label);
                m.elapsed
            }
            Version::Eden(..) => {
                let m = w
                    .run_eden(EdenConfig::new(c).without_trace())
                    .expect("eden run");
                check(&m, expected, &label);
                m.elapsed
            }
        });
        series.push(s);
    }

    print_speedup_table("fig3_sumeuler", &cores, &series);
}

/// Shared renderer for the speedup figures.
pub fn print_speedup_table(name: &str, cores: &[usize], series: &[SpeedupSeries]) {
    let mut header: Vec<String> = vec!["cores".to_string()];
    header.extend(series.iter().map(|s| s.label.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    for &c in cores {
        let mut row = vec![c.to_string()];
        for s in series {
            let base = s.one_core().expect("1-core point");
            let sp = rph_core::compare::relative_speedup(base, s.at(c).expect("point"));
            row.push(format!("{sp:.2}"));
        }
        table.row(&row);
    }
    let rendered = table.render();
    println!("{rendered}");
    let chart_series: Vec<(String, Vec<(usize, f64)>)> = series
        .iter()
        .map(|s| (s.label.clone(), s.speedups(s.one_core().unwrap())))
        .collect();
    println!("{}", rph_core::compare::render_chart(&chart_series, 16));
    write_artifact(&format!("{name}_speedup.csv"), &table.to_csv());

    // Absolute virtual runtimes, for EXPERIMENTS.md.
    let mut abs = TextTable::new(&header_refs);
    for &c in cores {
        let mut row = vec![c.to_string()];
        for s in series {
            row.push(format!("{:.3}", s.at(c).unwrap() as f64 / 1e9));
        }
        abs.row(&row);
    }
    write_artifact(&format!("{name}_runtimes_sec.csv"), &abs.to_csv());
}
