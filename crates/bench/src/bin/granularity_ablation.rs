//! Scheduling ablations: fixed-chunk dealing vs lazy range splitting
//! on sumEuler (chunk_size ∈ {1, 10, paper-default}),
//! persistent-pool vs respawn-per-wave on APSP, and randomized vs
//! round-robin victim selection — pick one table (or all) with
//! `--ablation`.
//!
//! With `--quick` the inputs are tiny but still drive every new code
//! path — batch steals, range splits, idle parking, pool reuse — which
//! is what the CI smoke step runs on every push.
//!
//! ```text
//! cargo run -p rph-bench --release --bin granularity_ablation \
//!     [--quick] [--ablation granularity|pool-reuse|steal-policy|all]
//! ```

use rph_bench::granularity::Ablation;
use rph_bench::{granularity, quick, write_artifact};

fn ablation_arg() -> Ablation {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--ablation" {
            let v = args.next().unwrap_or_default();
            return Ablation::parse(&v).unwrap_or_else(|| {
                eprintln!("unknown --ablation value {v:?}; expected granularity, pool-reuse, steal-policy or all");
                std::process::exit(2);
            });
        }
    }
    Ablation::All
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Scheduling ablations on this host ({cores} core{})\n",
        if cores == 1 { "" } else { "s" }
    );
    if cores < 4 {
        println!(
            "note: fewer than 4 cores available — fixed-vs-lazy gaps shrink\n\
             when there is no real parallelism to schedule\n"
        );
    }
    let csv = granularity::run(quick(), ablation_arg());
    write_artifact("granularity_ablation.csv", &csv);
}
