//! Adaptive-granularity ablation: fixed-chunk dealing vs lazy range
//! splitting on sumEuler (chunk_size ∈ {1, 10, paper-default}), and
//! persistent-pool vs respawn-per-wave on APSP.
//!
//! With `--quick` the inputs are tiny but still drive every new code
//! path — batch steals, range splits, idle parking, pool reuse — which
//! is what the CI smoke step runs on every push.
//!
//! ```text
//! cargo run -p rph-bench --release --bin granularity_ablation [--quick]
//! ```

use rph_bench::{granularity, quick, write_artifact};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Adaptive-granularity ablation on this host ({cores} core{})\n",
        if cores == 1 { "" } else { "s" }
    );
    if cores < 4 {
        println!(
            "note: fewer than 4 cores available — fixed-vs-lazy gaps shrink\n\
             when there is no real parallelism to schedule\n"
        );
    }
    let csv = granularity::run(quick());
    write_artifact("granularity_ablation.csv", &csv);
}
