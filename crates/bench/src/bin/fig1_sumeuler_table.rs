//! Fig. 1: "Parallel runtimes of the sumEuler program for [1..15000]"
//! on the 8-core machine — the optimisation-ladder table.
//!
//! ```text
//! cargo run -p rph-bench --release --bin fig1_sumeuler_table [--quick]
//! ```

use rph_bench::*;
use rph_core::prelude::*;
use rph_workloads::SumEuler;

fn main() {
    let n = sum_euler_n();
    let caps = INTEL_CORES;
    let w = SumEuler::new(n);
    let expected = w.expected();
    println!("Fig. 1 — sumEuler [1..{n}] on {caps} cores (paper: 2.75 / 2.58 / 2.44 / 2.30 / 2.24 sec.)\n");

    let mut table = TextTable::new(&[
        "Program version and runtime system",
        "Runtime",
        "GCs",
        "barrier wait",
        "GC pause",
        "sparks stolen/pushed",
        "steals local/remote",
    ]);
    let mut prev = u64::MAX;
    let mut ladder_monotone = true;
    for version in five_versions(caps) {
        let (elapsed, gcs, barrier, pause, dist, locality) = match &version {
            Version::Gph(_, cfg) => {
                let m = w.run_gph(cfg.clone().without_trace()).expect("gph run");
                check(&m, expected, version.label());
                let s = m.gph_stats.unwrap();
                // Fig. 1 is the paper's single-node machine: the
                // topology layer must price nothing as remote here.
                assert_eq!(s.steal_remote, 0, "single-node run recorded remote steals");
                assert_eq!(s.remote_words, 0, "single-node run moved inter-node words");
                (
                    m.elapsed,
                    s.gcs,
                    millis(s.gc_barrier_wait),
                    millis(s.gc_pause),
                    format!("{}/{}", s.sparks_stolen, s.sparks_pushed),
                    format!("{}/{}", s.steal_local, s.steal_remote),
                )
            }
            Version::Eden(_, cfg) => {
                let m = w.run_eden(cfg.clone().without_trace()).expect("eden run");
                check(&m, expected, version.label());
                let s = m.eden_stats.unwrap();
                assert_eq!(
                    s.remote_messages, 0,
                    "single-node run priced inter-node messages"
                );
                (
                    m.elapsed,
                    s.local_gcs,
                    "-".to_string(),
                    millis(s.gc_time),
                    "-".to_string(),
                    "-".to_string(),
                )
            }
        };
        if elapsed > prev {
            ladder_monotone = false;
        }
        prev = elapsed;
        table.row(&[
            version.label().to_string(),
            secs(elapsed),
            gcs.to_string(),
            barrier,
            pause,
            dist,
            locality,
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "shape check: ladder monotone decreasing (plain ≥ … ≥ Eden): {}",
        if ladder_monotone { "YES" } else { "NO" }
    );
    write_artifact("fig1_sumeuler_table.csv", &table.to_csv());
    write_artifact("fig1_sumeuler_table.txt", &rendered);
}
