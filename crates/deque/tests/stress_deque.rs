//! Multi-thread stress tests for the Chase–Lev deque: one owner
//! pushing and popping against many concurrent stealers, asserting
//! conservation — every pushed value leaves the deque exactly once.
//!
//! These run in debug CI too, but are sized so `cargo test --release`
//! exercises real contention (millions of operations, every `Retry`
//! path taken).

use rph_deque::chase_lev::{self, BatchSteal, Steal};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Owner pushes `n` distinct values while `stealers` thieves drain the
/// FIFO end and the owner drains the LIFO end; the sum of everything
/// popped plus everything stolen must equal the sum pushed, and the
/// count must match (nothing lost, nothing duplicated).
fn stress(n: u64, stealers: usize, cap: usize) {
    let (worker, stealer) = chase_lev::new::<u64>(cap);
    let done = AtomicBool::new(false);
    let stolen_sum = AtomicU64::new(0);
    let stolen_count = AtomicU64::new(0);

    let (owner_sum, owner_count) = std::thread::scope(|scope| {
        for _ in 0..stealers {
            let stealer = stealer.clone();
            let done = &done;
            let stolen_sum = &stolen_sum;
            let stolen_count = &stolen_count;
            scope.spawn(move || loop {
                match stealer.steal() {
                    Steal::Success(v) => {
                        stolen_sum.fetch_add(v, Ordering::Relaxed);
                        stolen_count.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }

        // The owner interleaves pushes with occasional pops, like a
        // worker converting its own sparks while being robbed.
        let mut sum = 0u64;
        let mut count = 0u64;
        for v in 1..=n {
            worker.push(v);
            if v % 3 == 0 {
                if let Some(x) = worker.pop() {
                    sum += x;
                    count += 1;
                }
            }
        }
        // Drain whatever the thieves left behind.
        while let Some(x) = worker.pop() {
            sum += x;
            count += 1;
        }
        done.store(true, Ordering::Release);
        (sum, count)
    });

    let total_sum = owner_sum + stolen_sum.load(Ordering::Relaxed);
    let total_count = owner_count + stolen_count.load(Ordering::Relaxed);
    assert_eq!(
        total_count, n,
        "every value must leave the deque exactly once"
    );
    assert_eq!(total_sum, n * (n + 1) / 2, "checksum conservation");
}

/// Like [`stress`], but the thieves batch-steal into their own deques
/// and drain them locally — the shape the native executor's workers
/// use. Conservation must hold across the extra hop through the
/// thief-owned deques.
fn stress_batch(n: u64, stealers: usize, cap: usize) {
    let (worker, stealer) = chase_lev::new::<u64>(cap);
    let done = AtomicBool::new(false);
    let stolen_sum = AtomicU64::new(0);
    let stolen_count = AtomicU64::new(0);
    let batches = AtomicU64::new(0);

    let (owner_sum, owner_count) = std::thread::scope(|scope| {
        for _ in 0..stealers {
            let stealer = stealer.clone();
            let done = &done;
            let stolen_sum = &stolen_sum;
            let stolen_count = &stolen_count;
            let batches = &batches;
            scope.spawn(move || {
                let (mine, _) = chase_lev::new::<u64>(cap);
                loop {
                    match stealer.steal_batch_and_pop(&mine) {
                        BatchSteal::Success { first, moved } => {
                            batches.fetch_add(1, Ordering::Relaxed);
                            let mut sum = first;
                            let mut count = 1u64;
                            // Drain the transferred tail from our own
                            // deque; `moved` bounds it, but third-party
                            // thieves don't exist here so it is exact.
                            while let Some(v) = mine.pop() {
                                sum += v;
                                count += 1;
                            }
                            assert_eq!(count, moved as u64 + 1);
                            stolen_sum.fetch_add(sum, Ordering::Relaxed);
                            stolen_count.fetch_add(count, Ordering::Relaxed);
                        }
                        BatchSteal::Retry => std::hint::spin_loop(),
                        BatchSteal::Empty => {
                            if done.load(Ordering::Acquire) {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }

        let mut sum = 0u64;
        let mut count = 0u64;
        for v in 1..=n {
            worker.push(v);
            if v % 3 == 0 {
                if let Some(x) = worker.pop() {
                    sum += x;
                    count += 1;
                }
            }
        }
        while let Some(x) = worker.pop() {
            sum += x;
            count += 1;
        }
        done.store(true, Ordering::Release);
        (sum, count)
    });

    let total_sum = owner_sum + stolen_sum.load(Ordering::Relaxed);
    let total_count = owner_count + stolen_count.load(Ordering::Relaxed);
    assert_eq!(
        total_count, n,
        "every value must leave the deques exactly once"
    );
    assert_eq!(total_sum, n * (n + 1) / 2, "checksum conservation");
}

#[test]
fn one_owner_one_stealer() {
    stress(200_000, 1, 64);
}

#[test]
fn one_owner_many_stealers() {
    stress(200_000, 7, 64);
}

#[test]
fn tiny_initial_capacity_forces_growth_under_contention() {
    stress(100_000, 4, 2);
}

#[test]
fn batch_one_owner_one_stealer() {
    stress_batch(200_000, 1, 64);
}

#[test]
fn batch_one_owner_many_stealers() {
    stress_batch(200_000, 7, 64);
}

#[test]
fn batch_tiny_capacity_forces_growth_mid_batch() {
    stress_batch(100_000, 4, 2);
}

#[test]
fn batch_repeated_small_rounds_hit_the_owner_race() {
    // The unsound single-CAS batch would double-take precisely when
    // the owner pops down into a pending claim — a near-empty regime;
    // hammer it with many short rounds.
    for round in 0..50 {
        stress_batch(500 + round * 37, 3, 8);
    }
}

#[test]
fn repeated_small_rounds_hit_the_empty_races() {
    // Many short rounds: the interesting interleavings (steal vs pop on
    // the last element) happen near empty, so run the near-empty regime
    // over and over.
    for round in 0..50 {
        stress(500 + round * 37, 3, 8);
    }
}
