//! Property tests for the Chase–Lev deque: sequential equivalence with
//! a model, and real-thread linearisability-style checks (no element
//! lost, none duplicated) under random operation mixes.

use proptest::prelude::*;
use rph_deque::chase_lev::{self, Steal};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u64),
    Pop,
    Steal,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1_000_000).prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::Steal),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Single-threaded: the lock-free deque behaves exactly like a
    /// VecDeque model (owner at the back, thief at the front).
    #[test]
    fn sequential_model_equivalence(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let (w, s) = chase_lev::new::<u64>(4);
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(x) => {
                    w.push(x);
                    model.push_back(x);
                }
                Op::Pop => {
                    prop_assert_eq!(w.pop(), model.pop_back());
                }
                Op::Steal => {
                    let got = match s.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => unreachable!("no contention single-threaded"),
                    };
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            prop_assert_eq!(w.len(), model.len());
        }
    }

    /// Multi-threaded: for random thief counts and push volumes, every
    /// pushed element is received exactly once across owner and
    /// thieves.
    #[test]
    fn concurrent_no_loss_no_duplication(
        n in 1_000u64..8_000,
        thieves in 1usize..4,
        pop_every in 1u64..5,
    ) {
        let (w, s) = chase_lev::new::<u64>(8);
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..thieves {
            let s = s.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match s.steal() {
                        Steal::Success(v) => got.push(v),
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(std::sync::atomic::Ordering::Acquire) {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                got
            }));
        }
        let mut mine = Vec::new();
        for i in 0..n {
            w.push(i);
            if i % pop_every == 0 {
                if let Some(v) = w.pop() {
                    mine.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            mine.push(v);
        }
        done.store(true, std::sync::atomic::Ordering::Release);
        for h in handles {
            mine.extend(h.join().unwrap());
        }
        mine.sort_unstable();
        let expect: Vec<u64> = (0..n).collect();
        prop_assert_eq!(mine, expect);
    }
}

/// Cross-check against a reference double-ended queue on a long fixed
/// pseudo-random interleaving script (single-threaded semantics must
/// agree step-for-step: owner at the back, thief at the front).
#[test]
fn agrees_with_model_on_long_script() {
    let (w, s) = chase_lev::new::<u64>(4);
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut x = 0u64;
    for step in 0..20_000u64 {
        match (step.wrapping_mul(2654435761)) % 5 {
            0..=2 => {
                w.push(x);
                model.push_back(x);
                x += 1;
            }
            3 => {
                let a = w.pop();
                let b = model.pop_back();
                assert_eq!(a, b, "pop divergence at step {step}");
            }
            _ => {
                let a = match s.steal() {
                    Steal::Success(v) => Some(v),
                    Steal::Empty => None,
                    Steal::Retry => unreachable!("no contention single-threaded"),
                };
                let b = model.pop_front();
                assert_eq!(a, b, "steal divergence at step {step}");
            }
        }
        assert_eq!(w.len(), model.len(), "len divergence at step {step}");
    }
}
