//! Real-wall-time microbenchmarks of the Chase–Lev deque (the one data
//! structure in this reproduction measured in *host* time, since it is
//! real lock-free code): owner-only throughput and a contended
//! owner+thief scenario, with a plain mutex-guarded `VecDeque` as the
//! locking reference point.

use criterion::{criterion_group, criterion_main, Criterion};
use rph_deque::chase_lev::{self, Steal};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const OPS: u64 = 10_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("chase_lev");
    g.throughput(criterion::Throughput::Elements(OPS));

    g.bench_function("owner_push_pop/rph", |b| {
        b.iter(|| {
            let (w, _s) = chase_lev::new::<u64>(64);
            for i in 0..OPS {
                w.push(i);
            }
            let mut sum = 0u64;
            while let Some(v) = w.pop() {
                sum += v;
            }
            assert_eq!(sum, OPS * (OPS - 1) / 2);
        })
    });

    g.bench_function("owner_push_pop/mutex_vecdeque", |b| {
        b.iter(|| {
            let w = std::sync::Mutex::new(std::collections::VecDeque::new());
            for i in 0..OPS {
                w.lock().unwrap().push_back(i);
            }
            let mut sum = 0u64;
            while let Some(v) = w.lock().unwrap().pop_back() {
                sum += v;
            }
            assert_eq!(sum, OPS * (OPS - 1) / 2);
        })
    });

    g.bench_function("push_while_one_thief/rph", |b| {
        b.iter(|| {
            let (w, s) = chase_lev::new::<u64>(64);
            let done = Arc::new(AtomicBool::new(false));
            let thief = {
                let done = done.clone();
                std::thread::spawn(move || {
                    let mut got = 0u64;
                    loop {
                        match s.steal() {
                            Steal::Success(_) => got += 1,
                            Steal::Retry => {}
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) {
                                    break;
                                }
                            }
                        }
                    }
                    got
                })
            };
            for i in 0..OPS {
                w.push(i);
            }
            let mut mine = 0u64;
            while w.pop().is_some() {
                mine += 1;
            }
            done.store(true, Ordering::Release);
            let stolen = thief.join().unwrap();
            assert_eq!(mine + stolen, OPS);
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots().sample_size(10);
    targets = bench
}
criterion_main!(benches);
