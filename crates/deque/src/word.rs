//! Machine-word element trait for the lock-free deque.
//!
//! The Chase–Lev buffer stores elements in `AtomicU64` slots so that the
//! deliberately racy reads of the algorithm (a thief may read a slot
//! that loses its validating CAS) are ordinary atomic operations instead
//! of undefined-behaviour data races. GHC's spark pools store closure
//! pointers — single machine words — so this costs no generality for
//! the reproduction.

/// Types that round-trip losslessly through a `u64`.
///
/// # Safety-adjacent contract
/// `from_u64(to_u64(x)) == x` must hold for every value `x`. The deque
/// relies on this for correctness (not memory safety).
pub trait Word: Copy {
    fn to_u64(self) -> u64;
    fn from_u64(w: u64) -> Self;
}

impl Word for u64 {
    #[inline]
    fn to_u64(self) -> u64 {
        self
    }
    #[inline]
    fn from_u64(w: u64) -> Self {
        w
    }
}

impl Word for u32 {
    #[inline]
    fn to_u64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_u64(w: u64) -> Self {
        w as u32
    }
}

impl Word for usize {
    #[inline]
    fn to_u64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_u64(w: u64) -> Self {
        w as usize
    }
}

impl Word for i64 {
    #[inline]
    fn to_u64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_u64(w: u64) -> Self {
        w as i64
    }
}

/// Derive [`Word`] for a newtype wrapper around a word type, e.g.
/// `word_newtype!(NodeRef, u64)`.
#[macro_export]
macro_rules! word_newtype {
    ($ty:ty, $inner:ty) => {
        impl $crate::word::Word for $ty {
            #[inline]
            fn to_u64(self) -> u64 {
                <$inner as $crate::word::Word>::to_u64(self.0)
            }
            #[inline]
            fn from_u64(w: u64) -> Self {
                Self(<$inner as $crate::word::Word>::from_u64(w))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Ref(u32);
    word_newtype!(Ref, u32);

    #[test]
    fn roundtrips() {
        assert_eq!(u64::from_u64(42u64.to_u64()), 42);
        assert_eq!(u32::from_u64(7u32.to_u64()), 7);
        assert_eq!(usize::from_u64(99usize.to_u64()), 99);
        assert_eq!(i64::from_u64((-3i64).to_u64()), -3);
        assert_eq!(Ref::from_u64(Ref(5).to_u64()), Ref(5));
    }
}
