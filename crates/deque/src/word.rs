//! Machine-word element trait for the lock-free deque.
//!
//! The Chase–Lev buffer stores elements in `AtomicU64` slots so that the
//! deliberately racy reads of the algorithm (a thief may read a slot
//! that loses its validating CAS) are ordinary atomic operations instead
//! of undefined-behaviour data races. GHC's spark pools store closure
//! pointers — single machine words — so this costs no generality for
//! the reproduction.

/// Types that round-trip losslessly through a `u64`.
///
/// # Safety-adjacent contract
/// `from_u64(to_u64(x)) == x` must hold for every value `x`. The deque
/// relies on this for correctness (not memory safety).
pub trait Word: Copy {
    fn to_u64(self) -> u64;
    fn from_u64(w: u64) -> Self;
}

impl Word for u64 {
    #[inline]
    fn to_u64(self) -> u64 {
        self
    }
    #[inline]
    fn from_u64(w: u64) -> Self {
        w
    }
}

impl Word for u32 {
    #[inline]
    fn to_u64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_u64(w: u64) -> Self {
        w as u32
    }
}

impl Word for usize {
    #[inline]
    fn to_u64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_u64(w: u64) -> Self {
        w as usize
    }
}

impl Word for i64 {
    #[inline]
    fn to_u64(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_u64(w: u64) -> Self {
        w as i64
    }
}

/// A packed `[lo, hi)` index range: two `u32` halves in one machine
/// word.
///
/// This is the element type of the native executor's deques once tasks
/// become *ranges* instead of single indices (lazy range splitting):
/// the `u64` slot a Chase–Lev buffer stores has room for `2×u32`, so a
/// range travels through the lock-free deque exactly like a single
/// spark pointer would — no allocation, no indirection, and every racy
/// read stays one atomic word access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range32 {
    /// Inclusive lower bound.
    pub lo: u32,
    /// Exclusive upper bound.
    pub hi: u32,
}

impl Range32 {
    /// The range `[lo, hi)`. `lo > hi` is a caller bug.
    #[inline]
    pub fn new(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi, "inverted range {lo}..{hi}");
        Range32 { lo, hi }
    }

    /// Number of indices in the range.
    #[inline]
    pub fn len(self) -> u32 {
        self.hi - self.lo
    }

    /// True when the range contains no indices.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.lo >= self.hi
    }
}

impl Word for Range32 {
    #[inline]
    fn to_u64(self) -> u64 {
        ((self.hi as u64) << 32) | self.lo as u64
    }
    #[inline]
    fn from_u64(w: u64) -> Self {
        Range32 {
            lo: w as u32,
            hi: (w >> 32) as u32,
        }
    }
}

/// Derive [`Word`] for a newtype wrapper around a word type, e.g.
/// `word_newtype!(NodeRef, u64)`.
#[macro_export]
macro_rules! word_newtype {
    ($ty:ty, $inner:ty) => {
        impl $crate::word::Word for $ty {
            #[inline]
            fn to_u64(self) -> u64 {
                <$inner as $crate::word::Word>::to_u64(self.0)
            }
            #[inline]
            fn from_u64(w: u64) -> Self {
                Self(<$inner as $crate::word::Word>::from_u64(w))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Ref(u32);
    word_newtype!(Ref, u32);

    #[test]
    fn roundtrips() {
        assert_eq!(u64::from_u64(42u64.to_u64()), 42);
        assert_eq!(u32::from_u64(7u32.to_u64()), 7);
        assert_eq!(usize::from_u64(99usize.to_u64()), 99);
        assert_eq!(i64::from_u64((-3i64).to_u64()), -3);
        assert_eq!(Ref::from_u64(Ref(5).to_u64()), Ref(5));
    }

    #[test]
    fn range32_roundtrips_and_measures() {
        for (lo, hi) in [(0, 0), (0, 1), (7, 19), (0, u32::MAX), (u32::MAX, u32::MAX)] {
            let r = Range32::new(lo, hi);
            assert_eq!(Range32::from_u64(r.to_u64()), r);
            assert_eq!(r.len(), hi - lo);
            assert_eq!(r.is_empty(), lo == hi);
        }
        // The halves land in disjoint bit fields.
        assert_eq!(Range32::new(3, 5).to_u64(), (5u64 << 32) | 3);
    }
}
