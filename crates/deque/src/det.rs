//! Deterministic spark-pool deque used inside the discrete-event
//! simulator.
//!
//! Semantically identical to the Chase–Lev deque (owner LIFO at the
//! bottom, thieves FIFO at the top) but sequential, so simulation runs
//! are exactly reproducible. It additionally models GHC's *bounded*
//! spark pool: when the pool is full, a newly created spark is dropped
//! (counted as an overflow), exactly like GHC's `newSpark` primitive.

use std::collections::VecDeque;

/// A bounded, deterministic work-stealing deque.
#[derive(Debug, Clone)]
pub struct DetDeque<T> {
    items: VecDeque<T>,
    capacity: usize,
    overflowed: u64,
}

impl<T> DetDeque<T> {
    /// A deque holding at most `capacity` elements (GHC's default spark
    /// pool size is 4096 entries per capability).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "spark pool capacity must be positive");
        DetDeque {
            items: VecDeque::new(),
            capacity,
            overflowed: 0,
        }
    }

    /// Push at the bottom (owner end). Returns `false` and drops the
    /// element if the pool is full — the overflow is counted.
    pub fn push(&mut self, value: T) -> bool {
        if self.items.len() >= self.capacity {
            self.overflowed += 1;
            return false;
        }
        self.items.push_back(value);
        true
    }

    /// Pop from the bottom (owner end, LIFO — newest first).
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_back()
    }

    /// Steal from the top (thief end, FIFO — oldest first).
    pub fn steal(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Current number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of sparks dropped due to pool overflow so far.
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// Maximum capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate the queued elements, oldest (steal end) first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Retain only elements satisfying the predicate — used by the GpH
    /// runtime to prune fizzled sparks during GC, like GHC's
    /// `pruneSparkQueue`.
    pub fn retain(&mut self, f: impl FnMut(&T) -> bool) {
        self.items.retain(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_lifo_thief_fifo() {
        let mut d = DetDeque::new(16);
        for i in 0..5 {
            assert!(d.push(i));
        }
        assert_eq!(d.pop(), Some(4));
        assert_eq!(d.steal(), Some(0));
        assert_eq!(d.steal(), Some(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn overflow_drops_new_sparks() {
        let mut d = DetDeque::new(2);
        assert!(d.push(1));
        assert!(d.push(2));
        assert!(!d.push(3));
        assert!(!d.push(4));
        assert_eq!(d.overflowed(), 2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.steal(), Some(1)); // oldest survives; newest dropped
    }

    #[test]
    fn retain_prunes() {
        let mut d = DetDeque::new(8);
        for i in 0..6 {
            d.push(i);
        }
        d.retain(|&x| x % 2 == 0);
        assert_eq!(d.len(), 3);
        assert_eq!(d.steal(), Some(0));
        assert_eq!(d.pop(), Some(4));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = DetDeque::<u32>::new(0);
    }

    /// The deterministic deque and the Chase–Lev deque agree on any
    /// single-threaded operation sequence (the concurrent behaviour is
    /// covered by the stress tests in `chase_lev`).
    #[test]
    fn agrees_with_chase_lev_sequentially() {
        use crate::chase_lev::{self, Steal};
        let (w, s) = chase_lev::new::<u64>(4);
        let mut d = DetDeque::new(usize::MAX >> 1);
        let mut x = 1u64;
        for step in 0..10_000u64 {
            // Simple deterministic op mix.
            match (step * 2654435761) % 4 {
                0 | 1 => {
                    w.push(x);
                    d.push(x);
                    x += 1;
                }
                2 => {
                    let a = w.pop();
                    let b = d.pop();
                    assert_eq!(a, b, "pop mismatch at step {step}");
                }
                _ => {
                    let a = match s.steal() {
                        Steal::Success(v) => Some(v),
                        _ => None,
                    };
                    let b = d.steal();
                    assert_eq!(a, b, "steal mismatch at step {step}");
                }
            }
            assert_eq!(w.len(), d.len());
        }
    }
}
