//! A dynamic circular work-stealing deque (Chase & Lev, SPAA 2005),
//! with the C11 memory orderings of Lê et al., "Correct and Efficient
//! Work-Stealing for Weak Memory Models" (PPoPP 2013).
//!
//! One [`Worker`] (the owning capability) pushes and pops at the
//! *bottom*; any number of [`Stealer`]s take from the *top*. The only
//! contended synchronisation is a single compare-and-swap on `top`, and
//! only when the deque is nearly empty or a steal races another steal —
//! the property the paper relies on: work-pulling "eliminates any
//! hand-shaking when sharing work".
//!
//! Elements are machine words stored in `AtomicU64` slots (see
//! [`crate::word::Word`]), so the algorithm's benign races (a thief
//! reads a slot, then validates with a CAS that may fail) are ordinary
//! relaxed atomic accesses — no undefined behaviour, no `MaybeUninit`.
//!
//! The buffer grows geometrically when full. Retired buffers are kept
//! alive until every handle is dropped (an epoch-free reclamation
//! strategy that trades a bounded amount of memory — the sum of smaller
//! power-of-two buffers, i.e. less than one final buffer — for
//! simplicity and provable safety).

use crate::pad::CachePadded;
use crate::word::Word;
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicI64, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; retrying may succeed.
    Retry,
    /// Stole an element.
    Success(T),
}

impl<T> Steal<T> {
    /// Unwrap a `Success`, panicking otherwise (test helper).
    pub fn success(self) -> T {
        match self {
            Steal::Success(v) => v,
            Steal::Empty => panic!("steal: empty"),
            Steal::Retry => panic!("steal: retry"),
        }
    }
}

/// Upper bound on elements transferred by one [`Stealer::steal_batch_and_pop`].
pub const MAX_BATCH: usize = 32;

/// Result of a batch steal attempt: like [`Steal`], but a success also
/// reports how many *extra* elements were transferred into the
/// destination deque beyond the one returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSteal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost the first claim; retrying may succeed.
    Retry,
    /// Stole at least one element.
    Success {
        /// The oldest stolen element, for the thief to run immediately.
        first: T,
        /// How many further elements were pushed onto the destination.
        moved: usize,
    },
}

/// Fixed-size circular buffer of atomic word slots.
struct Buffer {
    slots: Box<[AtomicU64]>,
    /// `slots.len() - 1`; length is a power of two.
    mask: usize,
}

impl Buffer {
    fn new(cap: usize) -> Box<Buffer> {
        debug_assert!(cap.is_power_of_two());
        Box::new(Buffer {
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap - 1,
        })
    }

    #[inline]
    fn read(&self, i: i64) -> u64 {
        self.slots[i as usize & self.mask].load(Ordering::Relaxed)
    }

    #[inline]
    fn write(&self, i: i64, v: u64) {
        self.slots[i as usize & self.mask].store(v, Ordering::Relaxed);
    }

    #[inline]
    fn cap(&self) -> usize {
        self.slots.len()
    }
}

/// State shared between the worker and its stealers.
///
/// `top` and `bottom` are the two hot words of the algorithm and have
/// disjoint writer sets — thieves CAS `top`, only the owner writes
/// `bottom` — so each gets a cache line of its own ([`CachePadded`]).
/// Unpadded, an owner `push` (a `bottom` store) would invalidate the
/// line every spinning thief is re-reading `top` from, and every thief
/// CAS would stall the owner's next `bottom` access: false sharing on
/// the single most contended structure in the executor. The cold tail
/// (`buffer`, `retired`) shares the line after `bottom`.
struct Inner {
    top: CachePadded<AtomicI64>,
    bottom: CachePadded<AtomicI64>,
    buffer: AtomicPtr<Buffer>,
    /// Buffers replaced by growth; freed when the last handle drops.
    retired: std::sync::Mutex<Vec<*mut Buffer>>,
}

// SAFETY: all shared access to `buffer`/slots is via atomics; `retired`
// is mutex-protected. Raw pointers are only freed once, at drop.
unsafe impl Send for Inner {}
unsafe impl Sync for Inner {}

impl Drop for Inner {
    fn drop(&mut self) {
        // SAFETY: we have exclusive access (last Arc dropped). Every
        // pointer in `retired` plus the live buffer was created by
        // `Box::into_raw` and is freed exactly once here.
        unsafe {
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
            for p in self.retired.get_mut().expect("unpoisoned").drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

/// Owner handle: push and pop at the bottom. Not `Clone` — exactly one
/// owner exists, which is what makes the owner's operations cheap.
pub struct Worker<T: Word> {
    inner: Arc<Inner>,
    _not_sync: PhantomData<*mut ()>, // !Sync: single-owner discipline
    _elem: PhantomData<T>,
}

// SAFETY: the worker can move between threads (it is the unique owner);
// it just cannot be shared (`!Sync` via PhantomData<*mut ()>).
unsafe impl<T: Word + Send> Send for Worker<T> {}

/// Thief handle: steal from the top. Cheap to clone.
pub struct Stealer<T: Word> {
    inner: Arc<Inner>,
    _elem: PhantomData<T>,
}

unsafe impl<T: Word + Send> Send for Stealer<T> {}
unsafe impl<T: Word + Send> Sync for Stealer<T> {}

impl<T: Word> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
            _elem: PhantomData,
        }
    }
}

/// Create a deque with the given initial capacity (rounded up to a power
/// of two, minimum 4).
pub fn new<T: Word>(initial_cap: usize) -> (Worker<T>, Stealer<T>) {
    let cap = initial_cap.max(4).next_power_of_two();
    let inner = Arc::new(Inner {
        top: CachePadded::new(AtomicI64::new(0)),
        bottom: CachePadded::new(AtomicI64::new(0)),
        buffer: AtomicPtr::new(Box::into_raw(Buffer::new(cap))),
        retired: std::sync::Mutex::new(Vec::new()),
    });
    (
        Worker {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
            _elem: PhantomData,
        },
        Stealer {
            inner,
            _elem: PhantomData,
        },
    )
}

impl<T: Word> Worker<T> {
    /// Push an element at the bottom (owner end).
    pub fn push(&self, value: T) {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        // SAFETY: only the owner mutates `buffer`, and the pointer is
        // valid until Inner::drop.
        let mut buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
        if b - t >= buf.cap() as i64 {
            buf = self.grow(buf, t, b);
        }
        buf.write(b, value.to_u64());
        fence(Ordering::Release);
        inner.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pop an element from the bottom (owner end, LIFO). Returns `None`
    /// when the deque is empty (or the last element was stolen first).
    pub fn pop(&self) -> Option<T> {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        // SAFETY: pointer valid until Inner::drop; only owner swaps it.
        let buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
        inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t <= b {
            // Non-empty as observed.
            let v = T::from_u64(buf.read(b));
            if t == b {
                // Last element: race the thieves for it.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    Some(v)
                } else {
                    None
                }
            } else {
                Some(v)
            }
        } else {
            // Empty: restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Bulk-seed the deque (owner end), oldest first: after
    /// `push_iter([a, b, c])`, a thief steals `a` first and the owner
    /// pops `c` first. Used by the native executor to deal the initial
    /// task set before the workers start.
    pub fn push_iter(&self, values: impl IntoIterator<Item = T>) {
        for v in values {
            self.push(v);
        }
    }

    /// Number of elements currently in the deque (approximate under
    /// concurrent steals; exact when quiescent).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True when [`Self::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
            _elem: PhantomData,
        }
    }

    /// Grow the buffer to twice its size, copying live elements.
    #[cold]
    fn grow<'a>(&'a self, old: &'a Buffer, t: i64, b: i64) -> &'a Buffer {
        let new = Buffer::new(old.cap() * 2);
        for i in t..b {
            new.write(i, old.read(i));
        }
        let new_ptr = Box::into_raw(new);
        let old_ptr = self.inner.buffer.swap(new_ptr, Ordering::Release);
        self.inner.retired.lock().expect("unpoisoned").push(old_ptr);
        // SAFETY: just created, freed only at Inner::drop.
        unsafe { &*new_ptr }
    }
}

impl<T: Word> Stealer<T> {
    /// Attempt to steal the oldest element (top end, FIFO).
    pub fn steal(&self) -> Steal<T> {
        let inner = &self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Read the element *before* the validating CAS. The read may be
        // stale if we lose the race, but then the CAS fails and the
        // value is discarded — the benign race of the algorithm, here an
        // ordinary relaxed atomic load.
        // SAFETY: buffer pointer is valid until Inner::drop; growth
        // retires (does not free) old buffers, so even a stale pointer
        // read stays dereferenceable.
        let buf = unsafe { &*inner.buffer.load(Ordering::Acquire) };
        let v = T::from_u64(buf.read(t));
        if inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(v)
        } else {
            Steal::Retry
        }
    }

    /// Steal up to half the victim's elements (capped at [`MAX_BATCH`]):
    /// the oldest is returned for the thief to run immediately, the rest
    /// are pushed onto `dest` — the thief's *own* deque — oldest first,
    /// so they stay stealable by third parties and the thief pops them
    /// without further contention. One victim probe, one buffer
    /// acquisition and one backoff episode are amortised over the whole
    /// batch; only the per-element claims remain.
    ///
    /// Each claim after the first revalidates `bottom` behind a SeqCst
    /// fence and advances `top` with its own CAS. A single multi-element
    /// CAS (`top: t → t+n`) would be unsound against this deque's
    /// CAS-free owner pop: the owner only races the CAS for the *last*
    /// element (`top == bottom-1`), so it can take an element in the
    /// middle of a pending multi-claim without synchronising, and the
    /// thief's CAS would still succeed — a double-take. Re-reading
    /// `bottom` per element restores exactly the pairwise Chase–Lev
    /// race resolution (see DESIGN.md for the interleaving).
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> BatchSteal<T> {
        let inner = &self.inner;
        let mut t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        let len = b - t;
        if len <= 0 {
            return BatchSteal::Empty;
        }
        // Take at most half of what was observed, so the victim keeps
        // working without immediately needing to steal back.
        let want = (((len + 1) / 2) as usize).min(MAX_BATCH);
        // SAFETY: valid until Inner::drop; growth retires, never frees.
        let buf = unsafe { &*inner.buffer.load(Ordering::Acquire) };
        let first = T::from_u64(buf.read(t));
        if inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return BatchSteal::Retry;
        }
        t += 1;
        let mut moved = 0usize;
        while moved + 1 < want {
            fence(Ordering::SeqCst);
            let b = inner.bottom.load(Ordering::Acquire);
            if t >= b {
                break;
            }
            // Reload the buffer: the owner may have grown it since the
            // previous element, and indices pushed after a growth only
            // exist in the new buffer.
            // SAFETY: as above.
            let buf = unsafe { &*inner.buffer.load(Ordering::Acquire) };
            let v = T::from_u64(buf.read(t));
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                break;
            }
            dest.push(v);
            moved += 1;
            t += 1;
        }
        BatchSteal::Success { first, moved }
    }

    /// Steal with bounded retries, returning `None` on `Empty` or when
    /// retries are exhausted.
    pub fn steal_retry(&self, max_retries: usize) -> Option<T> {
        for _ in 0..=max_retries {
            match self.steal() {
                Steal::Success(v) => return Some(v),
                Steal::Empty => return None,
                Steal::Retry => continue,
            }
        }
        None
    }

    /// Approximate number of elements.
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True when [`Self::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_pop_fifo_steal() {
        let (w, s) = new::<u64>(4);
        for i in 0..6u64 {
            w.push(i);
        }
        assert_eq!(w.len(), 6);
        assert_eq!(w.pop(), Some(5)); // owner: newest first
        assert_eq!(s.steal().success(), 0); // thief: oldest first
        assert_eq!(s.steal().success(), 1);
        assert_eq!(w.pop(), Some(4));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let (w, s) = new::<u64>(4);
        for i in 0..1000u64 {
            w.push(i);
        }
        assert_eq!(w.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(s.steal().success(), i);
        }
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn interleaved_push_pop_steal_single_thread() {
        let (w, s) = new::<u64>(8);
        let mut seen = Vec::new();
        for round in 0..50u64 {
            for i in 0..4 {
                w.push(round * 4 + i);
            }
            if let Some(v) = w.pop() {
                seen.push(v);
            }
            if let Steal::Success(v) = s.steal() {
                seen.push(v);
            }
        }
        while let Some(v) = w.pop() {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn stress_one_owner_many_thieves() {
        // Every pushed element is received exactly once, across 3 thief
        // threads and an owner that pops half the time.
        const N: u64 = 20_000;
        let (w, s) = new::<u64>(16);
        let stop = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let s = s.clone();
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match s.steal() {
                        Steal::Success(v) => got.push(v),
                        Steal::Retry => {}
                        Steal::Empty => {
                            if stop.load(Ordering::Acquire) == 1 {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                got
            }));
        }
        let mut owner_got = Vec::new();
        for i in 0..N {
            w.push(i);
            if i % 2 == 0 {
                if let Some(v) = w.pop() {
                    owner_got.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            owner_got.push(v);
        }
        stop.store(1, Ordering::Release);
        let mut all = owner_got;
        for h in handles {
            all.extend(h.join().unwrap());
        }
        // Drain anything left after thieves observed Empty before final pops.
        all.sort_unstable();
        assert_eq!(all.len(), N as usize, "lost or duplicated elements");
        for (i, v) in all.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn stress_growth_under_contention() {
        // Grow repeatedly while thieves are active.
        const N: u64 = 50_000;
        let (w, s) = new::<u64>(4);
        let done = Arc::new(AtomicI64::new(0));
        let thief = {
            let s = s.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut sum = 0u64;
                let mut count = 0u64;
                loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            sum += v;
                            count += 1;
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) == 1 {
                                break;
                            }
                        }
                    }
                }
                (sum, count)
            })
        };
        let mut own_sum = 0u64;
        let mut own_count = 0u64;
        for i in 0..N {
            w.push(i);
        }
        while let Some(v) = w.pop() {
            own_sum += v;
            own_count += 1;
        }
        done.store(1, Ordering::Release);
        let (thief_sum, thief_count) = thief.join().unwrap();
        assert_eq!(own_count + thief_count, N);
        assert_eq!(own_sum + thief_sum, N * (N - 1) / 2);
    }

    #[test]
    fn batch_steal_takes_half_oldest_first() {
        let (w, s) = new::<u64>(16);
        let (thief, thief_s) = new::<u64>(16);
        for i in 0..10u64 {
            w.push(i);
        }
        // len 10 → up to (10+1)/2 = 5 elements: 0 returned, 1..4 moved.
        match s.steal_batch_and_pop(&thief) {
            BatchSteal::Success { first, moved } => {
                assert_eq!(first, 0);
                assert_eq!(moved, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(w.len(), 5);
        assert_eq!(thief.len(), 4);
        // Thief pops its share newest-first; its own thieves would see
        // oldest-first.
        assert_eq!(thief.pop(), Some(4));
        assert_eq!(thief_s.steal().success(), 1);
        // Victim keeps the newer half.
        assert_eq!(s.steal().success(), 5);
        assert_eq!(w.pop(), Some(9));
    }

    #[test]
    fn batch_steal_of_single_element_moves_nothing() {
        let (w, s) = new::<u64>(4);
        let (thief, _) = new::<u64>(4);
        assert_eq!(s.steal_batch_and_pop(&thief), BatchSteal::Empty);
        w.push(7);
        assert_eq!(
            s.steal_batch_and_pop(&thief),
            BatchSteal::Success { first: 7, moved: 0 }
        );
        assert!(thief.is_empty());
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn batch_steal_is_capped() {
        let (w, s) = new::<u64>(16);
        let (thief, _) = new::<u64>(16);
        for i in 0..1000u64 {
            w.push(i);
        }
        match s.steal_batch_and_pop(&thief) {
            BatchSteal::Success { first, moved } => {
                assert_eq!(first, 0);
                assert_eq!(moved, MAX_BATCH - 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(w.len() + thief.len() + 1, 1000);
    }

    #[test]
    fn empty_pop_on_fresh_deque() {
        let (w, s) = new::<u32>(4);
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
        assert!(w.is_empty() && s.is_empty());
    }

    #[test]
    fn steal_retry_helper() {
        let (w, s) = new::<u64>(4);
        assert_eq!(s.steal_retry(3), None);
        w.push(9);
        assert_eq!(s.steal_retry(3), Some(9));
    }
}
