//! Cache-line padding against false sharing.
//!
//! The hot words of a work-stealing runtime — a deque's `top` and
//! `bottom`, the pool's remaining-task counter, the eventcount's
//! epoch — are written by one thread and spun on by others. If two of
//! them share a 64-byte cache line, every write by one core invalidates
//! the line in every other core's cache and the unrelated reader pays a
//! coherence miss it did nothing to deserve (*false* sharing: the
//! paper's §IV memory-hierarchy arc is exactly about keeping such
//! traffic off the multicore interconnect, and Auhagen et al. show the
//! effect only grows with core count).
//!
//! [`CachePadded<T>`] rounds a value's size and alignment up to
//! [`CACHE_LINE`] bytes so it owns its line outright. Use it for hot
//! fields that are written from one thread while being polled from
//! others; do **not** blanket-wrap cold data — padding trades memory
//! (and cache *capacity*) for isolation, which only pays on contended
//! words.

/// Size (and alignment) of one cache line, in bytes. 64 is correct for
/// every x86-64 and the large majority of AArch64 parts; on the few
/// 128-byte-line machines two padded values may still share a line,
/// which degrades back to the unpadded behaviour — never worse.
pub const CACHE_LINE: usize = 64;

/// Pads and aligns `T` to [`CACHE_LINE`] bytes so it occupies (at
/// least) one full cache line of its own.
///
/// Derefs transparently to `T`, so `CachePadded<AtomicU64>` is used
/// exactly like the bare atomic:
///
/// ```
/// use rph_deque::CachePadded;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let counter = CachePadded::new(AtomicU64::new(0));
/// counter.fetch_add(1, Ordering::Relaxed);
/// assert_eq!(counter.load(Ordering::Relaxed), 1);
/// assert_eq!(std::mem::align_of_val(&counter), 64);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` to a full cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem::{align_of, size_of};
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

    /// The smoke test the padding exists for: every padded value is
    /// both *aligned to* and *at least as large as* a cache line, so
    /// two adjacent `CachePadded` values can never share one.
    #[test]
    fn padded_values_own_their_cache_line() {
        assert_eq!(align_of::<CachePadded<u8>>(), CACHE_LINE);
        assert_eq!(size_of::<CachePadded<u8>>(), CACHE_LINE);
        assert_eq!(align_of::<CachePadded<AtomicU64>>(), CACHE_LINE);
        assert_eq!(size_of::<CachePadded<AtomicU64>>(), CACHE_LINE);
        assert_eq!(align_of::<CachePadded<AtomicI64>>(), CACHE_LINE);
        assert_eq!(size_of::<CachePadded<AtomicI64>>(), CACHE_LINE);
        // Values bigger than a line keep the alignment and round up.
        assert_eq!(align_of::<CachePadded<[u64; 16]>>(), CACHE_LINE);
        assert_eq!(size_of::<CachePadded<[u64; 16]>>(), 2 * CACHE_LINE);
    }

    /// Adjacent array elements land on distinct lines.
    #[test]
    fn array_elements_do_not_share_lines() {
        let xs = [
            CachePadded::new(AtomicU64::new(0)),
            CachePadded::new(AtomicU64::new(0)),
        ];
        let a = &xs[0] as *const _ as usize;
        let b = &xs[1] as *const _ as usize;
        assert_eq!(a % CACHE_LINE, 0);
        assert_eq!(b % CACHE_LINE, 0);
        assert!(b - a >= CACHE_LINE);
    }

    #[test]
    fn deref_and_into_inner_round_trip() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
        let q: CachePadded<u32> = 7u32.into();
        assert_eq!(q.into_inner(), 7);
    }

    #[test]
    fn atomics_work_through_the_padding() {
        let c = CachePadded::new(AtomicU64::new(0));
        c.store(5, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 5);
    }
}
