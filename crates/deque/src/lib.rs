//! # rph-deque — work-stealing deques for spark pools
//!
//! Section IV.A.2 of the paper replaces GHC's scheduler-driven spark
//! *pushing* with a work-*stealing* scheme: "the spark pool is
//! implemented using a lock-free work-stealing queue \[Chase & Lev,
//! SPAA'05\], and idle capabilities can steal sparks from the spark
//! pools of other capabilities".
//!
//! This crate provides both halves needed by the reproduction:
//!
//! * [`chase_lev`] — a from-scratch implementation of the Chase–Lev
//!   dynamic circular work-stealing deque with real atomics, the data
//!   structure the optimised GHC runtime uses. It is exercised by
//!   real-OS-thread stress tests and property tests. Elements are
//!   machine words (see [`word::Word`]), which is exactly what GHC
//!   stores in spark pools (closure pointers) and keeps every racy
//!   access a genuine atomic access (no undefined behaviour).
//! * [`det`] — a deterministic sequential deque with the same
//!   owner-LIFO / thief-FIFO discipline plus GHC's bounded spark-pool
//!   semantics (overflowing sparks are dropped). The discrete-event
//!   simulator uses this variant so whole-program runs are exactly
//!   reproducible, while charging the Chase–Lev cost model (steal
//!   attempts, CAS retries) in virtual time.
//!
//! Both expose the same three operations with the same semantics:
//! `push` (owner, bottom end), `pop` (owner, bottom end — LIFO, newest
//! spark first, which favours locality), and `steal` (thief, top end —
//! FIFO, oldest spark first, which favours large stolen subtrees).

pub mod chase_lev;
pub mod det;
pub mod pad;
pub mod word;

pub use chase_lev::{BatchSteal, Steal, Stealer, Worker, MAX_BATCH};
pub use det::DetDeque;
pub use pad::{CachePadded, CACHE_LINE};
pub use word::{Range32, Word};
