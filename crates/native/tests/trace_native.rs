//! Differential and reconciliation tests for the native executor's
//! wall-clock tracing layer.
//!
//! Two bookkeepings exist for every traced run: the `NativeStats`
//! counters the workers maintain directly, and the event stream each
//! worker records into its trace buffer. They are written at the same
//! program points, so they must agree *exactly* — any divergence means
//! an event was dropped, double-recorded, or mapped to the wrong
//! capability. The tests here also pin that tracing is an observer:
//! traced and untraced runs produce identical results, and identical
//! schedules wherever the schedule is deterministic.

use rph_native::{execute, Granularity, Job, NativeConfig};
use rph_trace::{CapId, Counters, State, Timeline};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

struct Squares(usize);

impl Job for Squares {
    type Out = u64;
    fn len(&self) -> usize {
        self.0
    }
    fn run(&self, idx: usize) -> u64 {
        (idx as u64) * (idx as u64)
    }
}

/// Tasks heavy enough (~tens of µs) that thieves land real steals,
/// splits and parks while other workers still hold work.
struct Crunch {
    tasks: usize,
    iters: u64,
}

impl Job for Crunch {
    type Out = u64;
    fn len(&self) -> usize {
        self.tasks
    }
    fn run(&self, idx: usize) -> u64 {
        let mut acc = idx as u64;
        for i in 0..self.iters {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        idx as u64
    }
}

/// Configs whose schedule is fully deterministic: static pushing never
/// steals or parks, and a lone stealer has no victims.
fn deterministic_configs() -> Vec<NativeConfig> {
    let mut cfgs = Vec::new();
    for g in [Granularity::Fixed, Granularity::LazySplit] {
        for w in [1, 2, 4] {
            cfgs.push(NativeConfig::push(w).with_granularity(g));
        }
        cfgs.push(NativeConfig::steal(1).with_granularity(g));
    }
    cfgs
}

#[test]
fn tracing_is_a_pure_observer_results_identical() {
    let job = Squares(500);
    for base in deterministic_configs() {
        let plain = execute(&job, &base);
        let traced = execute(&job, &base.clone().with_trace());
        assert_eq!(plain.values, traced.values, "{base:?}");
        // Deterministic schedule: the full counter set must match too.
        assert_eq!(plain.stats, traced.stats, "{base:?}");
        assert!(plain.trace.is_none());
        assert!(traced.trace.is_some());
        assert_eq!(traced.trace_dropped, 0, "{base:?}");
    }
    // Multi-worker stealing schedules are nondeterministic; results
    // and structural invariants must still be untouched by tracing.
    for w in [2, 4] {
        let base = NativeConfig::steal(w);
        let plain = execute(&job, &base);
        let traced = execute(&job, &base.clone().with_trace());
        assert_eq!(plain.values, traced.values, "{base:?}");
        for out in [&plain, &traced] {
            assert_eq!(out.stats.tasks_run, 500);
            assert_eq!(
                out.stats.tasks_local + out.stats.tasks_stolen,
                out.stats.tasks_run
            );
            assert_eq!(out.stats.per_worker.iter().sum::<u64>(), 500);
        }
    }
}

/// Event-stream totals must equal the directly-maintained counters,
/// globally and per worker, under multi-thief stress.
#[test]
fn events_reconcile_with_counters_under_steal_stress() {
    for workers in [4usize, 8] {
        for g in [Granularity::Fixed, Granularity::LazySplit] {
            let cfg = NativeConfig::steal(workers)
                .with_granularity(g)
                .with_trace();
            let job = Crunch {
                tasks: 512,
                iters: 20_000,
            };
            let out = execute(&job, &cfg);
            assert_eq!(out.values, (0..512).collect::<Vec<u64>>(), "{cfg:?}");
            assert_eq!(
                out.trace_dropped, 0,
                "{cfg:?}: buffer overflow would make totals non-exhaustive"
            );
            let trace = out.trace.as_ref().expect("traced run returns a tracer");
            assert_eq!(trace.caps(), workers);

            let c = Counters::from_tracer(trace);
            let s = &out.stats;
            assert_eq!(c.native_tasks, s.tasks_run, "{cfg:?}");
            assert_eq!(c.native_tasks_stolen, s.tasks_stolen, "{cfg:?}");
            assert_eq!(c.native_steals, s.steal_ops, "{cfg:?}");
            assert_eq!(c.native_batch_moved, s.batch_moved, "{cfg:?}");
            assert_eq!(c.native_steal_retries, s.steal_retries, "{cfg:?}");
            assert_eq!(c.native_steal_empties, s.steal_empties, "{cfg:?}");
            assert_eq!(c.native_splits, s.splits, "{cfg:?}");
            assert_eq!(c.native_parks, s.parks, "{cfg:?}");
            assert_eq!(c.native_runs, workers as u64, "{cfg:?}");

            // Per-worker attribution: each capability's executed-task
            // events must sum to that worker's per_worker count.
            for w in 0..workers {
                let pc = Counters::for_cap(trace, CapId(w as u32));
                assert_eq!(
                    pc.native_tasks, s.per_worker[w],
                    "{cfg:?}: worker {w} event total != counter"
                );
            }

            // The trace renders as a well-formed timeline with real
            // running time on it.
            let tl = Timeline::from_tracer(trace);
            assert!(tl.end_time > 0, "{cfg:?}");
            assert!(
                tl.mean_fraction(State::Running) > 0.0,
                "{cfg:?}: no running intervals in the timeline"
            );
        }
    }
}

/// One task blocks the run open; the other workers go idle for much
/// longer than the 10 ms park timeout. Each contiguous idle episode
/// must count ONE park, however many timeout wakeups it spans — the
/// pre-fix counting inflated `parks` by roughly hold-time / 10 ms.
struct OneLong {
    others_done: AtomicU64,
    hold: Duration,
}

impl Job for OneLong {
    type Out = u64;
    fn len(&self) -> usize {
        4
    }
    fn run(&self, idx: usize) -> u64 {
        if idx == 0 {
            let deadline = Instant::now() + Duration::from_secs(10);
            while self.others_done.load(Ordering::Acquire) < 2 {
                assert!(Instant::now() < deadline, "helpers never ran");
                std::hint::spin_loop();
            }
            let until = Instant::now() + self.hold;
            while Instant::now() < until {
                std::hint::spin_loop();
            }
        } else {
            self.others_done.fetch_add(1, Ordering::Release);
        }
        idx as u64
    }
}

#[test]
fn parks_count_idle_episodes_not_timeout_wakeups() {
    let workers = 4;
    let hold = Duration::from_millis(150);
    let job = OneLong {
        others_done: AtomicU64::new(0),
        hold,
    };
    let out = execute(&job, &NativeConfig::steal(workers).with_trace());
    assert_eq!(out.values, vec![0, 1, 2, 3]);
    assert!(
        out.stats.parks >= 1,
        "idle workers should park during the hold: {:?}",
        out.stats
    );
    // Three workers idle through one ~150 ms episode each; a handful
    // of extra episodes can occur around run start/steal hand-offs,
    // but timeout-recounting would push this to ~15 per idle worker.
    assert!(
        out.stats.parks <= 2 * workers as u64,
        "parks look timeout-counted, not episode-counted: {:?}",
        out.stats
    );
    // And the trace agrees with the (correct) counter.
    let trace = out.trace.as_ref().unwrap();
    let c = Counters::from_tracer(trace);
    assert_eq!(c.native_parks, out.stats.parks);
    assert!(
        c.native_unparks <= c.native_parks,
        "a worker can only unpark out of an episode it parked in: {c:?}"
    );
    assert_eq!(out.trace_dropped, 0);
}

/// A tiny trace buffer must drop (and count) events instead of
/// allocating or corrupting the stream.
#[test]
fn overflowing_trace_buffer_reports_drops() {
    let cfg = NativeConfig::steal(2).with_trace().with_trace_cap(8);
    let out = execute(&Squares(500), &cfg);
    assert_eq!(out.values.len(), 500);
    assert!(
        out.trace_dropped > 0,
        "an 8-event buffer cannot hold a 500-task run's events"
    );
    // What *was* recorded still maps into a valid tracer.
    let trace = out.trace.as_ref().unwrap();
    assert!(trace.caps() == 2);
}
