//! Shared harness for the native Eden backend: per-PE endpoints,
//! channel bookkeeping and outcome assembly.
//!
//! The execution model is Eden's §II picture on real threads:
//!
//! * One OS thread per PE. Each PE's working memory — its task
//!   results, its ring rows — lives in locals **owned by that
//!   thread**; there is no shared result heap during compute. The
//!   only cross-thread traffic is fully-evaluated [`Packet`]s over
//!   the bounded channels of [`crate::channel`], so the paper's
//!   "communicate only WHNF data" invariant holds *by construction*:
//!   a value must be finished before it can be framed and sent.
//! * The calling thread acts as the **master** PE: it instantiates
//!   the ring/farm, feeds tasks (master–worker), and collects result
//!   packets into task order. On trace renders it appears as the last
//!   row (`CapId(workers)`), so a timeline shows `workers + 1` rows.
//! * Every thread owns an [`Endpoint`]: the same pre-allocated
//!   [`TraceBuf`] the pool workers use, plus message counters. A
//!   channel operation that cannot complete immediately records a
//!   block event *before* sleeping and an unblock after — so the
//!   timeline shows red (Blocked) exactly while a PE sat in
//!   back-pressure or starved for input, mirroring what EdenTV shows
//!   for `waitForSpace`/`waitForData` in the paper's Fig. 4.

use crate::channel::{Packet, Receiver, Sender, TrySendError};
use crate::error::EdenIncomplete;
use crate::executor::{NativeConfig, NativeOutcome, NativeStats};
use crate::trace::{map_events, NEvent, NEventKind, TraceBuf};
use rph_trace::{CapId, Tracer, WallClock};
use std::time::Duration;

/// Message counters one endpoint (PE or master) maintains about
/// itself; summed into [`NativeStats`] at assembly.
#[derive(Debug, Default, Clone)]
pub(crate) struct PeStats {
    /// Tasks (or row updates) this PE executed.
    pub ran: u64,
    pub msgs_sent: u64,
    pub msgs_recv: u64,
    pub words_sent: u64,
    /// The subset of `words_sent` whose packets crossed a shard
    /// boundary (the master counts as shard 0 — it runs on the
    /// caller's thread). Zero on a flat (single-shard) run.
    pub remote_words: u64,
    pub send_blocks: u64,
    pub recv_blocks: u64,
}

/// One thread's recording context: trace buffer plus counters, with
/// channel helpers that keep the two consistent.
pub(crate) struct Endpoint {
    pub tbuf: TraceBuf,
    pub stats: PeStats,
    /// This endpoint's PE id (`workers` for the master).
    me: u32,
    /// PEs per shard under the configured topology; `workers` when
    /// the run is flat, so every packet is shard-local.
    per_shard: u32,
    workers: u32,
}

impl Endpoint {
    pub fn new(cfg: &NativeConfig, clock: WallClock, me: u32) -> Self {
        let mut tbuf = TraceBuf::new(cfg.trace, cfg.trace_cap);
        tbuf.begin_run(clock);
        let workers = cfg.workers.max(1);
        Endpoint {
            tbuf,
            stats: PeStats::default(),
            me,
            per_shard: (workers / cfg.shards.max(1)) as u32,
            workers: workers as u32,
        }
    }

    /// Which shard `id` lives in. The master (`id == workers`) runs on
    /// the caller's thread and counts as shard 0, so farm traffic to
    /// and from PEs outside shard 0 is inter-shard.
    fn shard_of(&self, id: u32) -> u32 {
        if id >= self.workers {
            0
        } else {
            id / self.per_shard
        }
    }

    /// Book-keep a packet that was (already) delivered to PE `to`.
    pub fn note_sent(&mut self, to: u32, words: u64, tag: &'static str) {
        self.stats.msgs_sent += 1;
        self.stats.words_sent += words;
        if self.shard_of(to) != self.shard_of(self.me) {
            self.stats.remote_words += words;
        }
        self.tbuf.record(NEventKind::MsgSend { to, words, tag });
    }

    /// Book-keep a packet received from PE `from`.
    pub fn note_recv(&mut self, from: u32, words: u64, tag: &'static str) {
        self.stats.msgs_recv += 1;
        self.tbuf.record(NEventKind::MsgRecv { from, words, tag });
    }

    /// Send `pkt` to PE `to`, blocking under back-pressure (recorded
    /// as a `BlockSend` episode). Returns false if the receiving end
    /// is gone — which means the peer panicked; callers stop sending
    /// and let the join propagate the panic.
    pub fn send<T>(
        &mut self,
        tx: &Sender<Packet<T>>,
        to: u32,
        tag: &'static str,
        pkt: Packet<T>,
    ) -> bool {
        let words = pkt.words;
        let pkt = match tx.try_send(pkt) {
            Ok(()) => {
                self.note_sent(to, words, tag);
                return true;
            }
            Err(TrySendError::Disconnected(_)) => return false,
            Err(TrySendError::Full(p)) => p,
        };
        self.stats.send_blocks += 1;
        self.tbuf.record(NEventKind::BlockSend { to });
        let ok = tx.send(pkt).is_ok();
        self.tbuf.record(NEventKind::Unblock);
        if ok {
            self.note_sent(to, words, tag);
        }
        ok
    }

    /// Receive the next packet from PE `from`, blocking on an empty
    /// channel (recorded as a `BlockRecv` episode). `None` is end of
    /// stream.
    pub fn recv<T>(
        &mut self,
        rx: &Receiver<Packet<T>>,
        from: u32,
        tag: &'static str,
    ) -> Option<Packet<T>> {
        let pkt = match rx.try_recv() {
            Some(p) => p,
            None => {
                // Empty. If the stream also ended this recv returns
                // immediately — only count a block when we will
                // actually wait for a producer.
                let ended = rx.poll_ready();
                if !ended {
                    self.stats.recv_blocks += 1;
                    self.tbuf.record(NEventKind::BlockRecv { from });
                }
                let p = rx.recv();
                if !ended {
                    self.tbuf.record(NEventKind::Unblock);
                }
                p?
            }
        };
        self.note_recv(from, pkt.words, tag);
        Some(pkt)
    }

    /// Flush this endpoint's records for assembly.
    pub fn finish(mut self) -> PeReport {
        let mut events = Vec::new();
        let dropped = self.tbuf.flush_into(&mut events);
        PeReport {
            stats: self.stats,
            events,
            dropped,
        }
    }
}

/// What one endpoint contributes to the run outcome.
pub(crate) struct PeReport {
    pub stats: PeStats,
    pub events: Vec<NEvent>,
    pub dropped: u64,
}

/// Fold per-PE reports (+ the master's) into the same
/// [`NativeOutcome`] shape the steal backend produces. Tracer rows
/// `0..workers` are the PEs, row `workers` is the master; `per_worker`
/// covers the PEs only (the master runs no tasks). All tasks are
/// "local" — there is no stealing to attribute against.
pub(crate) fn assemble<T>(
    cfg: &NativeConfig,
    values: Vec<T>,
    wall: Duration,
    pe_reports: Vec<PeReport>,
    master: PeReport,
) -> NativeOutcome<T> {
    let workers = pe_reports.len();
    let mut stats = NativeStats {
        per_worker: pe_reports.iter().map(|r| r.stats.ran).collect(),
        ..NativeStats::default()
    };
    stats.tasks_run = stats.per_worker.iter().sum();
    stats.tasks_local = stats.tasks_run;
    let mut trace_dropped = 0;
    for rep in pe_reports.iter().chain(std::iter::once(&master)) {
        stats.msgs_sent += rep.stats.msgs_sent;
        stats.msgs_recv += rep.stats.msgs_recv;
        stats.words_sent += rep.stats.words_sent;
        stats.remote_words += rep.stats.remote_words;
        stats.send_blocks += rep.stats.send_blocks;
        stats.recv_blocks += rep.stats.recv_blocks;
        trace_dropped += rep.dropped;
    }
    let trace = if cfg.trace {
        let mut tracer = Tracer::new(workers + 1);
        for (w, rep) in pe_reports.iter().enumerate() {
            map_events(&mut tracer, CapId(w as u32), &rep.events);
        }
        map_events(&mut tracer, CapId(workers as u32), &master.events);
        Some(tracer)
    } else {
        None
    };
    NativeOutcome {
        values,
        wall,
        stats,
        trace,
        trace_dropped,
    }
}

/// An Eden run with nothing to do: `workers` idle PEs, zero messages.
pub(crate) fn empty_outcome<T>(cfg: &NativeConfig) -> NativeOutcome<T> {
    let workers = cfg.workers.max(1);
    NativeOutcome {
        values: Vec::new(),
        wall: Duration::ZERO,
        stats: NativeStats {
            per_worker: vec![0; workers],
            ..NativeStats::default()
        },
        trace: cfg.trace.then(|| Tracer::new(workers + 1)),
        trace_dropped: 0,
    }
}

/// The master's collection loop, multiplexed over every PE's result
/// channel (all built with `ec` as their notify hook): drain whatever
/// is ready, invoke `on_packet` per packet, and park on the
/// eventcount — recorded as a `BlockRecvAny` episode — while nothing
/// is ready. Returns when every channel has closed and drained, i.e.
/// when every PE has shut down its producing end.
///
/// Draining round-robin instead of channel-by-channel matters: a
/// master that sat on PE 0's stream until it closed would leave every
/// other PE parked in back-pressure once its buffer filled,
/// serialising the farm.
pub(crate) fn drain_results<T>(
    master: &mut Endpoint,
    ec: &crate::park::EventCount,
    rxs: &[Receiver<Packet<T>>],
    mut on_packet: impl FnMut(&mut Endpoint, usize, Packet<T>),
) {
    let mut open = vec![true; rxs.len()];
    loop {
        let mut progress = false;
        for (w, rx) in rxs.iter().enumerate() {
            if !open[w] {
                continue;
            }
            // Read the close flag *before* draining: a true reading
            // means the drain below is exhaustive.
            let closed = rx.is_closed();
            while let Some(pkt) = rx.try_recv() {
                progress = true;
                on_packet(master, w, pkt);
            }
            if closed {
                open[w] = false;
                progress = true;
            }
        }
        if open.iter().all(|o| !o) {
            return;
        }
        if !progress {
            master.stats.recv_blocks += 1;
            master.tbuf.record(NEventKind::BlockRecvAny);
            ec.park_if(|| !rxs.iter().zip(&open).any(|(rx, o)| *o && rx.poll_ready()));
            master.tbuf.record(NEventKind::Unblock);
        }
    }
}

/// Turn `slots` (filled by packet index) into a dense result vector,
/// or the indices of every hole — a hole means a PE died before
/// producing that task's result packet.
pub(crate) fn try_into_values<T>(slots: Vec<Option<T>>) -> Result<Vec<T>, Vec<u32>> {
    let missing: Vec<u32> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_none())
        .map(|(i, _)| i as u32)
        .collect();
    if !missing.is_empty() {
        return Err(missing);
    }
    Ok(slots.into_iter().flatten().collect())
}

/// Final assembly step shared by the fallible skeletons: a clean run
/// (no dead PEs, no result holes) becomes a [`NativeOutcome`]; any
/// loss becomes the typed [`EdenIncomplete`] error naming the dead
/// PEs and the lost task indices.
pub(crate) fn finish_run<T>(
    cfg: &NativeConfig,
    slots: Vec<Option<T>>,
    wall: Duration,
    pe_reports: Vec<PeReport>,
    dead_pes: Vec<u32>,
    master: PeReport,
) -> Result<NativeOutcome<T>, EdenIncomplete> {
    match try_into_values(slots) {
        Ok(values) if dead_pes.is_empty() => Ok(assemble(cfg, values, wall, pe_reports, master)),
        // A PE died after delivering all its results: the values are
        // complete, but the run is still reported as incomplete — the
        // death was a task panic and callers must see it.
        Ok(_) => Err(EdenIncomplete {
            dead_pes,
            missing: Vec::new(),
        }),
        Err(missing) => Err(EdenIncomplete { dead_pes, missing }),
    }
}
